"""BBS over the R-tree: correctness, I/O optimality, plist invariants."""

import pytest
from hypothesis import given, settings

from repro.rtree.store import DiskNodeStore
from repro.rtree.tree import RTree
from repro.skyline import bbs_skyline, naive_skyline
from repro.skyline.bbs import NODE, POINT, BBSEngine
from repro.rtree.geometry import dominates

from .conftest import points_strategy, random_points


def build_tree(items, dims, page_size=256, buffer_capacity=10**6):
    store = DiskNodeStore(dims, page_size=page_size, buffer_capacity=buffer_capacity)
    tree = RTree.bulk_load(store, dims, items)
    store.stats.reset()
    return tree, store


@pytest.mark.parametrize("dims", [2, 3, 4])
def test_bbs_equals_naive(dims, rng):
    items = list(enumerate(random_points(500, dims, rng)))
    tree, _ = build_tree(items, dims)
    assert bbs_skyline(tree) == naive_skyline(items)


def test_bbs_tie_heavy(rng):
    items = list(enumerate(random_points(300, 3, rng, tie_heavy=True)))
    tree, _ = build_tree(items, 3)
    assert bbs_skyline(tree) == naive_skyline(items)


@given(points_strategy(2, min_size=1, max_size=60))
@settings(max_examples=30, deadline=None)
def test_bbs_property_2d(pts):
    items = list(enumerate(pts))
    tree, _ = build_tree(items, 2)
    assert bbs_skyline(tree) == naive_skyline(items)


def test_bbs_sum_tie_with_dominance():
    """Float rounding can tie the heap keys of a dominator and a point
    it dominates (``0.25 + 2.5e-33 == 0.25``); the lexicographic
    tiebreak of ``sky_key_point`` must still confirm only the
    dominator (hypothesis-found regression)."""
    pts = [(0.25, 0.0), (0.25, 2.4833442227593797e-33)]
    items = list(enumerate(pts))
    tree, _ = build_tree(items, 2)
    assert bbs_skyline(tree) == naive_skyline(items) == {1: pts[1]}


def test_bbs_empty_tree():
    store = DiskNodeStore(2, page_size=256)
    tree = RTree.bulk_load(store, 2, [])
    assert bbs_skyline(tree) == {}


def test_bbs_io_optimality(rng):
    """BBS must not expand any node whose MBR top corner is dominated
    by the skyline — its page count equals that of the non-dominated
    node set (I/O optimality, Papadias et al.)."""
    dims = 3
    items = list(enumerate(random_points(2000, dims, rng)))
    tree, store = build_tree(items, dims, buffer_capacity=0)
    store.stats.reset()
    sky = bbs_skyline(tree)
    accessed = store.stats.physical_reads

    # Count nodes NOT dominated by the final skyline (these must all be
    # visited by any correct algorithm; BBS visits exactly these).
    sky_pts = list(sky.values())

    def count_needed(pid):
        node = tree.store.read_node(pid)
        total = 1
        if not node.is_leaf:
            for cid, mbr in node.entries:
                if not any(dominates(p, mbr.hi) for p in sky_pts):
                    total += count_needed(cid)
        return total

    needed = count_needed(tree.root_id)
    assert accessed == needed


class TestPlists:
    def test_plist_partition_invariant(self, rng):
        """Every pruned entry lives in exactly one plist and is
        dominated by its owner (Section 5.2)."""
        dims = 3
        items = list(enumerate(random_points(800, dims, rng)))
        tree, _ = build_tree(items, dims)
        engine = BBSEngine(tree, track_plists=True)
        engine.run(engine.seed_from_root())

        seen_ids = set()
        for owner, entries in engine.plists.items():
            owner_pt = engine.skyline[owner]
            for kind, ident, payload in entries:
                key = (kind, ident)
                assert key not in seen_ids, "entry in two plists"
                seen_ids.add(key)
                corner = payload.hi if kind == NODE else payload
                assert dominates(owner_pt, corner)

    def test_all_items_accounted_for(self, rng):
        """skyline + plist points + points under plist subtrees = O."""
        dims = 2
        items = list(enumerate(random_points(400, dims, rng)))
        tree, _ = build_tree(items, dims)
        engine = BBSEngine(tree, track_plists=True)
        engine.run(engine.seed_from_root())

        covered = set(engine.skyline)

        def subtree_oids(pid):
            node = tree.store.read_node(pid)
            if node.is_leaf:
                return {oid for oid, _ in node.entries}
            out = set()
            for cid, _ in node.entries:
                out |= subtree_oids(cid)
            return out

        for entries in engine.plists.values():
            for kind, ident, _ in entries:
                if kind == POINT:
                    covered.add(ident)
                else:
                    covered |= subtree_oids(ident)
        assert covered == {oid for oid, _ in items}
