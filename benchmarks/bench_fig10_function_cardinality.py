"""Figure 10 — effect of the number of functions |F| (anti-correlated).

Paper sweep {1, 2.5, 5, 10, 20}k, scaled.  Expected shape: all costs
grow with |F| (more stable pairs to compute), but SB's I/O stays
nearly flat (the paper measures 4030 -> 5135 page reads over a 20x
|F| range) while Brute Force and Chain degrade sharply.
"""

import pytest

from repro.bench.config import defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]


@pytest.mark.benchmark(group="fig10-function-cardinality")
@pytest.mark.parametrize("nf", D.f_sweep())
@pytest.mark.parametrize("method", METHODS)
def test_fig10(benchmark, method, nf):
    functions, objects = make_instance(nf, D.no, D.dims, D.distribution, seed=10)
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
