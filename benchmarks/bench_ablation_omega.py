"""Ablation — the Ω-bounded heap's memory/time trade-off (Section 5.1).

The paper bounds each resumable TA search's candidate heap to
Ω = ω·|F| and tunes ω = 2.5% for its experiments.  This ablation
sweeps ω: smaller bounds shrink the retained TA state (memory down)
but force from-scratch restarts when a search's candidates are
exhausted by kills (CPU up); ``None`` disables the bound.

Expected shape: peak memory monotonically non-decreasing in ω;
restarts monotonically non-increasing; the matching identical at
every setting.
"""

import pytest

from repro.bench.config import defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

OMEGA_SWEEP = [0.005, 0.01, 0.025, 0.05, None]

_memory: dict[object, int] = {}
_restarts: dict[object, int] = {}
_matchings: dict[object, dict] = {}


@pytest.mark.benchmark(group="ablation-omega")
@pytest.mark.parametrize("omega", OMEGA_SWEEP, ids=lambda o: f"omega={o}")
def test_ablation_omega(benchmark, omega):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=55
    )
    matching, stats = bench_cell(
        benchmark, "sb", functions, objects, omega_fraction=omega
    )
    _memory[omega] = stats.peak_memory_bytes
    _restarts[omega] = stats.counters["ta_restarts"]
    _matchings[omega] = matching.as_dict()
    # Identical result at every omega.
    first = next(iter(_matchings.values()))
    assert matching.as_dict() == first
    # The unbounded search never restarts.
    if omega is None:
        assert stats.counters["ta_restarts"] == 0
        # ... and retains at least as much state as any bounded run.
        assert all(m <= _memory[None] for m in _memory.values())
