"""The :class:`repro.api.Problem` value object: builder, validation,
normalization, derivation."""

import dataclasses

import pytest

from repro.api import (
    InvalidProblemError,
    InvalidSolverOptionError,
    Problem,
    ReproError,
    UnknownSolverError,
)
from repro.data.instances import FunctionSet, ObjectSet

from .conftest import random_instance

OBJECTS = [(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)]
FUNCTIONS = [(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)]


def figure1_problem(**kwargs) -> Problem:
    return Problem(objects=tuple(OBJECTS), functions=tuple(FUNCTIONS), **kwargs)


def test_builder_equals_direct_construction():
    built = (
        Problem.builder()
        .add_objects(OBJECTS)
        .add_functions(FUNCTIONS)
        .solver("sb")
        .build()
    )
    assert built == figure1_problem()


def test_builder_incremental_with_capacities_and_priorities():
    built = (
        Problem.builder()
        .add_object((0.5, 0.6), capacity=2)
        .add_object((0.8, 0.2))
        .add_function((0.8, 0.2), capacity=3, priority=2.0)
        .add_function((0.5, 0.5))
        .solver("sb", omega_fraction=0.1)
        .page_size(1024)
        .build()
    )
    assert built.object_capacities == (2, 1)
    assert built.function_capacities == (3, 1)
    assert built.priorities == (2.0, 1.0)
    assert dict(built.options) == {"omega_fraction": 0.1}
    assert built.page_size == 1024


def test_all_one_capacities_and_priorities_normalize_to_none():
    p = figure1_problem(
        object_capacities=(1, 1, 1, 1),
        function_capacities=(1, 1, 1),
        priorities=(1.0, 1.0, 1.0),
    )
    assert p.object_capacities is None
    assert p.function_capacities is None
    assert p.priorities is None
    assert p == figure1_problem()


def test_from_sets_round_trips_instance_containers():
    fs, os_ = random_instance(5, 9, 3, seed=3, capacities=True, priorities=True)
    p = Problem.from_sets(os_, fs, method="sb-two-skylines")
    assert p.object_set.points == tuple(os_.points)
    assert p.function_set.gammas == list(fs.gammas)
    assert p.method == "sb-two-skylines"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"objects": ()},
        {"functions": ()},
        {"objects": ((0.5, 0.5), (0.1,))},  # ragged dims
        {"functions": ((0.9, 0.2),)},  # weights don't sum to 1
        {"functions": ((-0.2, 1.2),)},  # negative weight
        {"objects": ((0.5, 0.5, 0.5),)},  # dims mismatch vs functions
        {"object_capacities": (1, 2)},  # misaligned
        {"object_capacities": (0, 1, 1, 1)},  # capacity < 1
        {"priorities": (1.0, -2.0, 1.0)},  # non-positive priority
        {"page_size": 0},
        {"buffer_fraction": 0.0},
        {"buffer_fraction": 1.5},
        {"options": {"omega_fraction": [1, 2]}},  # non-scalar option
    ],
)
def test_invalid_problems_rejected(kwargs):
    base = dict(objects=tuple(OBJECTS), functions=tuple(FUNCTIONS))
    base.update(kwargs)
    with pytest.raises(InvalidProblemError):
        Problem(**base)


def test_unknown_solver_and_option_are_typed_errors():
    with pytest.raises(UnknownSolverError):
        figure1_problem(method="no-such-solver")
    with pytest.raises(InvalidSolverOptionError) as exc:
        figure1_problem(method="chain", options={"omega_fraction": 0.1})
    assert "disk_function_tree" in str(exc.value)
    # Both are ReproError and keep builtin compatibility.
    assert issubclass(UnknownSolverError, (ReproError, ValueError))
    assert issubclass(InvalidSolverOptionError, (ReproError, TypeError))


def test_problem_is_immutable():
    p = figure1_problem()
    with pytest.raises(dataclasses.FrozenInstanceError):
        p.method = "chain"
    assert p.object_set.is_frozen
    with pytest.raises(TypeError):
        p.options["omega_fraction"] = 1.0


def test_with_method_and_with_functions_derive_new_instances():
    p = figure1_problem(options={"omega_fraction": 0.1})
    q = p.with_method("chain")
    assert q.method == "chain" and dict(q.options) == {}
    assert p.method == "sb"  # original untouched
    r = p.with_functions([(1.0, 0.0)], priorities=[3.0])
    assert r.functions == ((1.0, 0.0),) and r.priorities == (3.0,)
    assert r.objects == p.objects
    merged = p.with_options(multi_pair=False)
    assert dict(merged.options) == {"omega_fraction": 0.1, "multi_pair": False}


def test_validated_sets_are_exposed():
    p = figure1_problem()
    assert isinstance(p.object_set, ObjectSet)
    assert isinstance(p.function_set, FunctionSet)
    assert p.dims == 2 and p.num_objects == 4 and p.num_functions == 3


def test_problem_is_hashable_value_object():
    p = figure1_problem(options={"omega_fraction": 0.1})
    q = figure1_problem(options={"omega_fraction": 0.1})
    assert hash(p) == hash(q) and len({p, q}) == 1
    assert hash(p) != hash(p.with_method("chain"))


def test_derived_problems_share_validated_sets():
    """with_method/with_options keep the frozen ObjectSet instance, so
    the batch cache's memoized fingerprint is computed once."""
    p = figure1_problem()
    v = p.with_method("chain")
    assert v.object_set is p.object_set
    assert v.function_set is p.function_set
    w = p.with_functions([(1.0, 0.0)])
    assert w.object_set is p.object_set
    assert w.function_set is not p.function_set
