"""Geometric primitives: points, MBRs, dominance, search keys.

Conventions
-----------
Points are tuples of floats.  *Larger is better* in every dimension
(the paper normalizes attributes so that the "sky point" — the best
imaginary object — is the top corner of the space).

Dominance follows the paper's Section 2.2: ``p`` dominates ``q`` iff
``p`` is >= ``q`` in every dimension and the two points do not
coincide.  Two identical points therefore do *not* dominate each
other — both belong to the skyline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

Point = tuple[float, ...]


def dominates(p: Sequence[float], q: Sequence[float]) -> bool:
    """True iff ``p`` dominates ``q`` (>= everywhere, not coincident)."""
    not_equal = False
    for a, b in zip(p, q):
        if a < b:
            return False
        if a != b:
            not_equal = True
    return not_equal


def dominates_on_or_equal(p: Sequence[float], q: Sequence[float]) -> bool:
    """True iff ``p`` >= ``q`` componentwise (coincident points allowed)."""
    return all(a >= b for a, b in zip(p, q))


def sky_key_point(p: Sequence[float]) -> tuple:
    """Dominance-consistent BBS/SFS priority of a best corner.

    Ascending order == closest to the sky point first: ``-sum(p)``
    orders identically to the paper's L1 distance from the top corner
    and needs no normalization bounds.  Float addition is monotone, so
    a dominator's sum is never *below* its dominated point's — but it
    can *tie* (e.g. ``0.25 + 2.5e-33`` rounds to ``0.25``), and a
    sum-only key would then let insertion order confirm the dominated
    point first.  The lexicographic tiebreak on negated coordinates
    settles exact sum ties toward the dominator, preserving the
    invariant every sorted/heap-ordered skyline pass relies on: a
    point is processed strictly before everything it dominates."""
    return (-sum(p), tuple(-c for c in p))


class Rect:
    """An axis-aligned D-dimensional minimum bounding rectangle."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        if len(lo) != len(hi):
            raise ValueError("lo and hi must have the same dimensionality")
        for a, b in zip(lo, hi):
            if a > b:
                raise ValueError(f"degenerate rect: lo {lo} exceeds hi {hi}")
        self.lo: Point = tuple(lo)
        self.hi: Point = tuple(hi)

    @classmethod
    def from_point(cls, p: Sequence[float]) -> "Rect":
        return cls(p, p)

    @property
    def dims(self) -> int:
        return len(self.lo)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rect) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Rect({self.lo}, {self.hi})"

    def contains_point(self, p: Sequence[float]) -> bool:
        return all(a <= x <= b for a, x, b in zip(self.lo, p, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        return all(a <= c for a, c in zip(self.lo, other.lo)) and all(
            b >= d for b, d in zip(self.hi, other.hi)
        )

    def intersects(self, other: "Rect") -> bool:
        return all(
            a <= d and c <= b
            for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(min(a, c) for a, c in zip(self.lo, other.lo)),
            tuple(max(b, d) for b, d in zip(self.hi, other.hi)),
        )

    def union_point(self, p: Sequence[float]) -> "Rect":
        return Rect(
            tuple(min(a, x) for a, x in zip(self.lo, p)),
            tuple(max(b, x) for b, x in zip(self.hi, p)),
        )

    def area(self) -> float:
        out = 1.0
        for a, b in zip(self.lo, self.hi):
            out *= b - a
        return out

    def margin(self) -> float:
        return sum(b - a for a, b in zip(self.lo, self.hi))

    def enlargement(self, other: "Rect") -> float:
        """Area increase if ``other`` were merged into this rect."""
        return self.union(other).area() - self.area()

    def center(self) -> Point:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def sky_key(self) -> tuple:
        """BBS priority: the rect's best corner is its upper corner."""
        return sky_key_point(self.hi)

    def maxscore(self, weights: Sequence[float]) -> float:
        """Upper bound of ``sum(w_i * x_i)`` over points in the rect
        for non-negative weights (BRS's ``maxscore``)."""
        return sum(w * b for w, b in zip(weights, self.hi))

    def minscore(self, weights: Sequence[float]) -> float:
        return sum(w * a for w, a in zip(weights, self.lo))


def mbr_of_points(points: Iterable[Sequence[float]]) -> Rect:
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("cannot compute the MBR of zero points") from None
    lo = list(first)
    hi = list(first)
    for p in it:
        for i, x in enumerate(p):
            if x < lo[i]:
                lo[i] = x
            elif x > hi[i]:
                hi[i] = x
    return Rect(lo, hi)


def mbr_of_rects(rects: Iterable[Rect]) -> Rect:
    it = iter(rects)
    try:
        out = next(it)
    except StopIteration:
        raise ValueError("cannot compute the MBR of zero rects") from None
    for r in it:
        out = out.union(r)
    return out
