"""Typed findings — the one record every lint rule emits.

A :class:`Finding` names the rule that fired, where (file, line,
column), inside what scope (``Class.method`` — part of the baseline
fingerprint, so findings survive unrelated line drift), and why.  The
``fingerprint`` deliberately excludes the line number: a baselined
finding stays recognised when code above it moves, and resurfaces as
*new* only when the rule, file, scope or message actually change.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Severity levels, mild to severe (ordering used for text output).
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"
    column: int = 0
    #: Enclosing ``Class.function`` (or module-level marker) — part of
    #: the baseline identity, so findings track their code, not their
    #: line number.
    scope: str = "<module>"
    #: Why this finding is accepted (filled from the baseline entry
    #: when matched; empty for new findings).
    justification: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-independent)."""
        raw = "\x1f".join((self.rule, self.path, self.scope, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "scope": self.scope,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.justification:
            out["justification"] = self.justification
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            column=int(payload.get("column", 0)),
            scope=str(payload.get("scope", "<module>")),
            severity=str(payload.get("severity", "error")),
            message=str(payload["message"]),
            justification=str(payload.get("justification", "")),
        )


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable presentation order: by file, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule))


__all__ = ["Finding", "SEVERITIES", "sort_findings"]
