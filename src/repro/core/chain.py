"""Chain stable assignment — adaptation of Wong et al. [25] (Section 7).

As in the paper's experimental setup: the functions are indexed by a
*main-memory* R-tree built on their (effective) weights, and the
nearest-neighbor module of the original spatial Chain is replaced by
top-1 search (BRS) in the corresponding R-tree — objects answer "best
function" queries through the function tree, functions answer "best
object" queries through the object tree.

Chain repeatedly takes an item ``x`` (from its queue, else the lowest
alive function id), finds its top-1 partner ``y``, and checks whether
``x`` is also ``y``'s top-1; if so ``(x, y)`` is stable (Property 1),
otherwise ``y`` is enqueued and the chase continues.  Every top-1
query starts from scratch — Chain cannot resume searches, which is
precisely why the paper measures it as the most expensive method.
"""

from __future__ import annotations

import time
from collections import deque

from repro.core.capacity import CapacityTracker
from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.data.instances import FunctionSet
from repro.rtree.store import MemoryNodeStore
from repro.rtree.tree import RTree
from repro.scoring import score
from repro.storage.stats import BYTES_PER_HEAP_ENTRY, MemoryTracker
from repro.topk.brs import BRSSearch


def chain_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    disk_function_tree: bool = False,
) -> AssignmentResult:
    """Compute the stable matching by mutual-top-1 chasing.

    ``disk_function_tree`` puts the function R-tree on simulated disk
    pages (with a 2% LRU buffer) instead of in memory — the Section
    7.6 setting where ``F`` does not fit in memory; its page reads are
    then included in the reported I/O.
    """
    start = time.perf_counter()
    io_before = index.stats.snapshot()
    mem = MemoryTracker()
    matching = Matching()
    caps = CapacityTracker(functions, index.objects)
    objects = index.objects

    # R-tree over the (γ-scaled) function weights; its construction is
    # part of Chain's CPU cost (Section 7).  Assigned functions are
    # physically deleted, as in the original algorithm.
    dims = functions.dims
    if disk_function_tree:
        from repro.rtree.store import DiskNodeStore

        fn_store = DiskNodeStore(dims, page_size=4096, buffer_capacity=0)
    else:
        fn_store = MemoryNodeStore(dims, page_size=4096)
    fn_tree = RTree.bulk_load(
        fn_store, dims, [(fid, functions.effective_weights(fid)) for fid in
                         range(len(functions))]
    )
    if disk_function_tree:
        fn_store.set_buffer_fraction(0.02)
        fn_store.buffer.clear()
        fn_store.stats.reset()

    assigned_objects: set[int] = set()
    pending: deque[tuple[str, int]] = deque()
    next_seed = 0
    loops = 0
    top1_searches = 0

    def top1_object(fid: int) -> tuple[int, float] | None:
        """Best remaining object for a function (fresh BRS search)."""
        nonlocal top1_searches
        top1_searches += 1
        search = BRSSearch(
            index.tree, functions.effective_weights(fid), assigned_objects
        )
        result = search.next()
        mem.set_gauge("chain_search", search.memory_bytes())
        if result is None:
            return None
        oid, _point, s = result
        return oid, s

    def top1_function(oid: int) -> int | None:
        """Best remaining function for an object (fresh BRS search on
        the function tree; weights and points swap roles)."""
        nonlocal top1_searches
        top1_searches += 1
        search = BRSSearch(fn_tree, objects.points[oid])
        result = search.next()
        mem.set_gauge("chain_search", search.memory_bytes())
        if result is None:
            return None
        fid, _weights, _s = result
        return fid

    def emit(fid: int, oid: int) -> None:
        nonlocal next_seed
        s = score(functions.effective_weights(fid), objects.points[oid])
        units, f_died, o_died = caps.assign(fid, oid)
        matching.add(fid, oid, s, units)
        if o_died:
            assigned_objects.add(oid)
        else:
            pending.append(("o", oid))
        if f_died:
            fn_tree.delete(fid, functions.effective_weights(fid))
        else:
            pending.append(("f", fid))

    while not caps.exhausted:
        loops += 1
        mem.set_gauge("chain_queue", len(pending) * BYTES_PER_HEAP_ENTRY)
        if pending:
            side, ident = pending.popleft()
            if side == "f" and not caps.function_alive(ident):
                continue
            if side == "o" and not caps.object_alive(ident):
                continue
        else:
            while next_seed < len(functions) and not caps.function_alive(next_seed):
                next_seed += 1
            if next_seed >= len(functions):
                break
            side, ident = "f", next_seed

        if side == "f":
            found = top1_object(ident)
            if found is None:
                break  # no objects left at all
            oid, _s = found
            back = top1_function(oid)
            if back == ident:
                emit(ident, oid)
            else:
                pending.append(("o", oid))
        else:
            back_fid = top1_function(ident)
            if back_fid is None:
                break  # no functions left at all
            found = top1_object(back_fid)
            if found is not None and found[0] == ident:
                emit(back_fid, ident)
            else:
                pending.append(("f", back_fid))

    io = index.stats.delta_since(io_before)
    stats = RunStats(
        io=io,
        cpu_seconds=time.perf_counter() - start,
        peak_memory_bytes=mem.peak_bytes,
        loops=loops,
        counters={
            "top1_searches": top1_searches,
            "fn_tree_accesses": fn_store.stats.logical_reads,
        },
    )
    if disk_function_tree:
        stats.counters["function_tree_reads"] = fn_store.stats.physical_reads
        stats.counters["object_reads"] = io.physical_reads
        io.physical_reads += fn_store.stats.physical_reads
        io.logical_reads += fn_store.stats.logical_reads
    return AssignmentResult(matching, stats)
