"""SB-alt: batch best-pair search over disk-resident functions (7.6)."""

import pytest

from repro import build_object_index
from repro.core.reference import greedy_assign
from repro.core.sb_alt import sb_alt_assign
from repro.data.generators import make_functions, make_objects
from repro.data.instances import FunctionSet

from .conftest import random_instance


@pytest.mark.parametrize("seed", range(4))
def test_matches_oracle(seed):
    fs, os_ = random_instance(15, 20, 3, seed=seed, tie_heavy=(seed % 2 == 0))
    idx = build_object_index(os_, memory=True)
    got = sb_alt_assign(fs, idx, page_size=128)
    assert got.matching.as_dict() == greedy_assign(fs, os_).matching.as_dict()


def test_function_list_io_counted():
    fs, os_ = random_instance(50, 30, 3, seed=9)
    idx = build_object_index(os_, memory=True)
    result = sb_alt_assign(fs, idx, page_size=128)
    assert result.stats.counters["function_list_reads"] > 0
    # Object side is memory-resident: zero page I/O from it.
    assert result.stats.counters["object_reads"] == 0


def test_block_reads_bounded_per_skyline_version():
    """Each coefficient is accessed at most once per batch scan, so
    list I/O per scan cannot exceed (pages + random accesses) and in
    total is far below per-object repeated scanning."""
    functions = make_functions(200, 3, seed=3)
    objects = make_objects(300, 3, "independent", seed=4)
    idx = build_object_index(objects, memory=True)
    result = sb_alt_assign(functions, idx, page_size=4096)
    scans = result.stats.counters["batch_scans"]
    # With 4 KB pages (256 entries) the 3 lists fit in 3 pages; a full
    # scan with all random accesses costs at most 3 + 200*2 pages.
    per_scan_cap = 3 + len(functions) * 2
    assert result.stats.counters["function_list_reads"] <= scans * per_scan_cap


def test_priorities_supported(rng):
    fs, os_ = random_instance(12, 15, 3, seed=5, priorities=True)
    idx = build_object_index(os_, memory=True)
    got = sb_alt_assign(fs, idx, page_size=128)
    assert got.matching.as_dict() == greedy_assign(fs, os_).matching.as_dict()


def test_capacities_supported(rng):
    fs, os_ = random_instance(8, 10, 2, seed=6, capacities=True)
    idx = build_object_index(os_, memory=True)
    got = sb_alt_assign(fs, idx, page_size=128)
    assert got.matching.as_dict() == greedy_assign(fs, os_).matching.as_dict()


def test_more_functions_than_objects():
    """The Section 7.6 setting has |F| >> |O|."""
    fs, os_ = random_instance(60, 8, 3, seed=7)
    idx = build_object_index(os_, memory=True)
    got = sb_alt_assign(fs, idx, page_size=256)
    assert got.matching.num_units == 8
    assert got.matching.as_dict() == greedy_assign(fs, os_).matching.as_dict()


def test_empty_functions():
    fs = FunctionSet([])
    _, os_ = random_instance(1, 5, 2, seed=8)
    idx = build_object_index(os_, memory=True)
    assert len(sb_alt_assign(fs, idx).matching) == 0
