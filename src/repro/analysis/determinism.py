"""REP20x — determinism discipline in the bit-identity packages.

The engine's headline guarantee is that every executor, engine config
and cluster topology returns *bit-identical* solutions.  The packages
on that path (``engine``, ``kernels``, ``skyline``, ``planner``,
``rtree``) therefore must not let run-to-run-varying state influence
results:

- **REP201** — ``random`` / ``uuid`` / ``numpy.random`` usage: seeds
  differ across processes, so any RNG in a solve path breaks
  cross-executor identity;
- **REP202** — wall-clock-dependent control flow: ``time.time()`` /
  ``monotonic()`` / ``perf_counter()`` inside an ``if`` / ``while``
  condition or comparison (pure *measurement* — assigning a duration
  to a counter — is fine and common);
- **REP203** — iteration over a bare ``set`` / ``frozenset``: set
  order is salted per process, so any collection built by iterating
  one is a cross-process mismatch waiting to happen; wrap the iterable
  in ``sorted(...)`` or take the ``# lint: setiter-ok(reason)`` hatch;
- **REP204** — ``id()``-keyed ordering or keying: CPython addresses
  vary per run, so ``id()`` in sort keys or as dict/set keys orders
  differently every execution.

Scope: files under the packages above, plus any file carrying a
``# repro-lint: deterministic-module`` marker (fixtures, new hot-path
modules outside the default list).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

RULE_RNG = "REP201"
RULE_TIME_CONTROL = "REP202"
RULE_SET_ITERATION = "REP203"
RULE_ID_KEY = "REP204"

#: Packages (relative to ``src/repro``) under determinism discipline.
DETERMINISTIC_PACKAGES = ("engine", "kernels", "skyline", "planner", "rtree")

#: File-level marker opting any module into this rule family.
DETERMINISTIC_MARKER = "# repro-lint: deterministic-module"

_RNG_MODULES = {"random", "uuid"}
_CLOCK_ATTRS = {"time", "monotonic", "perf_counter", "monotonic_ns", "time_ns"}


def is_deterministic_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return False
    tail = parts[parts.index("repro") + 1 :]
    return bool(tail) and tail[0] in DETERMINISTIC_PACKAGES


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` → "a.b.c" for pure name/attribute chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _scope_of(stack: list[str]) -> str:
    return ".".join(stack) if stack else "<module>"


class _SetTracker:
    """Per-function table of local names statically bound to sets."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    @staticmethod
    def is_set_expr(node: ast.expr, known: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name) and node.id in known:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return _SetTracker.is_set_expr(
                node.left, known
            ) or _SetTracker.is_set_expr(node.right, known)
        return False

    def observe_assign(self, node: ast.stmt) -> None:
        value = getattr(node, "value", None)
        if value is None:
            return
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, (ast.AnnAssign, ast.AugAssign))
            else []
        )
        is_set = self.is_set_expr(value, self.set_names)
        for target in targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._scope_stack: list[str] = []
        self._trackers: list[_SetTracker] = [_SetTracker()]
        self._condition_depth = 0

    # -- helpers -------------------------------------------------------

    def _emit(
        self, rule: str, node: ast.AST, message: str, severity: str = "error"
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=node.lineno,
                column=node.col_offset,
                scope=_scope_of(self._scope_stack),
                severity=severity,
                message=message,
            )
        )

    @property
    def _tracker(self) -> _SetTracker:
        return self._trackers[-1]

    # -- scope tracking ------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scope_stack.append(node.name)
        self._trackers.append(_SetTracker())
        self.generic_visit(node)
        self._trackers.pop()
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()

    # -- REP201: RNG imports / calls -----------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _RNG_MODULES:
                self._emit(
                    RULE_RNG,
                    node,
                    f"import of '{alias.name}' in a bit-identity package: "
                    "RNG state varies per process and breaks cross-executor "
                    "identity",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _RNG_MODULES:
            self._emit(
                RULE_RNG,
                node,
                f"import from '{node.module}' in a bit-identity package: "
                "RNG state varies per process and breaks cross-executor "
                "identity",
            )
        self.generic_visit(node)

    # -- conditions (for REP202) ---------------------------------------

    def _visit_condition(self, test: ast.expr) -> None:
        self._condition_depth += 1
        self.visit(test)
        self._condition_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        self._visit_condition(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self._visit_condition(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._visit_condition(node.test)
        self.visit(node.body)
        self.visit(node.orelse)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._condition_depth += 1
        self.generic_visit(node)
        self._condition_depth -= 1

    # -- calls: RNG, clocks, id() --------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            root = dotted.split(".")[0]
            if root in _RNG_MODULES:
                self._emit(
                    RULE_RNG,
                    node,
                    f"call to '{dotted}()' in a bit-identity package",
                )
            elif "random" in dotted.split(".")[1:]:
                # numpy.random / np.random chains.
                self._emit(
                    RULE_RNG,
                    node,
                    f"call into '{dotted}()' (RNG) in a bit-identity package",
                )
            elif (
                dotted.startswith("time.")
                and dotted.split(".")[1] in _CLOCK_ATTRS
                and self._condition_depth > 0
            ):
                self._emit(
                    RULE_TIME_CONTROL,
                    node,
                    f"'{dotted}()' feeds control flow: wall-clock-dependent "
                    "branches make runs irreproducible (measuring into a "
                    "counter is fine; branching on it is not)",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            self._emit(
                RULE_ID_KEY,
                node,
                "'id()' used in a bit-identity package: CPython addresses "
                "vary per run, so id()-keyed maps or sort keys order "
                "differently every execution",
                severity="warning",
            )
        # ``sort(key=id)`` / ``sorted(xs, key=id)``.
        for keyword in node.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._emit(
                    RULE_ID_KEY,
                    node,
                    "'key=id' sorts by memory address — nondeterministic "
                    "across runs",
                )
        self.generic_visit(node)

    # -- REP203: bare-set iteration ------------------------------------

    def _check_iterable(self, iterable: ast.expr) -> None:
        if _SetTracker.is_set_expr(iterable, self._tracker.set_names):
            self._emit(
                RULE_SET_ITERATION,
                iterable,
                "iteration over a bare set: set order is salted per "
                "process; wrap in sorted(...) to pin a canonical order",
                severity="warning",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    # -- statement-level set tracking ----------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._tracker.observe_assign(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._tracker.observe_assign(node)
        self.generic_visit(node)


def check_determinism(tree: ast.Module, path: str) -> list[Finding]:
    """Run the determinism rules over one parsed module."""
    visitor = _DeterminismVisitor(path)
    visitor.visit(tree)
    return visitor.findings


__all__ = [
    "DETERMINISTIC_MARKER",
    "DETERMINISTIC_PACKAGES",
    "RULE_ID_KEY",
    "RULE_RNG",
    "RULE_SET_ITERATION",
    "RULE_TIME_CONTROL",
    "check_determinism",
    "is_deterministic_path",
]
