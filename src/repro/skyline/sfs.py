"""Sort-based skyline with early termination (LESS / SaLSa style).

Presorting by a dominance-monotone key (attribute sum, descending)
guarantees a point can only be dominated by points appearing *before*
it, so one filtered scan suffices (LESS [10]).  SaLSa's [3] stopping
rule is applied on top: once the sum watermark drops strictly below
the best minimum-coordinate of any skyline point found so far, every
remaining point is dominated and the scan stops without reading the
rest of the ordered input.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.rtree.geometry import dominates, sky_key_point

Point = tuple[float, ...]


def sfs_skyline(items: Sequence[tuple[int, Point]]) -> dict[int, Point]:
    """Skyline of ``(id, point)`` pairs via sort-filter-scan."""
    result: dict[int, Point] = {}
    return _scan(items, result)[0]


def sfs_skyline_with_stats(
    items: Sequence[tuple[int, Point]],
) -> tuple[dict[int, Point], int]:
    """Like :func:`sfs_skyline` but also returns how many of the sorted
    input points were actually examined (to verify early termination)."""
    result: dict[int, Point] = {}
    return _scan(items, result)


def _scan(
    items: Sequence[tuple[int, Point]], result: dict[int, Point]
) -> tuple[dict[int, Point], int]:
    # Dominance-monotone order: a dominator sorts strictly before the
    # points it dominates even when float rounding ties the sums.
    ordered = sorted(items, key=lambda it: (sky_key_point(it[1]), it[0]))
    skyline_points: list[Point] = []
    best_min = float("-inf")  # max over skyline of min coordinate
    examined = 0

    for oid, p in ordered:
        watermark = sum(p)
        if watermark < best_min:
            # Every remaining q has q_i <= sum(q) <= watermark < best_min
            # <= all coords of some skyline point: strictly dominated.
            break
        examined += 1
        if any(dominates(q, p) for q in skyline_points):
            continue
        result[oid] = p
        skyline_points.append(p)
        m = min(p)
        if m > best_min:
            best_min = m

    return result, examined
