"""Reference solvers: the greedy oracle and Gale–Shapley.

Both compute the canonical stable matching exactly but naively —
they materialize the full |F| x |O| preference structure and are used
as test oracles and teaching baselines, never in benchmarks at scale.

Under the canonical strict orders of :mod:`repro.ordering` the stable
matching is *unique* (both sides rank pairs by restrictions of one
global order), so the oracle, Gale–Shapley and all the paper's
algorithms must agree pair-for-pair; the test suite asserts this.
"""

from __future__ import annotations

import time

from repro.core.capacity import CapacityTracker
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.data.instances import FunctionSet, ObjectSet
from repro.ordering import function_key, object_key, pair_key
from repro.scoring import score


def greedy_assign(functions: FunctionSet, objects: ObjectSet) -> AssignmentResult:
    """The defining procedure of the problem statement: repeatedly take
    the best remaining (function, object) pair (Section 3), honoring
    capacities (Section 6.1) and priorities via effective weights
    (Section 6.2)."""
    start = time.perf_counter()
    matching = Matching()
    caps = CapacityTracker(functions, objects)

    all_pairs = sorted(
        (
            pair_key(score(w_eff, p), w_eff, fid, p, oid)
            for fid in range(len(functions))
            for w_eff in (functions.effective_weights(fid),)
            for oid, p in enumerate(objects.points)
        ),
    )
    for key in all_pairs:
        if caps.exhausted:
            break
        neg_score, _neg_w, fid, _neg_p, oid = key
        if not (caps.function_alive(fid) and caps.object_alive(oid)):
            continue
        units, _, _ = caps.assign(fid, oid)
        matching.add(fid, oid, -neg_score, units)

    stats = RunStats(cpu_seconds=time.perf_counter() - start)
    stats.counters["pairs_considered"] = len(all_pairs)
    return AssignmentResult(matching, stats)


def gale_shapley_assign(
    functions: FunctionSet, objects: ObjectSet
) -> AssignmentResult:
    """Function-proposing Gale–Shapley [9, 11] on the unit-expanded
    instance (each capacity unit is a clone), aggregated back to
    (fid, oid, units) pairs."""
    start = time.perf_counter()

    f_units: list[int] = []  # unit index -> fid
    for fid in range(len(functions)):
        f_units.extend([fid] * functions.capacity(fid))
    o_units: list[int] = []  # unit index -> oid
    for oid in range(len(objects)):
        o_units.extend([oid] * objects.capacity(oid))

    # Preference list of each function unit over object units:
    # canonical object order, clone index as the final tie-break.
    def object_pref(fid: int) -> list[int]:
        w = functions.effective_weights(fid)
        return sorted(
            range(len(o_units)),
            key=lambda u: (
                object_key(score(w, objects.points[o_units[u]]),
                           objects.points[o_units[u]], o_units[u]),
                u,
            ),
        )

    prefs = {fid: object_pref(fid) for fid in set(f_units)}
    next_choice = [0] * len(f_units)
    engaged_to: list[int | None] = [None] * len(o_units)  # o-unit -> f-unit
    free = list(range(len(f_units)))
    free.reverse()  # pop from the end, ascending unit order

    def f_unit_key(funit: int, oid: int):
        fid = f_units[funit]
        w = functions.effective_weights(fid)
        s = score(w, objects.points[oid])
        return (function_key(s, w, fid), funit)

    while free:
        funit = free.pop()
        fid = f_units[funit]
        pref = prefs[fid]
        while next_choice[funit] < len(pref):
            ounit = pref[next_choice[funit]]
            next_choice[funit] += 1
            oid = o_units[ounit]
            holder = engaged_to[ounit]
            if holder is None:
                engaged_to[ounit] = funit
                break
            if f_unit_key(funit, oid) < f_unit_key(holder, oid):
                engaged_to[ounit] = funit
                free.append(holder)
                break
        # else: the unit stays unmatched (more F units than O units).

    counts: dict[tuple[int, int], int] = {}
    for ounit, funit in enumerate(engaged_to):
        if funit is None:
            continue
        pair = (f_units[funit], o_units[ounit])
        counts[pair] = counts.get(pair, 0) + 1

    matching = Matching()
    for (fid, oid), units in sorted(counts.items()):
        s = score(functions.effective_weights(fid), objects.points[oid])
        matching.add(fid, oid, s, units)

    stats = RunStats(cpu_seconds=time.perf_counter() - start)
    return AssignmentResult(matching, stats)
