"""Route table: ``(method, path template) -> async handler``.

Templates use ``{name}`` placeholders matching one path segment
(``/v1/problems/{pid}/solve``); captured segments are passed to the
handler as keyword arguments.  A path that matches a template under a
different HTTP method resolves to 405 with an ``Allow`` header rather
than 404, so clients can tell a typo from a wrong verb.
"""

from __future__ import annotations

import re
from collections.abc import Awaitable, Callable
from dataclasses import dataclass

from repro.server.http import Request, Response

Handler = Callable[..., Awaitable[Response]]

_PLACEHOLDER = re.compile(r"\{(\w+)\}")


def _compile(template: str) -> re.Pattern[str]:
    parts: list[str] = []
    pos = 0
    for placeholder in _PLACEHOLDER.finditer(template):
        parts.append(re.escape(template[pos : placeholder.start()]))
        parts.append(f"(?P<{placeholder.group(1)}>[^/]+)")
        pos = placeholder.end()
    parts.append(re.escape(template[pos:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass(frozen=True)
class Route:
    method: str
    template: str
    pattern: re.Pattern[str]
    handler: Handler


class Router:
    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        self._routes.append(
            Route(method.upper(), template, _compile(template), handler)
        )

    def dispatch(
        self, request: Request
    ) -> tuple[Handler, dict[str, str]] | Response:
        """The matching ``(handler, path params)``, or a ready-made
        404/405 :class:`Response`."""
        allowed: set[str] = set()
        for route in self._routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            if route.method == request.method:
                return route.handler, match.groupdict()
            allowed.add(route.method)
        if allowed:
            return Response.json(
                {"error": f"method {request.method} not allowed for {request.path}"},
                status=405,
                **{"Allow": ", ".join(sorted(allowed))},
            )
        return Response.error(404, f"no route for {request.path}")


__all__ = ["Handler", "Route", "Router"]
