"""The benchmark harness itself: scales, caching, cell metrics,
reporting — so figure regeneration is trustworthy."""

import pytest

from repro.bench.config import Defaults, current_scale, defaults
from repro.bench.harness import (
    clear_caches,
    get_index,
    make_instance,
    run_cell,
)
from repro.bench.reporting import format_series


class TestConfig:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale() == "small"
        d = defaults()
        assert d.nf == 100 and d.no == 2000

    def test_scales(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        d = defaults()
        assert d.nf == 500 and d.no == 10000
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        d = defaults()
        assert d.nf == 5000 and d.no == 100000

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "gigantic")
        with pytest.raises(ValueError):
            current_scale()

    def test_sweeps_preserve_ratios(self):
        d = Defaults(nf=100, no=2000)
        assert d.f_sweep() == [20, 50, 100, 200, 400]
        assert d.o_sweep() == [200, 1000, 2000, 4000, 8000]


class TestHarness:
    def setup_method(self):
        clear_caches()

    def test_instance_caching(self):
        a = make_instance(10, 20, 3, seed=1)
        b = make_instance(10, 20, 3, seed=1)
        assert a[0] is b[0] and a[1] is b[1]
        c = make_instance(10, 20, 3, seed=2)
        assert c[0] is not a[0]

    def test_index_caching_per_backend(self):
        _, objects = make_instance(5, 50, 2, seed=3)
        a = get_index(objects)
        b = get_index(objects)
        assert a is b
        c = get_index(objects, memory=True)
        assert c is not a and c.is_memory

    def test_capacities_priorities_real(self):
        f, o = make_instance(
            8, 30, 3, seed=4, function_capacity=3, object_capacity=2,
            max_priority=4,
        )
        assert f.total_capacity == 24
        assert o.total_capacity == 60
        assert f.max_gamma <= 4
        fz, oz = make_instance(5, 40, 3, seed=5, real="zillow")
        assert oz.dims == 5 and fz.dims == 5
        with pytest.raises(ValueError):
            make_instance(5, 40, 3, seed=5, real="imdb")

    def test_run_cell_metrics(self):
        f, o = make_instance(10, 200, 3, seed=6)
        cell = run_cell("sb", f, o, params={"x": 1})
        assert cell.method == "sb"
        assert cell.pairs == 10
        assert cell.io > 0
        assert cell.cpu_seconds > 0
        assert cell.loops > 0
        assert cell.params == {"x": 1}

    def test_run_cell_cold_start_is_deterministic(self):
        f, o = make_instance(10, 200, 3, seed=7)
        a = run_cell("sb", f, o)
        b = run_cell("sb", f, o)
        assert a.io == b.io and a.loops == b.loops


class TestReporting:
    def test_format_series_layout(self):
        f, o = make_instance(5, 100, 2, seed=8)
        cells = [
            run_cell("sb", f, o, params={"D": 2}),
            run_cell("brute-force", f, o, params={"D": 2}),
        ]
        text = format_series("Figure X", "D", [2], cells)
        assert "Figure X" in text
        assert "I/O accesses" in text
        assert "CPU time" in text
        assert "peak memory" in text
        assert "sb" in text and "brute-force" in text

    def test_missing_cell_renders_dash(self):
        f, o = make_instance(5, 100, 2, seed=9)
        cells = [run_cell("sb", f, o, params={"D": 2})]
        text = format_series("Fig", "D", [2, 3], cells)
        assert "-" in text.splitlines()[-3]
