"""The canonical-order lemmas everything else relies on.

The coordinate-lex component of the canonical orders (:mod:`repro.ordering`)
guarantees (a) the canonical best object for any monotone linear
function is a skyline member, and (b) the canonical best function for
any object is a member of the (effective-weight) function skyline.
These two lemmas are what make SB and the two-skyline variant exact
even under ties; they are tested here directly.
"""

from hypothesis import given, settings

from repro.ordering import function_key, neg, object_key, pair_key
from repro.scoring import score
from repro.skyline.reference import naive_skyline

from .conftest import points_strategy, random_points, random_weights, weights_strategy


def test_neg():
    assert neg((1.0, -2.0)) == (-1.0, 2.0)


def test_object_key_orders_score_first():
    assert object_key(0.9, (0.1, 0.1), 5) < object_key(0.5, (1.0, 1.0), 0)


def test_object_key_tie_prefers_lex_greater_coords():
    # Equal scores: the dominator (lex-greater) must win.
    k_dom = object_key(0.5, (0.5, 0.3), 7)
    k_sub = object_key(0.5, (0.5, 0.2), 1)
    assert k_dom < k_sub


def test_object_key_final_tie_prefers_smaller_id():
    assert object_key(0.5, (0.5, 0.5), 1) < object_key(0.5, (0.5, 0.5), 2)


def test_function_key_mirrors_object_key():
    assert function_key(0.9, (0.5, 0.5), 3) < function_key(0.8, (0.9, 0.1), 0)
    assert function_key(0.5, (0.6, 0.4), 9) < function_key(0.5, (0.5, 0.5), 0)


def test_pair_key_consistent_with_side_orders():
    # Same function: pair order follows the object order.
    w = (0.5, 0.5)
    p_good, p_bad = (0.9, 0.9), (0.1, 0.1)
    assert pair_key(score(w, p_good), w, 1, p_good, 0) < pair_key(
        score(w, p_bad), w, 1, p_bad, 1
    )


@given(points_strategy(3, min_size=1, max_size=30), weights_strategy(3, 1, 1))
@settings(max_examples=60, deadline=None)
def test_lemma_canonical_best_object_is_on_skyline(pts, ws):
    """For ANY normalized weights (ties included), the canonical argmax
    object is a skyline member."""
    w = ws[0]
    items = list(enumerate(pts))
    best_oid = min(
        (object_key(score(w, p), p, oid), oid) for oid, p in items
    )[1]
    assert best_oid in naive_skyline(items)


@given(weights_strategy(3, min_size=1, max_size=20), points_strategy(3, 1, 1))
@settings(max_examples=60, deadline=None)
def test_lemma_canonical_best_function_is_on_function_skyline(ws, pts):
    """Dual lemma for the two-skyline variant (Section 6.2)."""
    o = pts[0]
    items = list(enumerate(ws))
    best_fid = min(
        (function_key(score(w, o), w, fid), fid) for fid, w in items
    )[1]
    assert best_fid in naive_skyline(items)


def test_lemma_with_priorities(rng):
    """Effective (γ-scaled) weights keep the dual lemma valid."""
    for _ in range(30):
        ws = random_weights(15, 3, rng, tie_heavy=True)
        gammas = [float(rng.randint(1, 4)) for _ in range(15)]
        eff = [tuple(g * x for x in w) for w, g in zip(ws, gammas)]
        o = tuple(rng.random() for _ in range(3))
        items = list(enumerate(eff))
        best_fid = min(
            (function_key(score(w, o), w, fid), fid) for fid, w in items
        )[1]
        assert best_fid in naive_skyline(items)


def test_mutual_best_is_greedy_member(rng):
    """Property-2 sanity: a mutually canonical-best pair always appears
    in the canonical greedy matching."""
    from repro.core.reference import greedy_assign
    from repro.data.instances import FunctionSet, ObjectSet

    for trial in range(20):
        ws = random_weights(8, 2, rng, tie_heavy=True)
        pts = random_points(12, 2, rng, tie_heavy=True)
        fs, os_ = FunctionSet(ws), ObjectSet(pts)

        # Compute the mutually-best pair over the full sets.
        fbest = {}
        for oid, p in enumerate(pts):
            fbest[oid] = min(
                (function_key(score(w, p), w, fid), fid)
                for fid, w in enumerate(ws)
            )[1]
        obest = {}
        for fid, w in enumerate(ws):
            obest[fid] = min(
                (object_key(score(w, p), p, oid), oid)
                for oid, p in enumerate(pts)
            )[1]
        mutual = [
            (fid, obest[fid]) for fid in range(len(ws))
            if fbest[obest[fid]] == fid
        ]
        assert mutual, "at least one mutually-best pair must exist"
        matching = greedy_assign(fs, os_).matching.as_dict()
        for pair in mutual:
            assert pair in matching
