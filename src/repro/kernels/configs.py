"""Vectorized engine configs and their solve entry points.

``sb-vec`` is the columnar twin of ``sb`` (multi-pair commit) and
``sb-deltasky-vec`` the twin of ``sb-deltasky`` (single-pair commit,
matching the unoptimized preset of its interpreted namesake).  Both
run inside the ordinary :class:`~repro.engine.engine.AssignmentEngine`
round loop — only the maintenance and round seams are columnar — so
commit, capacity and loop accounting are literally the shared engine
code, not re-implementations.

The maintenance and round strategies share one
:class:`~repro.kernels.columnar.ColumnarInstance` and the maintenance
object itself (the round reads its skyline masks).  Config builders
may be reused across runs and threads, so the handoff between
``build_maintenance`` and ``build_round`` is keyed by the identity of
the per-run :class:`~repro.engine.engine.EngineContext` rather than
stored on the factory.
"""

from __future__ import annotations

from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet
from repro.engine.commit import build_commit_policy
from repro.engine.engine import AssignmentEngine, EngineConfig, EngineContext
from repro.kernels.columnar import ColumnarInstance
from repro.kernels.rounds import VectorizedMutualRound
from repro.kernels.skyline import VectorizedSkylineMaintenance


def _vectorized_config(name: str, multi_pair: bool) -> EngineConfig:
    pending: dict[int, VectorizedSkylineMaintenance] = {}

    def build_maintenance(ctx: EngineContext) -> VectorizedSkylineMaintenance:
        maintenance = VectorizedSkylineMaintenance(
            ctx, ColumnarInstance(ctx.functions, ctx.objects)
        )
        pending[id(ctx)] = maintenance
        return maintenance

    def build_round(ctx: EngineContext) -> VectorizedMutualRound:
        return VectorizedMutualRound(ctx, pending.pop(id(ctx)))

    return EngineConfig(
        name=name,
        build_maintenance=build_maintenance,
        build_round=build_round,
        build_commit=lambda ctx: build_commit_policy(ctx, multi_pair),
    )


def sb_vec_config(*, multi_pair: bool = True) -> EngineConfig:
    """Columnar twin of ``sb`` (multi-pair commit by default)."""
    return _vectorized_config("sb-vec", multi_pair)


def sb_deltasky_vec_config(*, multi_pair: bool = False) -> EngineConfig:
    """Columnar twin of ``sb-deltasky`` (single-pair commit by default,
    the unoptimized preset of the interpreted variant)."""
    return _vectorized_config("sb-deltasky-vec", multi_pair)


def sb_vec_assign(functions: FunctionSet, index, **kwargs) -> AssignmentResult:
    return AssignmentEngine(sb_vec_config(**kwargs)).run(functions, index)


def sb_deltasky_vec_assign(
    functions: FunctionSet, index, **kwargs
) -> AssignmentResult:
    return AssignmentEngine(sb_deltasky_vec_config(**kwargs)).run(functions, index)


#: Vectorized config factories by name, mirroring
#: :data:`repro.engine.configs.ENGINE_CONFIGS`.
VECTORIZED_CONFIGS = {
    "sb-vec": sb_vec_config,
    "sb-deltasky-vec": sb_deltasky_vec_config,
}
