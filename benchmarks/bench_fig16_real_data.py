"""Figure 16 — real datasets (Section 7.5), via the documented
synthetic substitutes of :mod:`repro.data.real` (DESIGN.md §5).

(a, b): Zillow-like skewed housing data, |O| swept as in Figure 11.
The paper's observation: skew hurts the top-1-search methods' CPU
even more than synthetic data, while SB is unaffected.

(c, d): NBA-like player stats (|O| = 12,278 scaled) under function
capacities k in {1, 5, 9, 12}, as a capacitated assignment.
"""

import pytest

from repro.bench.config import NBA_CAPACITY_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]

# The paper uses |F|=1000 with NBA's 12,278 players; scale both.
NBA_N = max(200, 12278 // D.divisor)
NBA_NF = max(2, 1000 // D.divisor)


@pytest.mark.benchmark(group="fig16ab-zillow")
@pytest.mark.parametrize("no", D.o_sweep())
@pytest.mark.parametrize("method", METHODS)
def test_fig16_zillow(benchmark, method, no):
    functions, objects = make_instance(D.nf, no, 5, seed=16, real="zillow")
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))


@pytest.mark.benchmark(group="fig16cd-nba")
@pytest.mark.parametrize("k", NBA_CAPACITY_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig16_nba(benchmark, method, k):
    functions, objects = make_instance(
        NBA_NF, NBA_N, 5, seed=16, real="nba", function_capacity=k
    )
    matching, stats = bench_cell(benchmark, method, functions, objects)
    expected = min(functions.total_capacity, objects.total_capacity)
    assert matching.num_units == expected
