"""Benchmark parameter scales.

Table 2 of the paper (defaults in bold there):

=========================  =======================  =========
parameter                   paper range              default
=========================  =======================  =========
|F| (thousands)             1, 2.5, 5, 10, 20        5
|O| (thousands)             10, 50, 100, 200, 400    100
dimensionality D            3, 4, 5, 6               4
capacity k                  1, 2, 4, 8, 16           1
max priority γ              1, 2, 4, 8, 16           1
buffer size                 0–10% of the tree        2%
=========================  =======================  =========

Pure Python cannot run C++-scale sweeps in benchmark time, so the
``small`` scale divides both cardinalities by 50 while keeping every
*ratio* of the paper's sweeps (|F|/|O|, sweep multipliers, D range,
k and γ ranges, buffer fractions) — the cost *shapes* are what the
reproduction targets.  ``REPRO_BENCH_SCALE=medium`` divides by 10;
``=paper`` runs the original sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_SCALES = {
    "small": 50,
    "medium": 10,
    "paper": 1,
}

#: The paper's defaults (Table 2).
PAPER_F = 5_000
PAPER_O = 100_000


def current_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={scale!r}; expected one of {sorted(_SCALES)}"
        )
    return scale


@dataclass(frozen=True)
class Defaults:
    """Scaled Table 2 defaults."""

    nf: int
    no: int
    dims: int = 4
    distribution: str = "anti-correlated"
    buffer_fraction: float = 0.02
    page_size: int = 4096
    omega_fraction: float = 0.025

    @property
    def divisor(self) -> int:
        return PAPER_F // self.nf

    def f_sweep(self) -> list[int]:
        """Scaled Figure 10 sweep: paper {1, 2.5, 5, 10, 20}k."""
        return [max(2, int(k * 1000) // self.divisor) for k in (1, 2.5, 5, 10, 20)]

    def o_sweep(self) -> list[int]:
        """Scaled Figure 11 sweep: paper {10, 50, 100, 200, 400}k."""
        return [max(10, k * 1000 // self.divisor) for k in (10, 50, 100, 200, 400)]


def defaults() -> Defaults:
    divisor = _SCALES[current_scale()]
    return Defaults(nf=PAPER_F // divisor, no=PAPER_O // divisor)


# Paper sweep ranges that need no scaling.
DIMS_SWEEP = [3, 4, 5, 6]
DIMS_SWEEP_FIG8 = [3, 4, 5]
CLUSTER_SWEEP = [1, 3, 5, 7, 9]
BUFFER_SWEEP = [0.0, 0.01, 0.02, 0.05, 0.10]
CAPACITY_SWEEP = [2, 4, 8, 16]
PRIORITY_SWEEP = [2, 4, 8, 16]
NBA_CAPACITY_SWEEP = [1, 5, 9, 12]
