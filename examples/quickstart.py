#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 internship example, on `repro.api`.

Three students express preferences over salary (X) and company
standing (Y); four internship positions are on offer.  The fair
assignment is the stable matching: the (student, position) pair with
the highest score is fixed first, then the next, and so on.

The public surface is three objects: an immutable ``Problem`` (built
fluently, JSON-serializable), an ``AssignmentSession`` (owns the
object index, solves, accepts churn events), and a ``Solution``
(O(1) partner lookups, stability certification, diffs).

Run:  python examples/quickstart.py
"""

from repro.api import AssignmentSession, ObjectDeparted, Problem

POSITIONS = {
    "a": (0.5, 0.6),
    "b": (0.2, 0.7),
    "c": (0.8, 0.2),
    "d": (0.4, 0.4),
}

STUDENTS = {
    "f1 (salary hunter)": (0.8, 0.2),
    "f2 (prestige hunter)": (0.2, 0.8),
    "f3 (balanced)": (0.5, 0.5),
}


def main() -> None:
    position_names = list(POSITIONS)
    student_names = list(STUDENTS)

    problem = (
        Problem.builder()
        .add_objects(list(POSITIONS.values()))
        .add_functions(list(STUDENTS.values()))
        .solver("sb")
        .build()
    )

    # Problems are values: they cross process boundaries as JSON.
    assert Problem.from_json(problem.to_json()) == problem

    with AssignmentSession(problem) as session:
        solution = session.solve().verify()  # certified stable

        print("Stable internship assignment (paper Figure 1):")
        for pair in solution:
            student = student_names[pair.fid]
            position = position_names[pair.oid]
            print(
                f"  {student:22s} -> position {position}   "
                f"score {pair.score:.2f}"
            )
        stats = solution.stats
        print(
            f"\nPairs found over {stats.loops} loop(s), "
            f"{stats.io_accesses} page read(s)."
        )

        # The paper's walk-through: c goes to f1 (score 0.68), then b
        # to f2, then a to f3.
        expected = {(0, 2), (1, 1), (2, 0)}
        assert {(p.fid, p.oid) for p in solution} == expected
        assert solution.partner_of(0) == ((2, 1),)
        print(
            "Matches the paper's worked example: (f1, c), (f2, b), (f3, a)."
        )

        # Churn (the paper's future-work scenario): position c is
        # withdrawn and the matching is repaired incrementally.
        after = session.apply(ObjectDeparted(2))
        session.verify_current()
        diff = session.last_diff
        print("\nPosition c withdrawn; incremental repair moved:")
        for fid, oid, _units in diff.added:
            print(
                f"  {student_names[fid]:22s} -> position "
                f"{position_names[oid]}"
            )
        assert {(p.fid, p.oid) for p in after} == {(0, 3), (1, 1), (2, 0)}
        print("Every other student kept their position.")


if __name__ == "__main__":
    main()
