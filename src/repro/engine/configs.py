"""Named engine configurations — every solver as a declarative value.

Each of the paper's algorithms (and each Figure 8 ablation variant)
is expressed purely as a choice of the three strategy seams; no
solver carries a private round loop anymore.  The table:

===================  ==================  ===================  ===========
config                skyline              best-pair search     commit
===================  ==================  ===================  ===========
``sb``                UpdateSkyline        resumable biased     multi-pair
                                           Ω-bounded TA
``sb-update``         UpdateSkyline        fresh round-robin    single-pair
                                           TA
``sb-deltasky``       DeltaSky             resumable biased     multi-pair
                                           Ω-bounded TA
``sb-alt``            UpdateSkyline        batch TA sweep       multi-pair
``sb-two-skylines``   UpdateSkyline        exhaustive Fsky      multi-pair
                                           scan
``chain``             (none)               mutual top-1 chase   multi-pair
``sb-vec``            columnar masks       one matmul/round     multi-pair
``sb-deltasky-vec``   columnar masks       one matmul/round     single-pair
===================  ==================  ===================  ===========

The two ``*-vec`` configs are the columnar twins of
:mod:`repro.kernels` — bit-identical pairs, vectorized inner loops.

Individual keyword arguments override a preset (for the ablation
benchmarks), exactly as the pre-refactor solver signatures did.
"""

from __future__ import annotations

from repro.engine.commit import build_commit_policy
from repro.engine.engine import EngineConfig, EngineContext
from repro.engine.rounds import ChainRound, MutualBestRound
from repro.engine.search import BatchTASearch, FskySearch, ReverseTASearch
from repro.engine.skyline import NoSkyline, build_object_skyline
from repro.errors import UnknownSolverError

SB_VARIANTS = ("sb", "sb-update", "sb-deltasky")


def sb_config(
    variant: str = "sb",
    *,
    omega_fraction: float | None = 0.025,
    multi_pair: bool | None = None,
    biased: bool | None = None,
    resume: bool | None = None,
    maintenance: str | None = None,
    paged_function_lists: int | None = None,
) -> EngineConfig:
    """SB and its Figure 8 ablation variants.

    ``variant`` presets the optimization toggles; individual keyword
    arguments override the preset.  ``omega_fraction`` is the paper's
    ω (default 2.5%, Section 7); ``None`` disables the Ω bound.
    ``paged_function_lists`` materializes the coefficient lists on
    simulated disk pages of the given size (Section 7.6).
    """
    if variant not in SB_VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {SB_VARIANTS}"
        )
    optimized = variant == "sb"
    if multi_pair is None:
        multi_pair = optimized
    if biased is None:
        biased = optimized
    if resume is None:
        resume = optimized
    if maintenance is None:
        maintenance = "deltasky" if variant == "sb-deltasky" else "update-skyline"

    def build_round(ctx: EngineContext) -> MutualBestRound:
        omega = None
        if optimized and omega_fraction is not None:
            omega = max(1, int(omega_fraction * len(ctx.functions)))
        search = ReverseTASearch(
            ctx, resume=resume, biased=biased, omega=omega,
            paged_page_size=paged_function_lists,
        )
        return MutualBestRound(ctx, search)

    return EngineConfig(
        name=variant,
        build_maintenance=lambda ctx: build_object_skyline(ctx, maintenance),
        build_round=build_round,
        build_commit=lambda ctx: build_commit_policy(ctx, multi_pair),
    )


def sb_alt_config(
    *, page_size: int = 4096, multi_pair: bool = True
) -> EngineConfig:
    """SB-alt: batch best-pair search over disk-resident lists (7.6)."""
    return EngineConfig(
        name="sb-alt",
        build_maintenance=lambda ctx: build_object_skyline(ctx, "update-skyline"),
        build_round=lambda ctx: MutualBestRound(
            ctx, BatchTASearch(ctx, page_size=page_size)
        ),
        build_commit=lambda ctx: build_commit_policy(ctx, multi_pair),
    )


def two_skyline_config(*, multi_pair: bool = True) -> EngineConfig:
    """The prioritized two-skyline variant (Section 6.2)."""
    return EngineConfig(
        name="sb-two-skylines",
        build_maintenance=lambda ctx: build_object_skyline(ctx, "update-skyline"),
        build_round=lambda ctx: MutualBestRound(ctx, FskySearch(ctx)),
        build_commit=lambda ctx: build_commit_policy(ctx, multi_pair),
    )


def chain_config(*, disk_function_tree: bool = False) -> EngineConfig:
    """The adapted Chain of Wong et al. [25] (Section 7)."""
    return EngineConfig(
        name="chain",
        build_maintenance=lambda ctx: NoSkyline(),
        build_round=lambda ctx: ChainRound(
            ctx, disk_function_tree=disk_function_tree
        ),
        build_commit=lambda ctx: build_commit_policy(ctx, True),
    )


def _vectorized_factory(name: str):
    """Lazy factory for the columnar configs of :mod:`repro.kernels`
    (imported on first use — the kernels package imports the engine)."""

    def factory(**kw):
        from repro.kernels.configs import VECTORIZED_CONFIGS

        return VECTORIZED_CONFIGS[name](**kw)

    return factory


#: Every engine-backed solver by name; values are config factories so
#: callers can pass per-run keyword overrides.
ENGINE_CONFIGS = {
    "sb": lambda **kw: sb_config("sb", **kw),
    "sb-update": lambda **kw: sb_config("sb-update", **kw),
    "sb-deltasky": lambda **kw: sb_config("sb-deltasky", **kw),
    "sb-alt": sb_alt_config,
    "sb-two-skylines": two_skyline_config,
    "chain": chain_config,
    "sb-vec": _vectorized_factory("sb-vec"),
    "sb-deltasky-vec": _vectorized_factory("sb-deltasky-vec"),
}


def engine_config(name: str, **kwargs) -> EngineConfig:
    """Build a named engine configuration (with keyword overrides)."""
    try:
        factory = ENGINE_CONFIGS[name]
    except KeyError:
        raise UnknownSolverError(name, ENGINE_CONFIGS, kind="engine config") from None
    return factory(**kwargs)
