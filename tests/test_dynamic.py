"""Dynamic stable-matching maintenance (the paper's future work)."""

import random

import pytest

from repro.core.dynamic import DynamicStableMatching
from repro.core.reference import greedy_assign
from repro.core.validate import assert_stable
from repro.data.instances import FunctionSet, ObjectSet

from .conftest import random_points, random_weights


def oracle(dyn: DynamicStableMatching):
    """From-scratch canonical matching over the current population,
    relabeled back to the dynamic handles."""
    fids = sorted(dyn._weights)
    oids = sorted(dyn._points)
    if not fids or not oids:
        return {}
    fs = FunctionSet(
        [dyn._weights[f] for f in fids],
        capacities=[dyn._f_caps[f] for f in fids],
    )
    os_ = ObjectSet(
        [dyn._points[o] for o in oids],
        capacities=[dyn._o_caps[o] for o in oids],
    )
    raw = greedy_assign(fs, os_).matching.as_dict()
    return {(fids[f], oids[o]): c for (f, o), c in raw.items()}


def test_empty_start():
    dyn = DynamicStableMatching()
    assert dyn.matching.num_units == 0
    fid = dyn.add_function((0.5, 0.5))
    assert dyn.matching.num_units == 0  # no objects yet
    oid = dyn.add_object((0.9, 0.1))
    assert dyn.matching.as_dict() == {(fid, oid): 1}


def test_arrival_steals_better_object():
    dyn = DynamicStableMatching()
    f = dyn.add_function((1.0, 0.0))
    o_weak = dyn.add_object((0.3, 0.3))
    assert dyn.matching.as_dict() == {(f, o_weak): 1}
    o_strong = dyn.add_object((0.9, 0.9))
    # The function upgrades; the weak object is freed.
    assert dyn.matching.as_dict() == {(f, o_strong): 1}


def test_departure_falls_back():
    dyn = DynamicStableMatching()
    f = dyn.add_function((1.0, 0.0))
    o1 = dyn.add_object((0.9, 0.9))
    o2 = dyn.add_object((0.3, 0.3))
    assert dyn.matching.as_dict() == {(f, o1): 1}
    dyn.remove_object(o1)
    assert dyn.matching.as_dict() == {(f, o2): 1}


def test_unknown_handles_rejected():
    dyn = DynamicStableMatching()
    with pytest.raises(KeyError):
        dyn.remove_function(0)
    with pytest.raises(KeyError):
        dyn.remove_object(0)
    with pytest.raises(ValueError):
        dyn.add_function((1.0,), capacity=0)


def test_partner_lookups():
    dyn = DynamicStableMatching()
    f = dyn.add_function((0.5, 0.5), capacity=2)
    o1 = dyn.add_object((0.8, 0.8))
    o2 = dyn.add_object((0.6, 0.6))
    assert sorted(dyn.partner_of_function(f)) == [(o1, 1), (o2, 1)]
    assert dyn.partner_of_object(o1) == [(f, 1)]


@pytest.mark.parametrize("seed", range(5))
def test_random_event_stream_matches_oracle(seed):
    """The real guarantee: after *every* event the maintained matching
    equals a from-scratch recomputation."""
    rng = random.Random(seed)
    dyn = DynamicStableMatching()
    live_f: list[int] = []
    live_o: list[int] = []
    for step in range(60):
        roll = rng.random()
        if roll < 0.3 or not live_f:
            w = random_weights(1, 3, rng, tie_heavy=(step % 2 == 0))[0]
            live_f.append(dyn.add_function(w, capacity=rng.randint(1, 3)))
        elif roll < 0.6 or not live_o:
            p = random_points(1, 3, rng, tie_heavy=(step % 2 == 0))[0]
            live_o.append(dyn.add_object(p, capacity=rng.randint(1, 3)))
        elif roll < 0.8 and live_f:
            fid = live_f.pop(rng.randrange(len(live_f)))
            dyn.remove_function(fid)
        elif live_o:
            oid = live_o.pop(rng.randrange(len(live_o)))
            dyn.remove_object(oid)
        assert dyn.matching.as_dict() == oracle(dyn), step


def test_maintained_matching_is_stable():
    rng = random.Random(99)
    dyn = DynamicStableMatching()
    handles_f, handles_o = [], []
    for _ in range(12):
        handles_f.append(dyn.add_function(random_weights(1, 3, rng)[0]))
    for _ in range(20):
        handles_o.append(dyn.add_object(random_points(1, 3, rng)[0]))
    for oid in handles_o[:5]:
        dyn.remove_object(oid)

    fids = sorted(dyn._weights)
    oids = sorted(dyn._points)
    fs = FunctionSet([dyn._weights[f] for f in fids])
    os_ = ObjectSet([dyn._points[o] for o in oids])
    from repro.core.types import Matching

    relabeled = Matching()
    f_pos = {f: i for i, f in enumerate(fids)}
    o_pos = {o: i for i, o in enumerate(oids)}
    for p in dyn.matching.pairs:
        relabeled.add(f_pos[p.fid], o_pos[p.oid], p.score, p.count)
    assert_stable(relabeled, fs, os_)


def test_suffix_rematch_is_partial():
    """Updates near the bottom of the score range must not re-match
    the whole assignment (the incremental prefix is retained)."""
    rng = random.Random(5)
    dyn = DynamicStableMatching()
    for _ in range(30):
        dyn.add_function(random_weights(1, 2, rng)[0])
    for _ in range(40):
        dyn.add_object(tuple(0.5 + 0.5 * rng.random() for _ in range(2)))
    total_pairs = len(dyn._pairs)
    # A hopeless object (dominated by everything) arrives: no emitted
    # pair is affected.
    dyn.add_object((0.0, 0.0))
    assert dyn.suffix_rematch_count == 0
    # A world-beating object arrives: everything after the first
    # greedy step is up for re-matching.
    dyn.add_object((1.0, 1.0))
    assert dyn.suffix_rematch_count >= total_pairs - 1
