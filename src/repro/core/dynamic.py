"""Dynamic stable-matching maintenance (the paper's future work).

The paper's conclusion: "we plan to study issues such as the
maintenance of a fair matching in a system, where objects are
dynamically allocated/freed."  This module implements that extension
for in-memory instances: a :class:`DynamicStableMatching` accepts
object/function arrivals and departures and keeps the canonical
stable matching current without recomputing it from scratch.

The key structural fact (provable from the greedy definition): the
canonical matching is the greedy fixpoint over pairs sorted by the
canonical pair order, so an update can only change the outcome from
the *first greedy step whose choice set changed*.  Each update
therefore:

1. locates the earliest emitted pair that the event can affect — for
   an arriving object ``o`` that is the first pair canonically worse
   than the best possible pair involving ``o``; for a departing
   object, the first pair that involves it (symmetrically for
   functions);
2. keeps the unaffected prefix of the emitted pair sequence;
3. re-runs greedy on the surviving suffix participants only.

The emitted sequence is always globally sorted by the canonical pair
key (each greedy step takes the minimum remaining key, and suffix
keys exceed the probe key bounding the prefix), so step 1 is a
``bisect`` over a parallel key list, and per-handle position indexes
answer ``partner_of_*`` and departure cuts without scanning.

Two interchangeable backends run step 3:

- ``backend="interp"`` — the reference pure-Python greedy (sorted
  exact pair keys, one scalar ``score()`` per candidate pair);
- ``backend="vec"`` — the columnar churn kernel of
  :mod:`repro.kernels.dynamic`: mutable preallocated coordinate and
  weight matrices mirror the live population, and the suffix is
  re-matched with masked mutual-best matmul rounds plus
  reference-dominator skyline repair.

Both backends produce byte-identical emitted pairs (handles, float
scores, units, order) — the property tests assert equality against
each other and against a from-scratch oracle after every event.

On workloads where churn hits the middle of the score range this
re-matches a fraction of the pairs instead of all of them; the tests
verify exact equivalence against a from-scratch oracle after every
event and measure that the suffix work is genuinely partial.
"""

# repro-lint: deterministic-module

from __future__ import annotations

from bisect import bisect_right

from repro.core.types import Matching
from repro.data.instances import FunctionSet, ObjectSet, Point
from repro.kernels.dynamic import VectorizedChurnState
from repro.ordering import PairKey, pair_key
from repro.scoring import score

#: Valid values of the ``backend`` constructor argument.
CHURN_BACKENDS = ("interp", "vec")


class DynamicStableMatching:
    """Maintains the canonical stable matching under churn.

    Functions and objects are identified by the integer handles
    returned from ``add_function`` / ``add_object``.  Capacities are
    supported the same way as in the static solvers; priorities via
    pre-scaled (effective) weight vectors.

    ``backend`` selects the suffix-rematch engine (see the module
    docstring); both backends maintain byte-identical state.  The
    vectorized backend additionally requires all weight/point tuples
    of a side to share one dimensionality (``ValueError`` otherwise).
    """

    def __init__(self, backend: str = "interp") -> None:
        if backend not in CHURN_BACKENDS:
            raise ValueError(
                f"unknown churn backend {backend!r}; expected one of {CHURN_BACKENDS}"
            )
        self.backend = backend
        self._vec = VectorizedChurnState() if backend == "vec" else None
        self._weights: dict[int, tuple[float, ...]] = {}
        self._f_caps: dict[int, int] = {}
        self._points: dict[int, Point] = {}
        self._o_caps: dict[int, int] = {}
        self._next_f = 0
        self._next_o = 0
        # Emitted pair sequence in canonical greedy order:
        # (pair_key, fid, oid, score, units).
        self._pairs: list[tuple[PairKey, int, int, float, int]] = []
        #: Parallel ascending key list (the bisect target of cut probes).
        self._keys: list[PairKey] = []
        #: handle → ascending positions of its pairs in ``_pairs``.
        self._f_pos: dict[int, list[int]] = {}
        self._o_pos: dict[int, list[int]] = {}
        self.suffix_rematch_count = 0  # pairs re-examined by last event
        #: Cumulative churn counters (events only; seeding is free).
        self.events_applied = 0
        self.pairs_rematched = 0
        self.full_rematches = 0

    @classmethod
    def from_instance(
        cls,
        functions: FunctionSet,
        objects: ObjectSet,
        backend: str = "interp",
    ) -> "DynamicStableMatching":
        """Seed from static instance containers in one bulk rematch.

        Handles equal the containers' positional ids (function ``i`` of
        the :class:`FunctionSet` becomes dynamic handle ``i``, same for
        objects).  Priorities enter as γ-scaled effective weights, the
        same canonical order the static solvers use, so the seeded
        matching is exactly the static solution.
        """
        dyn = cls(backend=backend)
        for fid, _ in functions.items():
            dyn._register_function(
                fid, tuple(functions.effective_weights(fid)), functions.capacity(fid)
            )
        dyn._next_f = len(functions)
        for oid, point in objects.items():
            dyn._register_object(oid, tuple(point), objects.capacity(oid))
        dyn._next_o = len(objects)
        dyn._rematch_from(0)
        return dyn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def matching(self) -> Matching:
        out = Matching()
        for _, fid, oid, s, units in self._pairs:
            out.add(fid, oid, s, units)
        return out

    @property
    def num_functions(self) -> int:
        return len(self._weights)

    @property
    def num_objects(self) -> int:
        return len(self._points)

    def partner_of_function(self, fid: int) -> list[tuple[int, int]]:
        return [
            (self._pairs[i][2], self._pairs[i][4]) for i in self._f_pos.get(fid, ())
        ]

    def partner_of_object(self, oid: int) -> list[tuple[int, int]]:
        return [
            (self._pairs[i][1], self._pairs[i][4]) for i in self._o_pos.get(oid, ())
        ]

    def churn_info(self) -> dict[str, int | str]:
        """Cumulative churn cost counters since construction."""
        return {
            "backend": self.backend,
            "events_applied": self.events_applied,
            "pairs_rematched": self.pairs_rematched,
            "full_rematches": self.full_rematches,
            "suffix_rematch_count": self.suffix_rematch_count,
            "kernel_score_cells": self._vec.score_cells if self._vec else 0,
            "kernel_tie_resolutions": self._vec.tie_resolutions if self._vec else 0,
        }

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def add_function(
        self, weights: tuple[float, ...], capacity: int = 1
    ) -> int:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        fid = self._next_f
        self._next_f += 1
        self._register_function(fid, tuple(weights), capacity)
        self.events_applied += 1
        self._rematch_from(self._first_affected_by_function(fid))
        return fid

    def remove_function(self, fid: int) -> None:
        if fid not in self._weights:
            raise KeyError(f"unknown function {fid}")
        cut = self._first_pair_involving(fid=fid)
        self._unregister_function(fid)
        self.events_applied += 1
        self._rematch_from(cut)

    def add_object(self, point: Point, capacity: int = 1) -> int:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        oid = self._next_o
        self._next_o += 1
        self._register_object(oid, tuple(point), capacity)
        self.events_applied += 1
        self._rematch_from(self._first_affected_by_object(oid))
        return oid

    def remove_object(self, oid: int) -> None:
        """Free an object (e.g. a returned housing unit)."""
        if oid not in self._points:
            raise KeyError(f"unknown object {oid}")
        cut = self._first_pair_involving(oid=oid)
        self._unregister_object(oid)
        self.events_applied += 1
        self._rematch_from(cut)

    # ------------------------------------------------------------------
    # Population registry (dicts + optional columnar mirror)
    # ------------------------------------------------------------------

    def _register_function(
        self, fid: int, weights: tuple[float, ...], capacity: int
    ) -> None:
        self._weights[fid] = weights
        self._f_caps[fid] = capacity
        if self._vec is not None:
            self._vec.functions.add(fid, weights, capacity)

    def _unregister_function(self, fid: int) -> None:
        del self._weights[fid]
        del self._f_caps[fid]
        if self._vec is not None:
            self._vec.functions.remove(fid)

    def _register_object(self, oid: int, point: Point, capacity: int) -> None:
        self._points[oid] = point
        self._o_caps[oid] = capacity
        if self._vec is not None:
            self._vec.objects.add(oid, point, capacity)

    def _unregister_object(self, oid: int) -> None:
        del self._points[oid]
        del self._o_caps[oid]
        if self._vec is not None:
            self._vec.objects.remove(oid)

    # ------------------------------------------------------------------
    # Incremental repair
    # ------------------------------------------------------------------

    def _first_pair_involving(
        self, fid: int | None = None, oid: int | None = None
    ) -> int:
        cut = len(self._pairs)
        if fid is not None and fid in self._f_pos:
            cut = min(cut, self._f_pos[fid][0])
        if oid is not None and oid in self._o_pos:
            cut = min(cut, self._o_pos[oid][0])
        return cut

    def _first_affected_by_object(self, oid: int) -> int:
        """Greedy steps strictly better than the new object's best
        conceivable pair are unaffected by its arrival."""
        if self._vec is not None:
            best = self._vec.best_key_for_object(oid, self._weights)
        else:
            p = self._points[oid]
            best = None
            for fid, w in self._weights.items():
                key = pair_key(score(w, p), w, fid, p, oid)
                if best is None or key < best:
                    best = key
        if best is None:
            return len(self._pairs)
        return bisect_right(self._keys, best)

    def _first_affected_by_function(self, fid: int) -> int:
        if self._vec is not None:
            best = self._vec.best_key_for_function(fid, self._points)
        else:
            w = self._weights[fid]
            best = None
            for oid, p in self._points.items():
                key = pair_key(score(w, p), w, fid, p, oid)
                if best is None or key < best:
                    best = key
        if best is None:
            return len(self._pairs)
        return bisect_right(self._keys, best)

    def _rematch_from(self, cut: int) -> None:
        """Keep the prefix [0, cut); greedily re-match everything not
        consumed by it."""
        self.suffix_rematch_count = len(self._pairs) - cut
        self.pairs_rematched += self.suffix_rematch_count
        if cut == 0 and self._pairs:
            self.full_rematches += 1

        # Retire the old suffix from the position indexes: reverse
        # iteration pops exactly each handle list's tail (positions are
        # appended ascending and appear once per pair).
        for _, fid, oid, _, _ in reversed(self._pairs[cut:]):
            flist = self._f_pos[fid]
            flist.pop()
            if not flist:
                del self._f_pos[fid]
            olist = self._o_pos[oid]
            olist.pop()
            if not olist:
                del self._o_pos[oid]
        prefix = self._pairs[:cut]

        f_left = dict(self._f_caps)
        o_left = dict(self._o_caps)
        for _, fid, oid, _, units in prefix:
            f_left[fid] -= units
            o_left[oid] -= units

        free_f = [(fid, c) for fid, c in f_left.items() if c > 0]
        free_o = [(oid, c) for oid, c in o_left.items() if c > 0]
        suffix: list[tuple[PairKey, int, int, float, int]] = []
        if free_f and free_o:
            if self._vec is not None:
                suffix = self._vec.rematch(
                    free_f, free_o, self._weights, self._points
                )
            else:
                suffix = self._greedy_suffix(free_f, free_o, f_left, o_left)

        self._pairs = prefix + suffix
        del self._keys[cut:]
        for i, (key, fid, oid, _, _) in enumerate(suffix, start=cut):
            self._keys.append(key)
            self._f_pos.setdefault(fid, []).append(i)
            self._o_pos.setdefault(oid, []).append(i)

    def _greedy_suffix(
        self,
        free_f: list[tuple[int, int]],
        free_o: list[tuple[int, int]],
        f_left: dict[int, int],
        o_left: dict[int, int],
    ) -> list[tuple[PairKey, int, int, float, int]]:
        """The interpreted reference rematch: exact keys, sorted."""
        suffix: list[tuple[PairKey, int, int, float, int]] = []
        candidates = sorted(
            pair_key(
                score(self._weights[fid], self._points[oid]),
                self._weights[fid], fid, self._points[oid], oid,
            )
            for fid, _ in free_f
            for oid, _ in free_o
        )
        for key in candidates:
            neg_s, _nw, fid, _np, oid = key
            if f_left[fid] <= 0 or o_left[oid] <= 0:
                continue
            units = min(f_left[fid], o_left[oid])
            f_left[fid] -= units
            o_left[oid] -= units
            suffix.append((key, fid, oid, -neg_s, units))
        return suffix
