"""pytest-benchmark glue used by the ``benchmarks/`` suites.

Every benchmark cell times exactly one solver run (pedantic, one
round) on a cold-started index, and attaches the paper's other two
metrics (page reads, peak memory) as ``extra_info`` so the
pytest-benchmark table carries all three.
"""

from __future__ import annotations

from repro.bench.config import defaults
from repro.bench.harness import get_index
from repro.core import solve


def bench_cell(
    benchmark,
    method: str,
    functions,
    objects,
    buffer_fraction: float | None = None,
    page_size: int = 4096,
    memory_index: bool = False,
    **solve_kwargs,
):
    """Run one measured solver call and annotate the three metrics."""
    if buffer_fraction is None:
        buffer_fraction = defaults().buffer_fraction
    index = get_index(objects, page_size=page_size, memory=memory_index)

    def setup():
        index.reset_for_run(buffer_fraction=buffer_fraction)
        return (), {}

    def target():
        return solve(functions, index, method=method, **solve_kwargs)

    result = benchmark.pedantic(target, setup=setup, rounds=1, iterations=1)
    matching, stats = result
    benchmark.extra_info["io"] = stats.io_accesses
    benchmark.extra_info["mem_kib"] = round(stats.peak_memory_bytes / 1024)
    benchmark.extra_info["loops"] = stats.loops
    benchmark.extra_info["pairs"] = matching.num_units
    return result
