"""BestPairSearch strategy implementations.

Three ways of answering "which alive function is canonically best for
each skyline object", extracted from the solvers that used to inline
them:

- :class:`ReverseTASearch` — per-object reverse top-1 TA over sorted
  coefficient lists (Section 5.1), with the paper's resumable /
  biased / Ω-bounded toggles, optionally over simulated disk pages
  (Section 7.6);
- :class:`BatchTASearch` — SB-alt's one batch TA sweep per skyline
  version over disk-resident lists (Figure 17);
- :class:`FskySearch` — the two-skyline prioritized variant's
  exhaustive vectorized scan of the *function* skyline (Section 6.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.vectorized import MatrixView
from repro.engine.engine import EngineContext
from repro.engine.instrumentation import fold_auxiliary_io
from repro.engine.protocols import SkylineState
from repro.ordering import FunctionKey, function_key
from repro.scoring import SCORE_EPS, score
from repro.skyline.inmemory import InMemorySkylineManager
from repro.storage.stats import (
    BYTES_PER_PLIST_ENTRY,
    BYTES_PER_SCORE_ENTRY,
)
from repro.topk.knapsack import tight_threshold
from repro.topk.reverse import ReverseBestSearch, SearchCounters
from repro.topk.sorted_lists import CoefficientLists, PagedCoefficientLists


class ReverseTASearch:
    """Per-object resumable reverse top-1 searches (SB's fbest step)."""

    def __init__(
        self,
        ctx: EngineContext,
        *,
        resume: bool,
        biased: bool,
        omega: int | None,
        paged_page_size: int | None = None,
    ):
        if paged_page_size is None:
            self.lists: CoefficientLists = CoefficientLists(ctx.functions)
        else:
            self.lists = PagedCoefficientLists(
                ctx.functions, page_size=paged_page_size
            )
        self.paged = paged_page_size is not None
        self.objects = ctx.objects
        self.mem = ctx.mem
        self.resume = resume
        self.biased = biased
        self.omega = omega
        self.counters = SearchCounters()
        self._searches: dict[int, ReverseBestSearch] = {}
        self._ta_state_bytes = 0

    def best_functions(self, skyline: SkylineState):
        fbest: dict[int, tuple[int, float]] = {}
        for oid in sorted(skyline):
            result = self._best_function(oid)
            if result is None:
                return None  # no alive function left anywhere
            fbest[oid] = result
        return fbest

    def _best_function(self, oid: int) -> tuple[int, float] | None:
        """Best alive function for a skyline object (Section 5.1)."""
        if not self.resume:
            fresh = ReverseBestSearch(
                self.lists, self.objects.points[oid], omega=None,
                biased=self.biased, counters=self.counters,
            )
            result = fresh.best()
            # Transient state: only its momentary size counts.
            self.mem.set_gauge("ta_states", fresh.memory_bytes())
            return result
        search = self._searches.get(oid)
        if search is None:
            search = ReverseBestSearch(
                self.lists, self.objects.points[oid], omega=self.omega,
                biased=self.biased, counters=self.counters,
            )
            self._searches[oid] = search
        self._ta_state_bytes -= search.memory_bytes()
        result = search.best()
        self._ta_state_bytes += search.memory_bytes()
        self.mem.set_gauge("ta_states", self._ta_state_bytes)
        return result

    def on_function_dead(self, fid: int) -> None:
        self.lists.kill(fid)

    def on_object_dead(self, oid: int) -> None:
        dead = self._searches.pop(oid, None)
        if dead is not None:
            self._ta_state_bytes -= dead.memory_bytes()
            self.mem.set_gauge("ta_states", self._ta_state_bytes)

    def on_round_end(self, dead_fids: list[int]) -> None:
        pass

    def finalize(self, stats, skyline) -> None:
        stats.counters["ta_sorted_accesses"] = self.counters.sorted_accesses
        stats.counters["ta_random_accesses"] = self.counters.random_accesses
        stats.counters["ta_restarts"] = self.counters.restarts
        stats.counters["skyline_final_size"] = len(skyline)
        if self.paged:
            fold_auxiliary_io(stats, self.lists.stats, "function_list_reads")


class BatchTASearch:
    """SB-alt's batch TA: one sweep per skyline version (Section 7.6).

    Lists are read round-robin one block at a time, each newly seen
    alive function is random-accessed once and scored against *all*
    not-yet-finished skyline objects, and objects retire individually
    as their incumbents beat their thresholds — so every function
    coefficient is accessed at most once per skyline version.
    """

    def __init__(self, ctx: EngineContext, *, page_size: int = 4096):
        self.lists = PagedCoefficientLists(ctx.functions, page_size=page_size)
        self.objects = ctx.objects
        self.mem = ctx.mem
        self.batch_scans = 0

    def best_functions(self, skyline: SkylineState):
        fbest = self._batch_best_functions(sorted(skyline))
        self.batch_scans += 1
        return fbest or None

    def _batch_best_functions(
        self, sky_oids: list[int]
    ) -> dict[int, tuple[int, float]]:
        """One batch TA pass: best alive function for every skyline
        object, round-robin block reads over the D lists."""
        lists = self.lists
        mem = self.mem
        dims = lists.dims
        points = {oid: self.objects.points[oid] for oid in sky_oids}
        positions = [0] * dims
        bounds = [lists.initial_bound(d) for d in range(dims)]
        seen: set[int] = set()
        incumbents: dict[int, tuple[FunctionKey, int]] = {}
        active = list(sky_oids)
        budget = lists.max_alive_gamma()

        # Vectorized view of the active objects; rebuilt when some retire.
        active_matrix = np.asarray([points[oid] for oid in active])
        inc_scores = np.full(len(active), -np.inf)

        def exhausted() -> bool:
            return all(positions[d] >= lists.length(d) for d in range(dims))

        d = 0
        while active and not exhausted():
            # Read the next block of the next non-exhausted list.
            for _ in range(dims):
                if positions[d] < lists.length(d):
                    break
                d = (d + 1) % dims
            src = d
            end = min(positions[d] + lists.entries_per_page, lists.length(d))
            new_fids: list[int] = []
            while positions[d] < end:
                coef, fid = lists.entry(d, positions[d])  # charged sequentially
                positions[d] += 1
                bounds[d] = coef
                if fid not in seen:
                    seen.add(fid)
                    if lists.is_alive(fid):
                        new_fids.append(fid)
            d = (d + 1) % dims

            for fid in new_fids:
                # Collect the *remaining* coefficients by random access
                # on the other lists (charged); the values equal the
                # in-memory effective weights.
                for j in range(dims):
                    if j != src:
                        lists.random_access(fid, j)
                w = lists.effective_weights(fid)
                # One matmul scores the function against every active
                # object; only objects within the rounding band of their
                # incumbent need exact canonical treatment.
                approx = active_matrix @ lists.weights_np[fid]
                for i in np.nonzero(approx >= inc_scores - SCORE_EPS)[0]:
                    oid = active[i]
                    s = score(w, points[oid])
                    key = function_key(s, w, fid)
                    cur = incumbents.get(oid)
                    if cur is None or key < cur[0]:
                        incumbents[oid] = (key, fid)
                        inc_scores[i] = s

            # Retire objects whose incumbent beats the (updated) threshold.
            keep = []
            for i, oid in enumerate(active):
                cur = incumbents.get(oid)
                if cur is not None:
                    t = tight_threshold(bounds, points[oid], budget=budget)
                    if -cur[0][0] > t + SCORE_EPS:
                        continue
                keep.append(i)
            if len(keep) != len(active):
                active = [active[i] for i in keep]
                active_matrix = active_matrix[keep]
                inc_scores = inc_scores[keep]
            mem.set_gauge(
                "batch_incumbents", len(incumbents) * BYTES_PER_SCORE_ENTRY
            )

        return {
            oid: (fid, -key[0])
            for oid, (key, fid) in incumbents.items()
        }

    def on_function_dead(self, fid: int) -> None:
        self.lists.kill(fid)

    def on_object_dead(self, oid: int) -> None:
        pass

    def on_round_end(self, dead_fids: list[int]) -> None:
        pass

    def finalize(self, stats, skyline) -> None:
        # Function-list traffic is the dominant I/O in this setting.
        fold_auxiliary_io(stats, self.lists.stats, "function_list_reads")
        stats.counters["batch_scans"] = self.batch_scans


class FskySearch:
    """The two-skyline variant's exhaustive Fsky scan (Section 6.2).

    Maintains a skyline over the effective coefficient vectors; stable
    pairs can only join ``Fsky`` with ``Osky``, so the best function of
    each skyline object is found by one vectorized scan of Fsky
    instead of TA (Fsky is small and sees frequent updates that would
    invalidate TA states).
    """

    def __init__(self, ctx: EngineContext):
        self.objects = ctx.objects
        self.mem = ctx.mem
        self.manager = InMemorySkylineManager([
            (fid, ctx.functions.effective_weights(fid))
            for fid in range(len(ctx.functions))
        ])
        self._fsky_view: MatrixView | None = None

    def best_functions(self, skyline: SkylineState):
        fsky = self.manager.skyline
        self.mem.set_gauge(
            "fsky", (len(fsky) + self.manager.memory_entries())
            * BYTES_PER_PLIST_ENTRY,
        )
        if not fsky:
            return None
        if self._fsky_view is None:
            self._fsky_view = MatrixView.from_dict(fsky)
        else:
            self._fsky_view.sync(fsky)
        fsky_view = self._fsky_view
        return {
            oid: fsky_view.best_for(self.objects.points[oid])
            for oid in sorted(skyline)
        }

    def on_function_dead(self, fid: int) -> None:
        pass  # batched: Fsky is repaired once per round in on_round_end

    def on_object_dead(self, oid: int) -> None:
        pass

    def on_round_end(self, dead_fids: list[int]) -> None:
        if dead_fids:
            self.manager.remove(dead_fids)

    def finalize(self, stats, skyline) -> None:
        stats.counters["fsky_final_size"] = len(self.manager.skyline)
