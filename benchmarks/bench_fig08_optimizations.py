"""Figure 8 — effectiveness of the Section 5 optimizations.

Anti-correlated data, |F| = 1000 (scaled), D in {3, 4, 5}:

- ``sb-deltasky``  — Algorithm 1 with DeltaSky maintenance;
- ``sb-update``    — Algorithm 1 with UpdateSkyline (Section 5.2);
- ``sb``           — fully optimized (5.1 best-pair search + 5.3
  multi-pair loops on top of UpdateSkyline).

Expected shape: SB-UpdateSkyline an order of magnitude less I/O than
SB-DeltaSky; SB and SB-UpdateSkyline identical I/O; SB clearly
fastest in CPU.
"""

import pytest

from repro.bench.config import DIMS_SWEEP_FIG8, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()
# The paper fixes |F|=1000 for this figure (DeltaSky is slow).
NF = max(2, 1000 // D.divisor)

VARIANTS = ["sb", "sb-update", "sb-deltasky"]


@pytest.mark.benchmark(group="fig08-optimizations")
@pytest.mark.parametrize("dims", DIMS_SWEEP_FIG8)
@pytest.mark.parametrize("variant", VARIANTS)
def test_fig08(benchmark, variant, dims):
    functions, objects = make_instance(
        NF, D.no, dims, D.distribution, seed=8
    )
    matching, stats = bench_cell(benchmark, variant, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
