"""Planner quality benchmark: pick accuracy, regret, overhead.

Sweeps a grid of generated instance *shapes* (cardinality ratio,
dimensionality, distribution, capacity skew, priorities), measures
every plannable config on every cell, and scores the planner's
``method="auto"`` pick against the exhaustive per-cell best:

- **regret** — ``(t_pick - t_best) / t_best`` per cell (0 when the
  planner picks the measured winner);
- **pick accuracy** — fraction of cells where it does;
- **planning overhead** — planner wall time as a fraction of the
  picked config's solve time (must stay well under 1%).

Results append to ``BENCH_planner.json`` next to this script under
``--label``.  Two extra modes:

- ``--calibrate`` fits the per-config power-law coefficients from the
  measured grid and prints a ready-to-paste
  ``repro/planner/calibration.py`` table (it does not edit the file);
- ``--smoke`` shrinks the grid to a two-cell sanity sweep for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py --label pr5_planner
    PYTHONPATH=src python benchmarks/bench_planner.py --calibrate
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

from repro.bench.config import _SCALES, current_scale
from repro.bench.harness import clear_caches, make_instance, run_cell
from repro.planner import REGISTRY, fit_power_law, plan_instance, profile_instance

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

#: Instance shapes at ``small`` scale (divisor 50); other scales
#: multiply the cardinalities.  The axes mirror the paper's sweeps:
#: |F|/|O| ratio (Figures 10/11), dimensionality (Figure 9),
#: distribution (Figure 12's clustering analogue), capacities and
#: priorities (Figures 14/15).
BASE_GRID: tuple[dict, ...] = (
    dict(nf=24, no=600, dims=3, distribution="anti-correlated"),
    dict(nf=50, no=1000, dims=4, distribution="anti-correlated"),
    dict(nf=100, no=2000, dims=4, distribution="anti-correlated"),
    dict(nf=200, no=800, dims=4, distribution="anti-correlated"),
    dict(nf=100, no=400, dims=5, distribution="anti-correlated"),
    dict(nf=40, no=1600, dims=3, distribution="correlated"),
    dict(nf=100, no=2000, dims=4, distribution="correlated"),
    dict(nf=100, no=2000, dims=4, distribution="independent"),
    dict(nf=50, no=500, dims=2, distribution="independent"),
    dict(nf=60, no=1200, dims=4, distribution="anti-correlated", n_clusters=3),
    dict(
        nf=80, no=1000, dims=4, distribution="anti-correlated",
        function_capacity=4, object_capacity=2,
    ),
    dict(
        nf=60, no=900, dims=3, distribution="independent",
        max_priority=4,
    ),
)

SMOKE_GRID: tuple[dict, ...] = (
    dict(nf=10, no=120, dims=3, distribution="anti-correlated"),
    dict(nf=20, no=80, dims=2, distribution="independent"),
)


def scaled_grid(smoke: bool) -> list[dict]:
    if smoke:
        return [dict(shape) for shape in SMOKE_GRID]
    factor = _SCALES["small"] // _SCALES[current_scale()]
    out = []
    for shape in BASE_GRID:
        scaled = dict(shape)
        scaled["nf"] *= factor
        scaled["no"] *= factor
        out.append(scaled)
    return out


def measure_grid(grid: list[dict], repeats: int) -> list[dict]:
    """Measure every plannable config on every grid cell."""
    methods = [spec.name for spec in REGISTRY.plannable()]
    rows = []
    # One throwaway plan call warms the planner's one-time costs
    # (model memoization, first-touch numpy kernels) so per-cell
    # overhead reflects the steady state a live server runs in.
    warm_functions, warm_objects = make_instance(seed=17, **grid[0])
    plan_instance(warm_functions, warm_objects)
    for shape in grid:
        functions, objects = make_instance(seed=17, **shape)
        profile = profile_instance(functions, objects)
        timings: dict[str, float] = {}
        for method in methods:
            cells = [
                run_cell(method, functions, objects, params=shape)
                for _ in range(repeats)
            ]
            timings[method] = min(c.cpu_seconds for c in cells)
        # Steady-state planning cost: nothing is memoized across these
        # calls (each one runs a full profile + scoring pass); the min
        # of three mirrors how a warm server plans.
        planning_seconds = float("inf")
        for _ in range(3):
            plan_start = time.perf_counter()
            plan = plan_instance(functions, objects)
            planning_seconds = min(
                planning_seconds, time.perf_counter() - plan_start
            )
        best = min(timings, key=lambda m: (timings[m], m))
        picked_seconds = timings[plan.method]
        rows.append(
            {
                "shape": shape,
                "profile": profile.to_dict(),
                "timings": timings,
                "best_method": best,
                "picked_method": plan.method,
                "picked_correctly": plan.method == best,
                "regret": (picked_seconds - timings[best]) / timings[best],
                "planning_seconds": planning_seconds,
                "planning_overhead_fraction": planning_seconds / picked_seconds,
                "estimated_seconds": plan.estimated_seconds,
            }
        )
        print(
            f"  {shape.get('distribution', '?'):<16} |F|={shape['nf']:<5} "
            f"|O|={shape['no']:<6} dims={shape['dims']} -> "
            f"pick {plan.method:<16} best {best:<16} "
            f"regret {rows[-1]['regret']:6.1%} "
            f"overhead {rows[-1]['planning_overhead_fraction']:.3%}"
        )
    return rows


def summarize(rows: list[dict]) -> dict:
    regrets = [r["regret"] for r in rows]
    overheads = [r["planning_overhead_fraction"] for r in rows]
    return {
        "cells": len(rows),
        "pick_accuracy": sum(r["picked_correctly"] for r in rows) / len(rows),
        "median_regret": statistics.median(regrets),
        "max_regret": max(regrets),
        "median_planning_overhead_fraction": statistics.median(overheads),
        "max_planning_overhead_fraction": max(overheads),
    }


def print_calibration(rows: list[dict]) -> None:
    """Fit per-method coefficients and print a calibration table."""
    from repro.planner import InstanceProfile

    stamp = time.strftime("%Y-%m-%d")
    print("\n# Paste into src/repro/planner/calibration.py:")
    print(f'CALIBRATION_VERSION = "{stamp}"')
    print("CALIBRATION: dict[str, tuple[float, ...]] = {")
    for spec in REGISTRY.plannable():
        samples = [
            (InstanceProfile.from_dict(r["profile"]), r["timings"][spec.name])
            for r in rows
        ]
        coeffs = fit_power_law(samples)
        rendered = ", ".join(f"{c:.6f}" for c in coeffs)
        print(f'    "{spec.name}": ({rendered}),')
    print("}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default=None, help="snapshot name")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--smoke", action="store_true",
        help="two-cell sanity grid (CI)",
    )
    parser.add_argument(
        "--calibrate", action="store_true",
        help="fit and print the cost-model calibration table",
    )
    args = parser.parse_args()
    if args.label is None and not args.calibrate:
        parser.error("--label is required unless --calibrate is given")

    clear_caches()
    grid = scaled_grid(args.smoke)
    print(f"measuring {len(grid)} cells x "
          f"{len(REGISTRY.plannable())} plannable configs ...")
    rows = measure_grid(grid, args.repeats)

    if args.calibrate:
        print_calibration(rows)
        return

    summary = summarize(rows)
    snapshot = {
        "scale": "smoke" if args.smoke else current_scale(),
        "repeats": args.repeats,
        "python": platform.python_version(),
        "summary": summary,
        "cells": rows,
    }
    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    results[args.label] = snapshot
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        f"{args.label}: accuracy {summary['pick_accuracy']:.0%}, "
        f"median regret {summary['median_regret']:.1%}, "
        f"median overhead {summary['median_planning_overhead_fraction']:.4%} "
        f"-> {RESULT_PATH}"
    )


if __name__ == "__main__":
    main()
