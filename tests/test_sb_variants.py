"""SB ablation variants (Figure 8) and their cost relationships."""

import pytest

from repro import build_object_index, solve
from repro.core.sb import sb_assign
from repro.data.generators import make_functions, make_objects

from .conftest import random_instance


def test_unknown_variant_rejected():
    fs, os_ = random_instance(3, 5, 2, seed=0)
    idx = build_object_index(os_, page_size=512)
    with pytest.raises(ValueError):
        sb_assign(fs, idx, variant="sb-bogus")


def test_unknown_method_rejected():
    fs, os_ = random_instance(3, 5, 2, seed=0)
    idx = build_object_index(os_, page_size=512)
    with pytest.raises(ValueError):
        solve(fs, idx, method="nope")


def test_unknown_maintenance_rejected():
    fs, os_ = random_instance(3, 5, 2, seed=0)
    idx = build_object_index(os_, page_size=512)
    with pytest.raises(ValueError):
        sb_assign(fs, idx, maintenance="bogus")


def test_empty_function_set():
    fs, os_ = random_instance(0, 5, 2, seed=1)
    idx = build_object_index(os_, page_size=512)
    matching, _ = sb_assign(fs, idx)
    assert len(matching) == 0


class TestCostRelationships:
    """The measurable claims behind Figure 8, asserted at test scale."""

    @pytest.fixture(scope="class")
    def medium(self):
        objects = make_objects(3000, 3, "anti-correlated", seed=11)
        functions = make_functions(150, 3, seed=12)
        return functions, objects

    def _run(self, functions, objects, variant):
        idx = build_object_index(objects, buffer_fraction=0.0)
        return sb_assign(functions, idx, variant=variant)

    def test_sb_and_sb_update_share_io(self, medium):
        """The 5.1/5.3 optimizations are CPU-only: SB and
        SB-UpdateSkyline must read identical page counts
        (paper: "SB and SB-UpdateSkyline have the same I/O cost")."""
        functions, objects = medium
        io_sb = self._run(functions, objects, "sb").stats.io_accesses
        io_up = self._run(functions, objects, "sb-update").stats.io_accesses
        assert io_sb == io_up

    def test_deltasky_costs_more_io(self, medium):
        """UpdateSkyline saves an order of magnitude of I/O vs
        DeltaSky (Figure 8(a))."""
        functions, objects = medium
        io_up = self._run(functions, objects, "sb-update").stats.io_accesses
        io_ds = self._run(functions, objects, "sb-deltasky").stats.io_accesses
        assert io_ds > 2 * io_up

    def test_multi_pair_reduces_loops(self, medium):
        """Section 5.3: emitting multiple stable pairs per loop cuts
        the number of skyline-maintenance rounds."""
        functions, objects = medium
        loops_multi = self._run(functions, objects, "sb").stats.loops
        loops_single = self._run(functions, objects, "sb-update").stats.loops
        assert loops_multi < loops_single

    def test_sb_ta_work_is_lower(self, medium):
        """Resume + bias must reduce total sorted-list accesses vs
        fresh round-robin searches (the 5.1 CPU claim)."""
        functions, objects = medium
        opt = self._run(functions, objects, "sb").stats.counters
        base = self._run(functions, objects, "sb-update").stats.counters
        assert opt["ta_sorted_accesses"] < base["ta_sorted_accesses"]

    def test_read_once_no_page_reread(self, medium):
        """Theorem 1 at the solver level: with a zero buffer, SB's
        logical reads equal physical reads equal <= pages in the tree."""
        functions, objects = medium
        idx = build_object_index(objects, buffer_fraction=0.0)
        result = sb_assign(functions, idx)
        io = result.stats.io
        assert io.physical_reads == io.logical_reads
        assert io.physical_reads <= idx.tree.store.num_pages

    def test_omega_fraction_none_works(self, medium):
        functions, objects = medium
        idx = build_object_index(objects, buffer_fraction=0.0)
        a = sb_assign(functions, idx, omega_fraction=None)
        idx2 = build_object_index(objects, buffer_fraction=0.0)
        b = sb_assign(functions, idx2, omega_fraction=0.01)
        assert a.matching.as_dict() == b.matching.as_dict()
        # Smaller omega trades restarts for memory.
        assert b.stats.peak_memory_bytes <= a.stats.peak_memory_bytes
