"""Serving-layer throughput: queued solves over a shared catalogue.

Boots an embedded repro-server, replays a Zipf-skewed
:func:`repro.data.generators.request_stream` workload (default: 200
async solves by 16 concurrent clients over one shared catalogue, so
the object R-tree is built once and every request reuses it), and
records requests/sec plus p50/p99 end-to-end latency into
``BENCH_server.json`` next to ``BENCH_engine.json``.

``--executor both`` replays the identical workload once per backend
and records a thread-vs-process comparison row: the thread backend
serializes same-catalogue fresh solves on the shared index's run lock
(and the GIL), the process backend runs them in parallel on per-worker
index replicas, so on an N-core host the process column should show
roughly min(N, workers)× the fresh-solve throughput.  ``cpu_count``
is recorded with every snapshot so single-core numbers read as what
they are.

``--backends N`` (N >= 1) benchmarks the *cluster* path instead: N
embedded backends behind a ``repro-gateway``, replaying the same
workload through the gateway.  Sticky consistent-hash routing sends
each catalogue to one backend, so the cluster workload spreads over
``--catalogues`` distinct catalogues (default 2×N) — a single-catalogue
stream would hash entirely to one node and measure nothing but
forwarding overhead.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py --label pr3_server
    PYTHONPATH=src python benchmarks/bench_server_throughput.py \
        --label pr4_thread_vs_process --executor both
    PYTHONPATH=src python benchmarks/bench_server_throughput.py \
        --label pr7_cluster --backends 2
    PYTHONPATH=src python benchmarks/bench_server_throughput.py \
        --label pr8_obs_overhead --obs both
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import threading
import time
from pathlib import Path

from repro.cluster import GatewayConfig, serve_gateway_in_thread
from repro.data.generators import make_objects, request_stream
from repro.server import Client, ServerConfig, serve_in_thread

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def run_benchmark(
    requests: int,
    clients: int,
    n_objects: int,
    dims: int,
    max_cohort: int,
    seed: int,
    executor: str = "thread",
    workers: int | None = None,
    observability: bool = True,
) -> dict:
    catalogue = make_objects(n_objects, dims, "anti-correlated", seed=seed)
    workload = list(
        request_stream(
            requests,
            [catalogue],
            cohort_skew=1.5,
            max_cohort=max_cohort,
            seed=seed,
        )
    )
    handle = serve_in_thread(
        ServerConfig(
            port=0,
            queue_limit=max(64, requests),
            solution_cache_size=0,  # measure solves, not cache replays
            executor=executor,
            workers=workers,
            observability=observability,
        )
    )
    latencies: list[float] = []
    latency_guard = threading.Lock()

    def worker(worker_id: int) -> None:
        with Client(handle.base_url) as client:
            for request in workload[worker_id::clients]:
                from repro.api import Problem

                problem = Problem.from_sets(
                    request.catalogue, request.functions, method="sb"
                )
                started = time.perf_counter()
                job_id = client.submit(problem, timeout=120.0)
                client.result(job_id, timeout=300.0)
                with latency_guard:
                    latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    with Client(handle.base_url) as client:
        metrics = client.metrics()
    handle.close()

    assert len(latencies) == requests
    return {
        "requests": requests,
        "clients": clients,
        "n_objects": n_objects,
        "dims": dims,
        "max_cohort": max_cohort,
        "executor": executor,
        "workers": workers,
        "observability": observability,
        "cpu_count": os.cpu_count(),
        "wall_seconds": wall,
        "requests_per_second": requests / wall,
        "latency_p50_seconds": percentile(latencies, 0.50),
        "latency_p99_seconds": percentile(latencies, 0.99),
        "latency_mean_seconds": statistics.fmean(latencies),
        "index_cache": metrics["index_cache"],
        "queue_peak_depth": metrics["queue"]["peak_depth"],
        "jobs_failed": metrics["queue"]["jobs_failed"],
    }


def run_cluster_benchmark(
    requests: int,
    clients: int,
    n_objects: int,
    dims: int,
    max_cohort: int,
    seed: int,
    backends: int,
    catalogues: int,
    executor: str = "thread",
    workers: int | None = None,
) -> dict:
    catalogue_sets = [
        make_objects(n_objects, dims, "anti-correlated", seed=seed + i)
        for i in range(catalogues)
    ]
    workload = list(
        request_stream(
            requests,
            catalogue_sets,
            cohort_skew=1.5,
            max_cohort=max_cohort,
            seed=seed,
        )
    )
    handles = [
        serve_in_thread(
            ServerConfig(
                port=0,
                queue_limit=max(64, requests),
                solution_cache_size=0,  # measure solves, not cache replays
                executor=executor,
                workers=workers,
            )
        )
        for _ in range(backends)
    ]
    gateway = serve_gateway_in_thread(
        GatewayConfig(
            backends=tuple(f"127.0.0.1:{h.port}" for h in handles),
            port=0,
        )
    )
    latencies: list[float] = []
    latency_guard = threading.Lock()

    def worker(worker_id: int) -> None:
        with Client(gateway.base_url) as client:
            for request in workload[worker_id::clients]:
                from repro.api import Problem

                problem = Problem.from_sets(
                    request.catalogue, request.functions, method="sb"
                )
                started = time.perf_counter()
                job_id = client.submit(problem, timeout=120.0)
                client.result(job_id, timeout=300.0)
                with latency_guard:
                    latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    with Client(gateway.base_url) as client:
        metrics = client.metrics()
    gateway.close()
    for handle in handles:
        handle.close()

    assert len(latencies) == requests
    return {
        "mode": "cluster",
        "requests": requests,
        "clients": clients,
        "n_objects": n_objects,
        "dims": dims,
        "max_cohort": max_cohort,
        "backends": backends,
        "catalogues": catalogues,
        "executor": executor,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "wall_seconds": wall,
        "requests_per_second": requests / wall,
        "latency_p50_seconds": percentile(latencies, 0.50),
        "latency_p99_seconds": percentile(latencies, 0.99),
        "latency_mean_seconds": statistics.fmean(latencies),
        "forwards_total": metrics["gateway"]["forwards_total"],
        "reshards_total": metrics["gateway"]["reshards_total"],
        "forwards_by_backend": {
            address: snapshot["forwards"]
            for address, snapshot in metrics["backends"].items()
        },
        "fleet_solves": metrics["fleet"]["solves"],
        "fleet_index_cache": metrics["fleet"]["index_cache"],
    }


def _describe(snapshot: dict) -> str:
    return (
        f"{snapshot['requests_per_second']:.1f} req/s, "
        f"p50 {snapshot['latency_p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {snapshot['latency_p99_seconds'] * 1e3:.1f} ms "
        f"({snapshot['index_cache']['misses']} index build(s))"
    )


def _describe_cluster(snapshot: dict) -> str:
    spread = ", ".join(
        str(count) for count in snapshot["forwards_by_backend"].values()
    )
    return (
        f"{snapshot['requests_per_second']:.1f} req/s via gateway over "
        f"{snapshot['backends']} backends, "
        f"p50 {snapshot['latency_p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {snapshot['latency_p99_seconds'] * 1e3:.1f} ms "
        f"(forwards per backend: {spread})"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="snapshot name")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--objects", type=int, default=512)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--max-cohort", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--executor", choices=["thread", "process", "both"], default="thread",
        help="solve backend; 'both' records a thread-vs-process comparison",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="solver pool size (threads or worker processes)",
    )
    parser.add_argument(
        "--backends", type=int, default=0,
        help=(
            "benchmark the cluster path: N embedded repro-servers "
            "behind a repro-gateway (0 = single-server mode)"
        ),
    )
    parser.add_argument(
        "--catalogues", type=int, default=None,
        help=(
            "distinct catalogues in the cluster workload "
            "(default 2x backends; sticky routing shards by catalogue)"
        ),
    )
    parser.add_argument(
        "--obs", choices=["on", "off", "both"], default="on",
        help=(
            "request tracing during the benchmark; 'both' replays the "
            "workload twice and records the tracing overhead"
        ),
    )
    args = parser.parse_args()

    def bench(executor: str, observability: bool = True) -> dict:
        snapshot = run_benchmark(
            args.requests, args.clients, args.objects, args.dims,
            args.max_cohort, args.seed, executor=executor,
            workers=args.workers, observability=observability,
        )
        snapshot["python"] = platform.python_version()
        return snapshot

    if args.backends >= 1:
        if args.executor == "both":
            parser.error("--backends combines with one executor, not 'both'")
        if args.obs == "both":
            parser.error("--obs both combines with single-server mode only")
        snapshot = run_cluster_benchmark(
            args.requests, args.clients, args.objects, args.dims,
            args.max_cohort, args.seed,
            backends=args.backends,
            catalogues=args.catalogues or 2 * args.backends,
            executor=args.executor,
            workers=args.workers,
        )
        snapshot["python"] = platform.python_version()
        report = _describe_cluster(snapshot)
    elif args.obs == "both":
        if args.executor == "both":
            parser.error("--obs both combines with one executor, not 'both'")
        # Discarded warmup pass: the first embedded-server run of a
        # process is measurably slower (allocator/import warmup), so
        # measuring "on" cold would overstate the tracing overhead.
        run_benchmark(
            max(20, args.requests // 4), args.clients, args.objects,
            args.dims, args.max_cohort, args.seed, executor=args.executor,
            workers=args.workers,
        )
        # Six mirrored pairs, overhead from trimmed means: adjacent
        # identical runs on a busy shared host differ by ±15-20% —
        # far more than the effect being measured — and throughput
        # drifts over the process lifetime, so a fixed on-then-off
        # order would systematically flatter whichever arm runs
        # second.  The mirrored order gives both arms the same
        # position sum (drift cancels); dropping each arm's fastest
        # and slowest run before averaging discards the scheduler
        # outliers symmetrically.  All samples land in the snapshot
        # so the spread stays inspectable next to the headline.
        on_runs, off_runs = [], []
        for flip in (False, True, True, False, True, False):
            first, second = (off_runs, on_runs) if flip else (on_runs, off_runs)
            first.append(bench(args.executor, observability=not flip))
            second.append(bench(args.executor, observability=flip))

        def trimmed_mean(runs: list[dict]) -> float:
            rates = sorted(r["requests_per_second"] for r in runs)
            kept = rates[1:-1] if len(rates) > 2 else rates
            return sum(kept) / len(kept)

        def median_run(runs: list[dict]) -> dict:
            ordered = sorted(runs, key=lambda s: s["requests_per_second"])
            return ordered[len(ordered) // 2]

        on_rate = trimmed_mean(on_runs)
        off_rate = trimmed_mean(off_runs)
        # The representative snapshot (for p50/p99 context) is the
        # median run; the headline rate is the trimmed mean.
        on_snapshot = dict(
            median_run(on_runs),
            trimmed_mean_requests_per_second=on_rate,
            samples_requests_per_second=[
                r["requests_per_second"] for r in on_runs
            ],
        )
        off_snapshot = dict(
            median_run(off_runs),
            trimmed_mean_requests_per_second=off_rate,
            samples_requests_per_second=[
                r["requests_per_second"] for r in off_runs
            ],
        )
        snapshot = {
            "mode": "obs_overhead",
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "on": on_snapshot,
            "off": off_snapshot,
            # Positive = tracing costs throughput; the obs tentpole's
            # acceptance bar is < 2%.
            "overhead_pct": (off_rate - on_rate) / off_rate * 100.0,
        }
        report = (
            f"obs on {on_rate:.1f} req/s | "
            f"obs off {off_rate:.1f} req/s | "
            f"overhead {snapshot['overhead_pct']:.2f}% "
            f"(trimmed mean of 6 mirrored pairs)"
        )
    elif args.executor == "both":
        thread_snapshot = bench("thread")
        process_snapshot = bench("process")
        snapshot = {
            "mode": "thread_vs_process",
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "thread": thread_snapshot,
            "process": process_snapshot,
            "process_speedup": (
                process_snapshot["requests_per_second"]
                / thread_snapshot["requests_per_second"]
            ),
        }
        report = (
            f"thread {_describe(thread_snapshot)} | "
            f"process {_describe(process_snapshot)} | "
            f"speedup {snapshot['process_speedup']:.2f}x "
            f"on {snapshot['cpu_count']} core(s)"
        )
    else:
        snapshot = bench(args.executor, observability=args.obs != "off")
        report = _describe(snapshot)

    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    results[args.label] = snapshot
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"{args.label}: {report} -> {RESULT_PATH}")


if __name__ == "__main__":
    main()
