"""Fractional-knapsack tight threshold (Section 5.1 / Figure 5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring import score
from repro.topk.knapsack import naive_threshold, tight_threshold


class TestPaperExample:
    """The worked example of the paper's Figure 5: o = (10, 6, 8)."""

    def test_after_three_accesses(self):
        # l = (0.8, 0.8, 0.9): fill dim1 with 0.8, dim3 with 0.2.
        assert tight_threshold([0.8, 0.8, 0.9], (10, 6, 8)) == pytest.approx(9.6)

    def test_after_fc_access(self):
        # l1 drops to 0.5: Ttight = 0.5*10 + 0*6 + 0.5*8 = 9.
        assert tight_threshold([0.5, 0.8, 0.9], (10, 6, 8)) == pytest.approx(9.0)

    def test_naive_threshold_is_looser(self):
        bounds = [0.8, 0.8, 0.9]
        o = (10, 6, 8)
        assert naive_threshold(bounds, o) > tight_threshold(bounds, o)


def test_zero_bounds_give_zero():
    assert tight_threshold([0.0, 0.0], (1.0, 1.0)) == 0.0


def test_budget_scales_threshold():
    # Priorities: B = max gamma (Section 6.2).
    t1 = tight_threshold([1.0, 1.0], (0.5, 0.25), budget=1.0)
    t3 = tight_threshold([3.0, 3.0], (0.5, 0.25), budget=3.0)
    assert t3 == pytest.approx(3 * t1)


def test_budget_larger_than_bounds_sum():
    # Bounds cap the fill even when the budget is large.
    assert tight_threshold([0.2, 0.1], (1.0, 1.0), budget=5.0) == pytest.approx(0.3)


def test_dimension_ranking_matters():
    # Mass goes to the object's best dimensions first.
    assert tight_threshold([0.5, 0.9], (1.0, 0.1), budget=1.0) == pytest.approx(
        0.5 * 1.0 + 0.5 * 0.1
    )


@given(
    st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=5),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_upper_bound_property(bounds, data):
    """Ttight bounds the score of every normalized function whose
    coefficients respect the per-list bounds."""
    dims = len(bounds)
    point = tuple(
        data.draw(st.floats(0, 1, allow_nan=False)) for _ in range(dims)
    )
    # Build a random feasible function: alpha_i <= bounds[i], sum == 1
    # (only possible if sum(bounds) >= 1).
    if sum(bounds) < 1.0:
        return
    rng = random.Random(data.draw(st.integers(0, 10**6)))
    alpha = [0.0] * dims
    mass = 1.0
    order = list(range(dims))
    rng.shuffle(order)
    for i in order:
        alpha[i] = min(mass, bounds[i] * rng.random())
        mass -= alpha[i]
    if mass > 1e-12:
        # Distribute leftovers within the bounds if possible.
        for i in order:
            room = bounds[i] - alpha[i]
            take = min(room, mass)
            alpha[i] += take
            mass -= take
    if mass > 1e-9:
        return  # couldn't build a feasible function; nothing to check
    t = tight_threshold(bounds, point)
    assert score(alpha, point) <= t + 1e-9


def test_tightness_attained():
    """The bound is tight: the greedy beta itself is a feasible
    function when bounds allow, so some function attains Ttight."""
    bounds = [0.6, 0.5, 0.4]
    point = (0.9, 0.5, 0.1)
    t = tight_threshold(bounds, point)
    # The greedy beta: 0.6 to dim0, 0.4 to dim1, 0 to dim2.
    beta = (0.6, 0.4, 0.0)
    assert sum(beta) == pytest.approx(1.0)
    assert all(b <= lb for b, lb in zip(beta, bounds))
    assert score(beta, point) == pytest.approx(t)
