"""Result types shared by all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.stats import IOStats


@dataclass(frozen=True)
class AssignedPair:
    """One stable (function, object) pair.

    ``count`` > 1 aggregates the capacitated case: it is the number of
    units matched between the two (Section 6.1's repeated Line 15–17
    decrements, batched — see DESIGN.md).
    """

    fid: int
    oid: int
    score: float
    count: int = 1


@dataclass
class Matching:
    """A stable assignment: the ordered list of emitted pairs."""

    pairs: list[AssignedPair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def add(self, fid: int, oid: int, score: float, count: int = 1) -> None:
        self.pairs.append(AssignedPair(fid, oid, score, count))

    def as_dict(self) -> dict[tuple[int, int], int]:
        """``{(fid, oid): units}`` — order-independent comparison form."""
        out: dict[tuple[int, int], int] = {}
        for p in self.pairs:
            out[(p.fid, p.oid)] = out.get((p.fid, p.oid), 0) + p.count
        return out

    @property
    def num_units(self) -> int:
        return sum(p.count for p in self.pairs)

    def total_score(self) -> float:
        return sum(p.score * p.count for p in self.pairs)

    def object_of(self, fid: int) -> list[tuple[int, int]]:
        """``(oid, units)`` partners of a function."""
        return [(p.oid, p.count) for p in self.pairs if p.fid == fid]

    def function_of(self, oid: int) -> list[tuple[int, int]]:
        """``(fid, units)`` partners of an object."""
        return [(p.fid, p.count) for p in self.pairs if p.oid == oid]


@dataclass
class RunStats:
    """The paper's three metrics plus algorithm-specific work counters."""

    io: IOStats = field(default_factory=IOStats)
    cpu_seconds: float = 0.0
    peak_memory_bytes: int = 0
    loops: int = 0
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def io_accesses(self) -> int:
        """The paper's "I/O accesses": physical page reads."""
        return self.io.physical_reads


@dataclass
class AssignmentResult:
    """A matching together with the cost of computing it."""

    matching: Matching
    stats: RunStats

    def __iter__(self):
        # Allows ``matching, stats = solve(...)`` unpacking.
        yield self.matching
        yield self.stats
