"""``Matching.object_of`` / ``function_of`` lazily indexed lookups."""

import random

from repro.core.types import AssignedPair, Matching


def scan_object_of(matching, fid):
    return [(p.oid, p.count) for p in matching.pairs if p.fid == fid]


def scan_function_of(matching, oid):
    return [(p.fid, p.count) for p in matching.pairs if p.oid == oid]


def test_lookups_match_linear_scan_semantics():
    rng = random.Random(42)
    m = Matching()
    for _ in range(200):
        m.add(rng.randrange(20), rng.randrange(30), rng.random(), rng.randint(1, 3))
    for fid in range(22):
        assert m.object_of(fid) == scan_object_of(m, fid)
    for oid in range(32):
        assert m.function_of(oid) == scan_function_of(m, oid)


def test_index_extends_incrementally_after_lookups():
    m = Matching()
    m.add(0, 5, 0.9)
    assert m.object_of(0) == [(5, 1)]
    m.add(0, 6, 0.8)  # appended after the index was built
    m.add(1, 5, 0.7)
    assert m.object_of(0) == [(5, 1), (6, 1)]
    assert m.function_of(5) == [(0, 1), (1, 1)]
    assert m.object_of(99) == []


def test_index_rebuilds_when_pairs_shrink_or_are_replaced():
    m = Matching()
    for fid in range(5):
        m.add(fid, fid + 10, 0.5)
    assert m.object_of(4) == [(14, 1)]
    m.pairs[:] = m.pairs[:2]  # truncation invalidates
    assert m.object_of(4) == []
    assert m.object_of(1) == [(11, 1)]
    m.pairs[:] = [AssignedPair(7, 8, 0.1), AssignedPair(7, 9, 0.2)]
    assert m.object_of(7) == [(8, 1), (9, 1)]
    assert m.object_of(1) == []


def test_same_length_replacement_is_detected():
    m = Matching(pairs=[AssignedPair(0, 1, 0.5), AssignedPair(2, 3, 0.4)])
    assert m.object_of(0) == [(1, 1)]
    m.pairs[:] = [AssignedPair(8, 1, 0.5), AssignedPair(9, 3, 0.4)]
    assert m.object_of(0) == []
    assert m.object_of(8) == [(1, 1)]


def test_constructed_with_prebuilt_pairs():
    pairs = [AssignedPair(1, 2, 0.3, 2), AssignedPair(1, 4, 0.2)]
    m = Matching(pairs=pairs)
    assert m.object_of(1) == [(2, 2), (4, 1)]
    assert m.function_of(2) == [(1, 2)]
    # dataclass semantics intact
    assert m == Matching(pairs=list(pairs))
    assert len(m) == 2


def test_first_element_replacement_is_detected():
    m = Matching()
    m.add(0, 1, 0.5)
    m.add(2, 3, 0.4)
    assert m.object_of(0) == [(1, 1)]
    m.pairs[0] = AssignedPair(8, 1, 0.5)  # tail untouched
    assert m.object_of(8) == [(1, 1)]
    assert m.object_of(0) == []


def test_invalidate_index_covers_middle_surgery():
    m = Matching()
    for fid in range(5):
        m.add(fid, fid + 10, 0.5)
    assert m.object_of(2) == [(12, 1)]
    m.pairs[2] = AssignedPair(99, 12, 0.5)  # both ends intact
    m.invalidate_index()
    assert m.object_of(99) == [(12, 1)]
    assert m.object_of(2) == []
