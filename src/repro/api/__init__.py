"""repro.api — the stable, documented entry surface of the library.

Three value objects and one stateful facade::

    from repro.api import Problem, AssignmentSession

    problem = (
        Problem.builder()
        .add_objects([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
        .add_functions([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
        .solver("sb")
        .build()
    )
    with AssignmentSession(problem) as session:
        solution = session.solve().verify()
        for fid, oid, score, units in (
            (p.fid, p.oid, p.score, p.count) for p in solution
        ):
            print(fid, "->", oid, score, units)

- :class:`Problem` — an immutable, validated assignment instance with
  a fluent builder and versioned JSON serde;
- :class:`AssignmentSession` — a long-lived handle owning the built
  object index (shared through the batch index cache), with
  ``solve()`` / ``solve_many()`` / ``submit()`` futures and
  ``apply(events)`` incremental re-solve under churn;
- :class:`Solution` — the solved assignment with O(1) partner lookups,
  ``verify()`` stability certification, ``diff()`` against a previous
  solution, and JSON serde;
- :mod:`repro.api.errors` — the typed exception hierarchy rooted at
  :class:`~repro.errors.ReproError`.

Everything else in the package (``repro.core``, ``repro.engine``,
``repro.service``, ...) is implementation that this facade wires
together; new integrations should depend on ``repro.api`` only.
"""

from repro.api.events import (
    Event,
    FunctionArrived,
    FunctionDeparted,
    ObjectArrived,
    ObjectDeparted,
)
from repro.api.problem import Problem, ProblemBuilder
from repro.api.serde import canonical_digest
from repro.api.session import AssignmentSession
from repro.api.solution import Solution, SolutionDiff
from repro.planner import AUTO_METHOD, InstanceProfile, Plan, PlanCandidate
from repro.errors import (
    FrozenInstanceError,
    InvalidProblemError,
    InvalidSolverOptionError,
    ReproError,
    SerdeError,
    ServerBusyError,
    ServerError,
    SessionClosedError,
    UnknownSolverError,
)

__all__ = [
    "AUTO_METHOD",
    "AssignmentSession",
    "Event",
    "InstanceProfile",
    "Plan",
    "PlanCandidate",
    "FrozenInstanceError",
    "FunctionArrived",
    "FunctionDeparted",
    "InvalidProblemError",
    "InvalidSolverOptionError",
    "ObjectArrived",
    "ObjectDeparted",
    "Problem",
    "ProblemBuilder",
    "ReproError",
    "SerdeError",
    "ServerBusyError",
    "ServerError",
    "SessionClosedError",
    "Solution",
    "SolutionDiff",
    "UnknownSolverError",
    "canonical_digest",
]
