"""Blocking HTTP client for :mod:`repro.server` — stdlib only.

Speaks the server's JSON protocol over one keep-alive
:class:`http.client.HTTPConnection` (reconnecting transparently when
the peer drops it), translates error responses into the
:class:`~repro.errors.ServerError` hierarchy, and re-hydrates wire
payloads into the same :class:`Problem` / :class:`Solution` value
objects the in-process API returns — a solution fetched over the wire
is ``==`` to one solved locally.

Not thread-safe: use one ``Client`` per thread (they are cheap).
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import time

from repro.api.problem import Problem
from repro.api.solution import Solution
from repro.errors import ServerBusyError, ServerError


class Client:
    """Blocking client bound to one server base URL."""

    def __init__(
        self,
        base_url: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
    ):
        if base_url is not None:
            if not base_url.startswith("http://"):
                raise ValueError(f"expected an http:// base URL, got {base_url!r}")
            authority = base_url[len("http://") :].rstrip("/")
            host, _, port_text = authority.partition(":")
            port = int(port_text) if port_text else 80
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        # Problems this client has registered, for re-attaching to
        # solutions so ``.verify()`` works without another fetch.
        self._known: dict[str, Problem] = {}

    # -- transport -----------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, payload=None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                http.client.CannotSendRequest,
                http.client.BadStatusLine,
                BrokenPipeError,
                ConnectionResetError,
            ):
                # A keep-alive connection the server has since closed;
                # reconnect once, then let the failure surface.
                self.close()
                if attempt == 2:
                    raise
        if response.will_close:
            self.close()
        decoded = None
        if data:
            try:
                decoded = json.loads(data)
            except ValueError as exc:
                raise ServerError(
                    f"non-JSON response body from {method} {path}: {exc}",
                    status=response.status,
                ) from exc
        if response.status == 429:
            retry_after = response.headers.get("Retry-After", "1")
            try:
                delay = float(retry_after)
            except ValueError:
                delay = 1.0
            raise ServerBusyError(
                (decoded or {}).get("error", "server busy"),
                retry_after=delay,
                payload=decoded,
            )
        if response.status >= 400:
            message = (
                decoded.get("error")
                if isinstance(decoded, dict) and "error" in decoded
                else f"{method} {path} -> HTTP {response.status}"
            )
            raise ServerError(message, status=response.status, payload=decoded)
        return response.status, decoded

    # -- protocol ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")[1]

    def register(self, problem: Problem) -> str:
        """Register (or re-find) a problem; returns its server id."""
        _, body = self._request("POST", "/v1/problems", problem.to_dict())
        problem_id = body["problem_id"]
        self._known[problem_id] = problem
        return problem_id

    def problem(self, problem_id: str) -> Problem:
        _, body = self._request("GET", f"/v1/problems/{problem_id}")
        problem = Problem.from_dict(body)
        self._known[problem_id] = problem
        return problem

    def _target(self, problem: Problem | str) -> str:
        if isinstance(problem, Problem):
            return self.register(problem)
        return problem

    def _attach(
        self,
        solution: Solution,
        problem_id: str,
        method: str | None = None,
        options: dict | None = None,
    ) -> Solution:
        """Re-attach the registered base :class:`Problem` so
        ``solution.verify()`` works — but only when the solve actually
        used that problem's solver selection (``method`` / ``options``
        are what the server reports it solved with; ``None`` = no
        check).  An overridden solve stays detached: attaching the
        base would misreport which options produced the result."""
        base = self._known.get(problem_id)
        if base is None:
            return solution
        if method is not None and method != base.method:
            return solution
        if options is not None and dict(options) != dict(base.options):
            return solution
        return dataclasses.replace(solution, problem=base)

    def solve(
        self,
        problem: Problem | str,
        *,
        method: str | None = None,
        options: dict | None = None,
        timeout: float = 120.0,
    ) -> Solution:
        """Synchronous solve; retries politely on 429 until ``timeout``."""
        problem_id = self._target(problem)
        overrides: dict = {}
        if method is not None:
            overrides["method"] = method
        if options is not None:
            overrides["options"] = options
        body = self._retry_busy(
            lambda: self._request(
                "POST", f"/v1/problems/{problem_id}/solve", overrides or None
            ),
            timeout,
        )
        solution = Solution.from_dict(body["solution"])
        if overrides:
            return solution  # detached: the base Problem would lie
        return self._attach(solution, problem_id)

    def submit(
        self,
        problem: Problem | str,
        *,
        method: str | None = None,
        options: dict | None = None,
        timeout: float | None = None,
    ) -> str:
        """Enqueue an async solve; returns the job id.

        With ``timeout=None`` a saturated queue raises
        :class:`~repro.errors.ServerBusyError` immediately (the caller
        owns backoff); with a timeout the client honours ``Retry-After``
        and retries until admitted or out of time.
        """
        problem_id = self._target(problem)
        payload: dict = {"problem_id": problem_id}
        if method is not None:
            payload["method"] = method
        if options is not None:
            payload["options"] = options
        def request():
            return self._request("POST", "/v1/jobs", payload)

        if timeout is None:
            _, body = request()
        else:
            body = self._retry_busy(request, timeout)
        return body["job_id"]

    def job(self, job_id: str, *, include_solution: bool = True) -> dict:
        suffix = "" if include_solution else "?solution=0"
        return self._request("GET", f"/v1/jobs/{job_id}{suffix}")[1]

    def result(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_interval: float = 0.02,
    ) -> Solution:
        """Poll a job to completion; returns its :class:`Solution`."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id, include_solution=False)
            if status["status"] == "done":
                _, payload = self._request("GET", f"/v1/jobs/{job_id}/solution")
                solution = Solution.from_dict(payload)
                return self._attach(
                    solution,
                    status["problem_id"],
                    status["method"],
                    status.get("options"),
                )
            if status["status"] == "failed":
                raise ServerError(
                    f"job {job_id} failed: {status['error']}",
                    status=409,
                    payload=status,
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def diff(self, job_a: str, job_b: str) -> dict:
        """Unit-level delta between two completed jobs' solutions."""
        return self._request("GET", f"/v1/diff?a={job_a}&b={job_b}")[1]

    # ------------------------------------------------------------------

    @staticmethod
    def _retry_busy(request, timeout: float):
        """Run ``request`` honouring 429 ``Retry-After`` backoff."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                _, body = request()
                return body
            except ServerBusyError as busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                time.sleep(min(max(busy.retry_after, 0.01), remaining))


__all__ = ["Client", "ServerBusyError", "ServerError"]
