"""The fractional-knapsack tight threshold (paper Section 5.1).

During a reverse top-1 search the plain TA threshold
``T = Σ l_i · o_i`` (``l_i`` = last coefficient seen in list ``L_i``)
is not tight because the ``l_i`` may sum to more than 1 while every
real function's coefficients sum to exactly 1.  The paper instead
maximizes ``Σ β_i · o_i`` subject to ``Σ β_i = B`` and ``0 ≤ β_i ≤
l_i`` — a fractional knapsack solved greedily by filling the
dimensions in decreasing order of the object's values.

``B = 1`` for normalized functions; for prioritized functions
(Section 6.2) ``B`` is the maximum priority γ among alive functions
and the ``l_i`` are bounds on the *effective* coefficients.
"""

from __future__ import annotations

from collections.abc import Sequence


def tight_threshold(
    bounds: Sequence[float], point: Sequence[float], budget: float = 1.0
) -> float:
    """Upper bound of ``f(point)`` over unseen functions.

    ``bounds[i]`` is the last coefficient drawn in sorted order from
    list ``L_i`` (every unseen function has ``α'_i <= bounds[i]``);
    ``budget`` is the coefficient mass every function carries.
    """
    order = sorted(range(len(point)), key=lambda i: (-point[i], i))
    remaining = budget
    total = 0.0
    for i in order:
        if remaining <= 0.0:
            break
        beta = bounds[i] if bounds[i] < remaining else remaining
        if beta > 0.0:
            total += beta * point[i]
            remaining -= beta
    return total


def naive_threshold(bounds: Sequence[float], point: Sequence[float]) -> float:
    """The untightened TA threshold ``Σ l_i · o_i`` (for comparison —
    the paper's Figure 5 example has Ttight=9.6 vs naive 19.6)."""
    return sum(b * x for b, x in zip(bounds, point))
