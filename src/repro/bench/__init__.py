"""Benchmark harness reproducing the paper's evaluation (Section 7).

- :mod:`repro.bench.config` — parameter scales.  The paper's Table 2
  defaults (|F|=5k, |O|=100k, D=4, anti-correlated, 2% buffer) are
  scaled down for laptop-speed pure-Python runs; set
  ``REPRO_BENCH_SCALE=medium`` or ``=paper`` to raise them.  Sweeps
  keep the paper's *relative* ranges, so cost shapes are comparable.
- :mod:`repro.bench.harness` — instance/index caching and single-cell
  runs with the paper's three metrics (page reads, CPU seconds, peak
  search-structure memory).
- :mod:`repro.bench.reporting` — paper-style series tables.

``benchmarks/`` contains one pytest-benchmark suite per paper figure;
``benchmarks/run_figures.py`` regenerates every figure's table in
one go (see README.md § Benchmarks).
"""

from repro.bench.config import Defaults, current_scale, defaults
from repro.bench.harness import make_instance, run_cell
from repro.bench.reporting import format_series, print_series

__all__ = [
    "Defaults",
    "current_scale",
    "defaults",
    "format_series",
    "make_instance",
    "print_series",
    "run_cell",
]
