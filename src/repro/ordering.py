"""Canonical tie-breaking shared by every algorithm.

With real-valued random data, score ties are measure-zero — but the
test suite (hypothesis) and the capacitated variant (duplicate
objects/functions) hit them constantly.  The stable matching is unique
only under *strict* preferences, so all solvers break ties through the
orders below, making their outputs comparable pair-for-pair:

- **objects**, for a fixed function: higher score first, then
  lexicographically larger coordinates, then smaller object id.  The
  coordinate-lex component guarantees the canonical best object is a
  skyline member: any dominator scores >= and is coordinate-lex
  greater, so a non-skyline object can never win a tie against all of
  its dominators.
- **functions**, for a fixed object: higher score first, then
  lexicographically larger *effective* (γ-scaled) coefficients, then
  smaller function id.  The same argument keeps the canonical best
  function on the function skyline in the prioritized variant
  (Section 6.2's two-skyline optimization).
- **pairs**: higher score, then the function tail, then the object
  tail — consistent with both per-side orders, so "mutually canonical
  best" pairs are exactly the pairs of the canonical stable matching.

All keys sort *ascending*: smaller key == more preferred.
"""

from __future__ import annotations

from collections.abc import Sequence

ObjectKey = tuple[float, tuple[float, ...], int]
FunctionKey = tuple[float, tuple[float, ...], int]
PairKey = tuple[float, tuple[float, ...], int, tuple[float, ...], int]


def neg(values: Sequence[float]) -> tuple[float, ...]:
    """Negate a vector so that ascending tuple order prefers larger."""
    return tuple(-v for v in values)


def object_key(score: float, point: Sequence[float], oid: int) -> ObjectKey:
    """Preference key of an object for some fixed function."""
    return (-score, neg(point), oid)


def function_key(
    score: float, effective_weights: Sequence[float], fid: int
) -> FunctionKey:
    """Preference key of a function for some fixed object."""
    return (-score, neg(effective_weights), fid)


def pair_key(
    score: float,
    effective_weights: Sequence[float],
    fid: int,
    point: Sequence[float],
    oid: int,
) -> PairKey:
    """Global order on (function, object) pairs."""
    return (-score, neg(effective_weights), fid, neg(point), oid)
