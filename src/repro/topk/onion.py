"""Onion — convex-hull-layer index for linear top-k (Chang et al. [5]).

Precomputes convex hull layers: layer 1 is the hull of all points,
layer 2 the hull of what remains, and so on.  A linear function's
maximum over any convex set is attained at a hull vertex, so the
maximum score of layer j+1's points never exceeds layer j's — top-k
expands layers inward until the k-th incumbent provably beats
everything deeper.

The paper lists Onion as related work and its two weaknesses (deep
expansion for large k; hull cost O(n^{D/2})) motivate the skyline
route instead.  It is included as a baseline/oracle and exercised in
tests and the ablation benchmarks.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from repro.ordering import ObjectKey, object_key
from repro.scoring import SCORE_EPS, score

Point = tuple[float, ...]


def _hull_vertex_coords(coords: list[Point]) -> set[Point]:
    """Coordinates on the convex hull of the given distinct points."""
    dims = len(coords[0])
    if len(coords) <= dims + 1:
        return set(coords)
    if dims == 1:
        lo = min(coords)
        hi = max(coords)
        return {lo, hi}
    from scipy.spatial import ConvexHull, QhullError

    arr = np.asarray(coords)
    try:
        hull = ConvexHull(arr)
    except QhullError:
        try:
            hull = ConvexHull(arr, qhull_options="QJ")  # joggle degeneracies
        except QhullError:
            return set(coords)  # give up: treat all as hull (safe)
    return {coords[i] for i in hull.vertices}


class OnionIndex:
    """Convex-hull layers over ``(oid, point)`` items."""

    def __init__(self, items: Sequence[tuple[int, Point]]):
        self.layers: list[list[tuple[int, Point]]] = []
        remaining = [(oid, tuple(p)) for oid, p in items]
        while remaining:
            distinct = sorted({p for _, p in remaining})
            vertex_coords = _hull_vertex_coords(distinct)
            layer = [(oid, p) for oid, p in remaining if p in vertex_coords]
            if not layer:  # cannot happen, but never loop forever
                layer = remaining
            self.layers.append(layer)
            remaining = [(oid, p) for oid, p in remaining if p not in vertex_coords]

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    def topk(self, weights: Sequence[float], k: int) -> list[tuple[int, float]]:
        """Top-k ``(oid, score)`` by expanding layers progressively.

        Stops once the k-th incumbent *strictly* beats the last
        expanded layer's maximum (deeper layers can never exceed it);
        score ties force deeper expansion so results stay
        canonical-exact.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        incumbents: list[tuple[ObjectKey, int]] = []
        layers_expanded = 0
        for layer in self.layers:
            layer_max = float("-inf")
            for oid, p in layer:
                s = score(weights, p)
                if s > layer_max:
                    layer_max = s
                bisect.insort(incumbents, (object_key(s, p, oid), oid))
                if len(incumbents) > k:
                    incumbents.pop()
            layers_expanded += 1
            # SCORE_EPS also absorbs qhull's joggle perturbation in the
            # degenerate-input fallback.
            if len(incumbents) >= k and -incumbents[k - 1][0][0] > layer_max + SCORE_EPS:
                break
        self.last_layers_expanded = layers_expanded
        return [(oid, -key[0]) for key, oid in incumbents[:k]]
