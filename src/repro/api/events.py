"""Churn events consumed by :meth:`AssignmentSession.apply`.

The paper's future-work scenario — "maintenance of a fair matching in
a system where objects are dynamically allocated/freed" — expressed as
four declarative event types.  Arrivals carry the new participant's
data; departures name the handle to retire (the problem's positional
ids seed the session, arrival handles are reported back via
:attr:`AssignmentSession.last_arrival_handles`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ObjectArrived:
    """A new object joins the catalogue (e.g. a housing unit freed)."""

    point: tuple[float, ...]
    capacity: int = 1


@dataclass(frozen=True)
class ObjectDeparted:
    """An object leaves the catalogue (allocated outside the system)."""

    oid: int


@dataclass(frozen=True)
class FunctionArrived:
    """A new preference function (user) joins the cohort."""

    weights: tuple[float, ...]
    priority: float = 1.0
    capacity: int = 1


@dataclass(frozen=True)
class FunctionDeparted:
    """A function (user) withdraws from the cohort."""

    fid: int


Event = Union[ObjectArrived, ObjectDeparted, FunctionArrived, FunctionDeparted]

__all__ = [
    "Event",
    "FunctionArrived",
    "FunctionDeparted",
    "ObjectArrived",
    "ObjectDeparted",
]
