"""``repro.obs`` — stdlib-only observability for the serving stack.

- :mod:`repro.obs.trace` — trace context, spans, wire propagation
- :mod:`repro.obs.log` — structured JSON-lines logging + log ring
- :mod:`repro.obs.store` — trace retention (slow-solve log) + rendering
- :mod:`repro.obs.prom` — Prometheus text exposition of ``/metrics``
- :mod:`repro.obs.admin` — the ``repro-admin`` fleet console
"""

from repro.obs.log import (
    JsonFormatter,
    KeyValueFormatter,
    LogRing,
    RingHandler,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.store import TraceStore, assemble_tree, render_tree
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    SpanCollector,
    TraceContext,
    attach_engine_spans,
    collecting,
    current_collector,
    current_context,
    derived_span,
    span,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "TRACE_HEADER",
    "JsonFormatter",
    "KeyValueFormatter",
    "LogRing",
    "RingHandler",
    "Span",
    "SpanCollector",
    "StructuredLogger",
    "TraceContext",
    "TraceStore",
    "assemble_tree",
    "attach_engine_spans",
    "collecting",
    "configure_logging",
    "current_collector",
    "current_context",
    "derived_span",
    "get_logger",
    "render_prometheus",
    "render_tree",
    "span",
    "wants_prometheus",
]
