"""Vectorized canonical argmax over a set of rows.

The BestPair step scans the (in-memory) skyline for each candidate
function — "find object f.obest ∈ Osky that maximizes f(o)" — and the
two-skyline variant scans Fsky per object.  Both are dot-product
argmaxes with canonical tie-breaking.  ``MatrixView`` computes the
scores with one numpy matmul, then resolves the winner *exactly*
(via :func:`repro.scoring.score` and the canonical tuple order) among
the rows inside a small tolerance band around the numpy maximum — the
band scales with the summed term magnitudes (max|coord|·sum|weight|)
and stays orders of magnitude wider than matmul's rounding error, so
the exact winner is always inside it and results are bit-identical to
the scalar scan.

The float64 matrix is the *canonical* representation: Python tuples
are derived from it lazily (and cached) only when a tolerance band
holds more than one row and exact tie-resolution has to compare
canonical keys.  The view is also incrementally editable —
:meth:`append` / :meth:`remove` (swap-remove into a doubling buffer)
and the diff-based :meth:`sync` — so the per-round skyline churn of
the engine's mutual-best rounds updates the matrix in place instead
of rebuilding it from scratch every round.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.ordering import neg
from repro.scoring import SCORE_EPS, score


class MatrixView:
    """``(id, vector)`` rows supporting canonical best-row queries.

    The canonical order used is ``(-score, neg(row), id)`` ascending —
    which equals :func:`repro.ordering.object_key` when rows are object
    points and :func:`repro.ordering.function_key` when rows are
    effective weight vectors (the two orders share one shape).

    Row order is maintenance-defined (removals swap the last row into
    the hole), which is irrelevant to ``best_for``: ties are resolved
    through the canonical key, never through row position.
    """

    def __init__(self, ids: Sequence[int], rows: Sequence[Sequence[float]]):
        if len(ids) != len(rows):
            raise ValueError("ids and rows must align")
        self.ids = list(ids)
        self._n = len(self.ids)
        self._buf = np.asarray(rows, dtype=np.float64)
        if self._n and self._buf.ndim != 2:
            raise ValueError("rows must share one dimensionality")
        self._pos = {ident: i for i, ident in enumerate(self.ids)}
        # Lazy canonical-tuple cache, aligned with the buffer rows.
        self._tuples: list[tuple[float, ...] | None] = [None] * self._n
        # Largest |coordinate| *ever seen*: the tolerance band in
        # :meth:`best_for` scales with the *term* magnitudes
        # (sum_i |w_i·x_i| ≤ max|x| · sum|w|), not with the final dot
        # product — cancellation can make |f(o)| tiny while rounding
        # error stays proportional to the huge intermediate terms.
        # Kept as a monotone upper bound across removals: a wider band
        # only adds rows to the exact-resolution pass, never changes
        # its winner.
        self._max_abs_coord = (
            float(np.abs(self._buf).max()) if self._n else 0.0
        )

    def __len__(self) -> int:
        return self._n

    @classmethod
    def from_dict(cls, mapping: Mapping[int, tuple[float, ...]]) -> "MatrixView":
        ids = sorted(mapping)
        return cls(ids, [mapping[i] for i in ids])

    @property
    def matrix(self) -> np.ndarray:
        """The canonical float64 row matrix (live rows only)."""
        return self._buf[: self._n]

    @property
    def rows(self) -> list[tuple[float, ...]]:
        """All rows as canonical tuples (diagnostics/tests only —
        ``best_for`` materializes tuples lazily per tolerance band)."""
        return [self._row_tuple(i) for i in range(self._n)]

    def _row_tuple(self, i: int) -> tuple[float, ...]:
        cached = self._tuples[i]
        if cached is None:
            cached = tuple(self._buf[i].tolist())
            self._tuples[i] = cached
        return cached

    # -- incremental maintenance -------------------------------------------

    def append(self, ident: int, row: Sequence[float]) -> None:
        """Add one row (amortized O(dims); the buffer doubles)."""
        if ident in self._pos:
            raise ValueError(f"id {ident} is already present")
        vec = np.asarray(row, dtype=np.float64)
        if self._n == 0 and self._buf.size == 0:
            self._buf = vec.reshape(1, -1).copy()
        elif self._n == len(self._buf):
            grown = np.empty(
                (max(2 * self._n, 4), self._buf.shape[1]), dtype=np.float64
            )
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        if self._n < len(self._buf):
            self._buf[self._n] = vec
        self._pos[ident] = self._n
        self.ids.append(ident)
        self._tuples.append(None)
        self._n += 1
        mx = float(np.abs(vec).max()) if vec.size else 0.0
        if mx > self._max_abs_coord:
            self._max_abs_coord = mx

    def remove(self, ident: int) -> None:
        """Drop one row in O(dims) by swapping the last row into it."""
        i = self._pos.pop(ident)
        last = self._n - 1
        if i != last:
            self._buf[i] = self._buf[last]
            self.ids[i] = self.ids[last]
            self._tuples[i] = self._tuples[last]
            self._pos[self.ids[i]] = i
        self.ids.pop()
        self._tuples.pop()
        self._n = last

    def sync(self, mapping: Mapping[int, tuple[float, ...]]) -> None:
        """Diff the view against ``mapping`` — removals first, then
        appends — so steady-state churn costs O(changes), not O(rows)."""
        for ident in [i for i in self._pos if i not in mapping]:
            self.remove(ident)
        for ident, row in mapping.items():
            if ident not in self._pos:
                self.append(ident, row)

    # -- queries ------------------------------------------------------------

    def best_for(self, query: Sequence[float]) -> tuple[int, float]:
        """Canonically best ``(id, exact_score)`` for ``query``."""
        if not self._n:
            raise ValueError("best_for on an empty MatrixView")
        query_vector = np.asarray(query, dtype=np.float64)
        approx = self.matrix @ query_vector
        approx_max = float(approx.max())
        # Matmul rounding error is relative to the summed *term*
        # magnitudes (~dims ulps of sum|w_i·x_i|), which cancellation
        # can leave orders of magnitude above the final score — a band
        # scaled by the score itself (or a fixed one) silently drops
        # the exact winner on high-magnitude mixed-sign rows.  Bound
        # the terms by max|coord|·sum|w|; the floor of 1.0 keeps the
        # original absolute margin for small instances.
        term_scale = self._max_abs_coord * float(np.abs(query_vector).sum())
        tolerance = SCORE_EPS * max(1.0, term_scale)
        band = np.nonzero(approx >= approx_max - tolerance)[0]
        best_key = None
        best_i = -1
        for i in band:
            row = self._row_tuple(int(i))
            key = (-score(row, query), neg(row), self.ids[i])
            if best_key is None or key < best_key:
                best_key = key
                best_i = int(i)
        return self.ids[best_i], -best_key[0]
