"""The columnar kernels of :mod:`repro.kernels`.

Three layers of coverage:

- **batch Pareto kernels vs the scalar oracle** — hypothesis property
  tests check :func:`~repro.kernels.pareto.pareto_mask`,
  :func:`~repro.kernels.pareto.dominated_mask` and
  :func:`~repro.kernels.pareto.dominator_index` against
  :func:`repro.skyline.reference.naive_skyline` /
  :func:`repro.rtree.geometry.dominates` on mixed-sign coordinates,
  exact float ties and duplicate points;
- **bit-identity against the interpreted twins** — ``sb-vec`` must
  reproduce ``sb`` (and ``sb-deltasky-vec`` must reproduce
  ``sb-deltasky``) pair for pair: same (fid, oid, score, units)
  sequence, same loop count, on plain / tie-heavy / capacitated /
  prioritized instances and through the batch solver on both
  executors;
- **stability certificates** — the vectorized solvers' matchings pass
  :meth:`repro.api.Solution.verify` (no blocking pair).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AssignmentSession, Problem
from repro.core import build_object_index, solve
from repro.kernels import (
    ColumnarInstance,
    VectorizedSkylineMaintenance,
    dominated_mask,
    pareto_mask,
)
from repro.kernels.pareto import dominator_index
from repro.rtree.geometry import dominates
from repro.service import BatchSolver, SolveJob
from repro.skyline.reference import naive_skyline

from .conftest import random_instance

# ---------------------------------------------------------------------------
# Batch Pareto kernels vs the scalar oracle
# ---------------------------------------------------------------------------

# Mixed signs, exact-tie magnets (including negative ones) and full
# floats: maximizes duplicate rows, tied sums and tied coordinates.
mixed_coord = st.one_of(
    st.sampled_from([-1.0, -0.5, 0.0, 0.25, 0.5, 1.0]),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, width=32),
)


def mixed_points(dims: int, max_size: int = 60):
    return st.lists(
        st.tuples(*([mixed_coord] * dims)), min_size=0, max_size=max_size
    ).map(lambda pts: (dims, pts))


def as_matrix(dims: int, points: list) -> np.ndarray:
    return np.asarray(points, dtype=np.float64).reshape(len(points), dims)


@given(st.integers(2, 5).flatmap(mixed_points))
@settings(max_examples=120, deadline=None)
def test_pareto_mask_matches_naive_skyline(case):
    dims, points = case
    mask = pareto_mask(as_matrix(dims, points))
    expected = naive_skyline(list(enumerate(points)))
    assert set(np.nonzero(mask)[0]) == set(expected)


@given(st.integers(2, 4).flatmap(lambda d: st.tuples(
    mixed_points(d, max_size=25), mixed_points(d, max_size=25),
)))
@settings(max_examples=100, deadline=None)
def test_dominated_mask_matches_scalar_dominates(pair):
    (dims, points), (_, dominators) = pair
    p = as_matrix(dims, points)
    w = as_matrix(dims, dominators)
    mask = dominated_mask(p, w)
    witness = dominator_index(p, w)
    for i, point in enumerate(points):
        expected = any(dominates(d, point) for d in dominators)
        assert mask[i] == expected
        assert (witness[i] >= 0) == expected
        if expected:
            assert dominates(dominators[witness[i]], point)


@given(st.integers(2, 4).flatmap(lambda d: mixed_points(d, max_size=40)))
@settings(max_examples=60, deadline=None)
def test_duplicates_are_all_skyline_members(case):
    # Duplicating every row must not evict anyone: coincident points
    # never dominate each other (Section 2.2).
    dims, points = case
    doubled = points + points
    mask = pareto_mask(as_matrix(dims, doubled))
    half = len(points)
    assert (mask[:half] == mask[half:]).all()
    expected = naive_skyline(list(enumerate(doubled)))
    assert set(np.nonzero(mask)[0]) == set(expected)


def test_empty_and_single_point_edges():
    empty = np.zeros((0, 3))
    assert pareto_mask(empty).shape == (0,)
    assert dominated_mask(empty, np.ones((2, 3))).shape == (0,)
    assert dominated_mask(np.ones((2, 3)), empty).tolist() == [False, False]
    assert dominator_index(np.ones((2, 3)), empty).tolist() == [-1, -1]
    one = np.asarray([[0.5, 0.5]])
    assert pareto_mask(one).tolist() == [True]


# ---------------------------------------------------------------------------
# Incremental mask repair vs recompute-from-scratch
# ---------------------------------------------------------------------------


class _Ctx:
    """Minimal stand-in for EngineContext (maintenance only reads
    ``objects`` and ``mem``)."""

    def __init__(self, objects):
        from repro.storage.stats import MemoryTracker

        self.objects = objects
        self.mem = MemoryTracker()


@pytest.mark.parametrize("seed", range(5))
def test_incremental_removal_matches_recompute(seed):
    functions, objects = random_instance(4, 120, 3, seed=seed, tie_heavy=seed % 2 == 0)
    maintenance = VectorizedSkylineMaintenance(
        _Ctx(objects), ColumnarInstance(functions, objects)
    )
    skyline = maintenance.compute_initial()
    alive = dict(enumerate(objects.points))
    assert skyline == naive_skyline(list(alive.items()))
    rng = np.random.default_rng(seed)
    while len(skyline) > 1:
        members = sorted(skyline)
        take = int(rng.integers(1, min(3, len(members)) + 1))
        removed = list(rng.choice(members, size=take, replace=False))
        skyline = maintenance.remove([int(o) for o in removed])
        for oid in removed:
            del alive[int(oid)]
        assert skyline == naive_skyline(list(alive.items()))


def test_remove_nonmember_raises():
    functions, objects = random_instance(3, 20, 2, seed=9)
    maintenance = VectorizedSkylineMaintenance(
        _Ctx(objects), ColumnarInstance(functions, objects)
    )
    with pytest.raises(RuntimeError):
        maintenance.remove([0])  # before compute_initial
    skyline = maintenance.compute_initial()
    non_member = next(i for i in range(len(objects)) if i not in skyline)
    with pytest.raises(KeyError):
        maintenance.remove([non_member])


# ---------------------------------------------------------------------------
# Bit-identity: vectorized configs vs their interpreted twins
# ---------------------------------------------------------------------------

TWINS = [("sb", "sb-vec"), ("sb-deltasky", "sb-deltasky-vec")]

FAMILIES = [
    dict(),
    dict(tie_heavy=True),
    dict(capacities=True),
    dict(priorities=True),
    dict(capacities=True, priorities=True, tie_heavy=True),
]


def run_signature(functions, objects, method):
    result = solve(
        functions, build_object_index(objects, page_size=512), method=method
    )
    return (
        [(p.fid, p.oid, p.score, p.count) for p in result.matching.pairs],
        result.stats.loops,
    )


@pytest.mark.parametrize("scalar,vectorized", TWINS)
@pytest.mark.parametrize("family", range(len(FAMILIES)))
def test_vectorized_twin_is_pair_identical(scalar, vectorized, family):
    functions, objects = random_instance(
        11, 40, 3, seed=family * 7 + 1, **FAMILIES[family]
    )
    assert run_signature(functions, objects, scalar) == run_signature(
        functions, objects, vectorized
    ), f"{vectorized} diverged from {scalar}"


@pytest.mark.parametrize("scalar,vectorized", TWINS)
def test_vectorized_twin_identity_sweep(scalar, vectorized):
    for seed in range(8):
        functions, objects = random_instance(
            5 + seed, 10 + 5 * seed, 2 + seed % 4, seed=100 + seed,
            capacities=seed % 2 == 0, tie_heavy=seed % 3 == 0,
        )
        assert run_signature(functions, objects, scalar) == run_signature(
            functions, objects, vectorized
        ), f"{vectorized} diverged from {scalar} at seed {100 + seed}"


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_vectorized_twins_identical_through_batch_solver(executor):
    functions, objects = random_instance(9, 35, 3, seed=55, capacities=True)
    with BatchSolver(executor=executor, max_workers=2) as solver:
        for scalar, vectorized in TWINS:
            jobs = [
                SolveJob(functions=functions, objects=objects, method=m)
                for m in (scalar, vectorized)
            ]
            got_scalar, got_vec = solver.solve_many(jobs)
            assert [
                (p.fid, p.oid, p.score, p.count)
                for p in got_scalar.result.matching.pairs
            ] == [
                (p.fid, p.oid, p.score, p.count)
                for p in got_vec.result.matching.pairs
            ], (executor, vectorized)


# ---------------------------------------------------------------------------
# Stability certificates
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("method", ["sb-vec", "sb-deltasky-vec"])
@pytest.mark.parametrize("family", range(len(FAMILIES)))
def test_vectorized_solutions_certify_stable(method, family):
    functions, objects = random_instance(
        8, 30, 3, seed=family * 13 + 3, **FAMILIES[family]
    )
    problem = Problem.from_sets(objects, functions, method=method)
    with AssignmentSession(problem) as session:
        session.solve().verify()  # raises on any blocking pair
