"""Tests for ``repro.analysis`` (the ``repro-lint`` invariant checker).

Each rule family gets seeded-violation fixtures asserting the *exact*
rule ids and line numbers, plus a clean fixture proving no false
positives on the idiomatic form of the same code.  The baseline and
CLI tests run the real pipeline end-to-end in a tmp tree, and the last
test runs the checker over this repository itself — the same contract
CI's ``lint-invariants`` job enforces.
"""

import ast
import json
from pathlib import Path

from repro.analysis import (
    Baseline,
    Finding,
    RegistryView,
    SuppressionIndex,
    check_determinism,
    check_hotpath,
    check_locks,
    check_registry,
    is_deterministic_path,
    run_lint,
)
from repro.analysis.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def rules_at(findings: list[Finding]) -> list[tuple[str, int]]:
    return [(f.rule, f.line) for f in findings]


# ---------------------------------------------------------------------------
# REP10x — lock discipline


LOCK_FIXTURE = """\
import threading

class Counter:
    def __init__(self):
        self._guard = threading.Lock()
        self.total = 0
        self.items = []

    def bump(self):
        with self._guard:
            self.total += 1
            self.items.append(self.total)

    def peek(self):
        return self.total

    def reset(self):
        self.total = 0

    def drain(self):
        self.items.clear()
"""


def test_lock_rule_flags_unguarded_accesses_with_exact_lines():
    findings = check_locks(ast.parse(LOCK_FIXTURE), "fixture.py")
    assert rules_at(findings) == [
        ("REP101", 15),  # peek reads self.total off-lock
        ("REP102", 18),  # reset writes self.total off-lock
        ("REP102", 21),  # drain mutates self.items via .clear() off-lock
    ]
    assert findings[0].scope == "Counter.peek"
    assert findings[0].severity == "warning"
    assert findings[1].severity == "error"


LOCK_CLEAN_FIXTURE = """\
import threading

class Counter:
    def __init__(self):
        self._guard = threading.Lock()
        self.total = 0
        self.label = "counter"

    def bump(self):
        with self._guard:
            self.total += 1

    def peek(self):
        with self._guard:
            return self.total

    def name(self):
        return self.label
"""


def test_lock_rule_clean_fixture_has_no_findings():
    # label is never written under the lock, so reading it is fine;
    # every access to the guarded attribute holds the lock.
    assert check_locks(ast.parse(LOCK_CLEAN_FIXTURE), "fixture.py") == []


def test_lock_rule_detects_dataclass_style_locks():
    source = """\
import threading
from dataclasses import dataclass, field

@dataclass
class Record:
    status: str = "queued"
    _guard: threading.Lock = field(default_factory=threading.Lock)

    def flip(self):
        with self._guard:
            self.status = "done"

    def peek(self):
        return self.status
"""
    findings = check_locks(ast.parse(source), "fixture.py")
    assert rules_at(findings) == [("REP101", 14)]


def test_lock_rule_subscript_store_counts_as_write():
    source = """\
import threading

class Table:
    def __init__(self):
        self._guard = threading.Lock()
        self._rows = {}

    def put(self, k, v):
        with self._guard:
            self._rows[k] = v

    def evict(self, k):
        del self._rows[k]
"""
    findings = check_locks(ast.parse(source), "fixture.py")
    assert rules_at(findings) == [("REP102", 13)]


def test_lock_rule_classes_without_locks_are_out_of_scope():
    source = """\
class Plain:
    def __init__(self):
        self.total = 0

    def bump(self):
        self.total += 1
"""
    assert check_locks(ast.parse(source), "fixture.py") == []


# ---------------------------------------------------------------------------
# REP20x — determinism


DETERMINISM_FIXTURE = """\
import time
import random

def pick(deadline, items):
    if time.time() > deadline:
        return None
    seen = {1, 2}
    out = [x for x in seen]
    return sorted(items, key=id)
"""


def test_determinism_rules_fire_with_exact_lines():
    findings = check_determinism(
        ast.parse(DETERMINISM_FIXTURE), "src/repro/kernels/fixture.py"
    )
    assert rules_at(findings) == [
        ("REP201", 2),  # import random
        ("REP202", 5),  # time.time() in a branch condition
        ("REP203", 8),  # comprehension over a bare set
        ("REP204", 9),  # sorted(key=id)
    ]


DETERMINISM_CLEAN_FIXTURE = """\
import time

def solve(items, stats):
    start = time.perf_counter()
    seen = {1, 2}
    out = [x for x in sorted(seen)]
    stats["elapsed"] = time.perf_counter() - start
    return out
"""


def test_determinism_clean_fixture_has_no_findings():
    # Measuring wall time into a counter and iterating sorted(set) are
    # the sanctioned forms; neither may fire.
    assert (
        check_determinism(
            ast.parse(DETERMINISM_CLEAN_FIXTURE),
            "src/repro/kernels/fixture.py",
        )
        == []
    )


def test_deterministic_path_scoping():
    assert is_deterministic_path("src/repro/kernels/configs.py")
    assert is_deterministic_path("src/repro/engine/loop.py")
    # The churn kernel is a bit-identity module: auto-covered by the
    # kernels package scope.
    assert is_deterministic_path("src/repro/kernels/dynamic.py")
    assert not is_deterministic_path("src/repro/server/app.py")
    assert not is_deterministic_path("tests/test_engine.py")


def test_core_dynamic_opts_into_determinism_scope():
    # core/ is not a blanket-deterministic package, but the dynamic
    # maintainer carries the oracle for the vectorized churn backend —
    # it must stay marker-covered by the REP2xx rules.
    from pathlib import Path

    from repro.analysis import DETERMINISTIC_MARKER

    source = Path("src/repro/core/dynamic.py").read_text(encoding="utf-8")
    assert DETERMINISTIC_MARKER in source


# ---------------------------------------------------------------------------
# REP40x — hot-path / hygiene


HOTPATH_FIXTURE = """\
_UNTRACED_PREFIXES = ("/healthz",)
_UNTRACED_GET_PREFIXES = ("/v1/jobs",)

class App:
    def _build(self, router):
        router.add("GET", "/healthz", self._healthz)
        router.add("GET", "/v1/jobs", self._jobs)
        router.add("POST", "/v1/solve", self._solve)

    def _healthz(self, request):
        with span("healthz"):
            log.info("health checked")
        return None

    def _jobs(self, request):
        log.debug("status poll")
        return None

    def _solve(self, request):
        log.info("solving")
        return Response.json({"error": "bad"}, status=422)

    def _dispatch_inner(self, request):
        return Response.error(500, "boom")
"""


def test_hotpath_rules_fire_with_exact_lines():
    tree = ast.parse(HOTPATH_FIXTURE)
    findings = check_hotpath(tree, "fixture.py", HOTPATH_FIXTURE)
    assert rules_at(findings) == [
        ("REP401", 11),  # span() in the /healthz handler
        ("REP402", 12),  # log.info in the /healthz handler
        ("REP402", 16),  # log.debug in the status-poll GET handler
        ("REP405", 21),  # hand-built 422 outside the dispatch boundary
    ]
    # log.info in the traced _solve handler did NOT fire REP402, and
    # _dispatch_inner's Response.error is the exempt boundary.
    assert all(f.line not in (20, 24) for f in findings)


def test_bare_and_swallowed_except():
    source = """\
def risky(work):
    try:
        work()
    except:
        return None
    try:
        work()
    except ValueError:
        pass
"""
    findings = check_hotpath(ast.parse(source), "fixture.py", source)
    assert rules_at(findings) == [("REP403", 4), ("REP404", 8)]


def test_never_traced_marker_opts_in_plain_functions():
    source = """\
# lint: never-traced
def sweep(backends):
    log.info("sweeping")
"""
    findings = check_hotpath(ast.parse(source), "fixture.py", source)
    assert rules_at(findings) == [("REP402", 3)]


# ---------------------------------------------------------------------------
# suppressions


def test_suppression_same_line_and_line_above():
    source = """\
x = build()  # lint: setiter-ok(canonical order restored downstream)
# lint: unguarded-ok(benign racy read of a monotonic counter)
y = peek()
"""
    index = SuppressionIndex(source)
    assert index.lookup("REP203", 1) is not None
    assert index.lookup("REP204", 1) is None  # tag doesn't cover REP204
    assert index.lookup("REP101", 3) is not None  # comment line above
    assert index.lookup("REP102", 3) is not None
    assert index.malformed == []


def test_reasonless_suppression_is_reported_and_not_honoured():
    source = "x = build()  # lint: setiter-ok()\n"
    index = SuppressionIndex(source)
    assert index.lookup("REP203", 1) is None
    assert [f.rule for f in index.malformed] == ["REP001"]


def test_exact_rule_id_works_as_suppression_tag():
    source = "x = build()  # lint: REP203-ok(order is re-sorted below)\n"
    index = SuppressionIndex(source)
    assert index.lookup("REP203", 1) is not None
    assert index.lookup("REP201", 1) is None


# ---------------------------------------------------------------------------
# REP30x — registry consistency (seeded inconsistent view)


def test_registry_rules_on_seeded_inconsistencies(tmp_path):
    view = RegistryView(
        plannable={"sb": "sb", "ghost": "ghost-key"},
        engine_backed=frozenset({"sb", "lost"}),
        engine_configs=frozenset({"sb", "orphan"}),
        calibration=frozenset({"sb", "stale-key", "dynamic-vec"}),
        churn_cost_keys=frozenset({"dynamic-interp", "dynamic-vec"}),
        root=tmp_path,
    )
    findings = check_registry(view)
    assert sorted((f.rule, f.message.split("'")[1]) for f in findings) == [
        ("REP301", "dynamic-interp"),  # churn backend without a row
        ("REP301", "ghost"),      # plannable without a calibration row
        ("REP302", "lost"),       # engine-backed, no ENGINE_CONFIGS entry
        ("REP302", "orphan"),     # config entry no spec claims
        ("REP303", "ghost"),      # no forced-pick coverage (no test file)
        ("REP303", "sb"),
        ("REP305", "stale-key"),  # row with no spec nor churn backend
    ]


def test_registry_rules_accept_derived_forced_pick_list(tmp_path):
    test_dir = tmp_path / "tests"
    test_dir.mkdir()
    (test_dir / "test_planner_identity.py").write_text(
        "PLANNABLE = tuple(s.name for s in REGISTRY.plannable())\n"
    )
    view = RegistryView(
        plannable={"sb": "sb"},
        engine_backed=frozenset({"sb"}),
        engine_configs=frozenset({"sb"}),
        calibration=frozenset({"sb"}),
        root=tmp_path,
    )
    assert [f.rule for f in check_registry(view)] == []


def test_live_registry_is_consistent():
    assert check_registry(RegistryView.live(REPO_ROOT)) == []


# ---------------------------------------------------------------------------
# baseline round-trip


def test_baseline_round_trip_accepts_then_goes_stale(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(LOCK_FIXTURE)
    baseline_path = tmp_path / "baseline.json"

    first = run_lint([bad], root=tmp_path, registry_checks=False)
    assert [f.rule for f in first.new] == ["REP101", "REP102", "REP102"]

    Baseline().save(baseline_path, first.new)
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 1
    assert all(
        e["justification"] == "TODO: justify or fix"
        for e in payload["findings"]
    )

    second = run_lint(
        [bad],
        root=tmp_path,
        baseline=Baseline.load(baseline_path),
        registry_checks=False,
    )
    assert second.new == []
    assert len(second.accepted) == 3
    assert second.exit_code == 0

    # Fix one violation: its baseline entry is now stale, nothing new.
    bad.write_text(LOCK_FIXTURE.replace(
        "    def reset(self):\n        self.total = 0\n", ""
    ))
    third = run_lint(
        [bad],
        root=tmp_path,
        baseline=Baseline.load(baseline_path),
        registry_checks=False,
    )
    assert third.new == []
    assert len(third.accepted) == 2
    assert len(third.stale_baseline) == 1
    assert third.stale_baseline[0]["rule"] == "REP102"


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(LOCK_FIXTURE)
    first = run_lint([bad], root=tmp_path, registry_checks=False)

    bad.write_text("# a new leading comment\n\n" + LOCK_FIXTURE)
    drifted = run_lint([bad], root=tmp_path, registry_checks=False)
    assert [f.fingerprint for f in first.new] == [
        f.fingerprint for f in drifted.new
    ]
    assert [f.line for f in drifted.new] == [f.line + 2 for f in first.new]


def test_suppressions_remove_findings_in_the_pipeline(tmp_path):
    suppressed = LOCK_FIXTURE.replace(
        "        return self.total",
        "        # lint: unguarded-ok(benign racy read for a gauge)\n"
        "        return self.total",
    )
    bad = tmp_path / "bad.py"
    bad.write_text(suppressed)
    result = run_lint([bad], root=tmp_path, registry_checks=False)
    assert [f.rule for f in result.new] == ["REP102", "REP102"]
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# CLI


def test_cli_exit_codes_and_json(tmp_path, capsys):
    pkg = tmp_path / "src"
    pkg.mkdir()
    bad = pkg / "bad.py"
    bad.write_text(LOCK_FIXTURE)

    code = lint_main(
        ["--root", str(tmp_path), "--json", "--no-baseline", str(bad)]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["new"] == 3
    assert {f["rule"] for f in payload["findings"]} == {"REP101", "REP102"}
    assert all("fingerprint" in f for f in payload["findings"])

    code = lint_main(["--root", str(tmp_path), "--write-baseline", str(bad)])
    assert code == 0
    capsys.readouterr()
    code = lint_main(
        ["--root", str(tmp_path), "--fail-on-new", str(bad)]
    )
    assert code == 0
    assert "3 accepted" in capsys.readouterr().out

    assert lint_main(["--root", str(tmp_path), str(tmp_path / "nope")]) == 2


def test_cli_rules_filter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(LOCK_FIXTURE)
    code = lint_main(
        [
            "--root", str(tmp_path), "--no-baseline",
            "--rules", "REP101", "--json", str(bad),
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload["findings"]] == ["REP101"]


# ---------------------------------------------------------------------------
# the repo's own contract (what CI's lint-invariants job enforces)


def test_repo_is_clean_against_checked_in_baseline():
    result = run_lint(
        [REPO_ROOT / "src" / "repro"],
        root=REPO_ROOT,
        baseline=Baseline.load(REPO_ROOT / "repro-lint.baseline.json"),
    )
    assert result.new == [], "\n".join(f.render() for f in result.new)
    assert result.stale_baseline == []
    # Every accepted finding carries a written justification.
    assert all(
        f.justification and "TODO" not in f.justification
        for f in result.accepted
    )


def test_analysis_package_self_check():
    result = run_lint(
        [REPO_ROOT / "src" / "repro" / "analysis"],
        root=REPO_ROOT,
        registry_checks=False,
    )
    assert result.new == [], "\n".join(f.render() for f in result.new)
