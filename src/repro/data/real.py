"""Synthetic substitutes for the paper's real datasets.

The paper evaluates on two real datasets we cannot redistribute:

- **Zillow** — 2M real-estate records with 5 attributes (bathrooms,
  bedrooms, living area, price, lot area).  The paper's observation is
  that Zillow is *highly skewed* and cross-correlated ("a high quality
  apartment is usually expensive"), which hurts the top-1-search-based
  competitors but not SB.
- **NBA** — 12,278 player seasons with 5 counting stats (points,
  rebounds, assists, steals, blocks), positively correlated through
  player skill.

``zillow_like`` and ``nba_like`` generate datasets with the same
dimensionality, scale characteristics, skew and correlation structure
(the substitution rationale is documented below).  All attributes are
min-max normalized to [0, 1] with larger-is-better orientation (price
is negated: cheaper listings score higher, making size-vs-price
anti-correlated exactly as the paper describes).
"""

from __future__ import annotations

import numpy as np

from repro.data.instances import ObjectSet


def _minmax(col: np.ndarray) -> np.ndarray:
    lo, hi = col.min(), col.max()
    if hi == lo:
        return np.zeros_like(col)
    return (col - lo) / (hi - lo)


def zillow_like(n: int, seed=None) -> ObjectSet:
    """Skewed, correlated 5-attribute housing data.

    Latent ``size`` drives bedrooms/bathrooms/living-area/lot-area
    (lognormal tails, discretized counts) and price grows superlinearly
    with size plus lognormal noise.  Price enters negated so that all
    five dimensions are larger-is-better.
    """
    rng = np.random.default_rng(seed)
    size = rng.lognormal(mean=0.0, sigma=0.45, size=n)  # latent house size

    bedrooms = np.clip(np.round(1 + 2.2 * size + rng.normal(0, 0.7, n)), 1, 12)
    bathrooms = np.clip(np.round(0.5 + 1.6 * size + rng.normal(0, 0.6, n)), 1, 9)
    living_area = 600.0 * size * rng.lognormal(0.0, 0.25, n)  # sq ft
    lot_area = 2000.0 * size * rng.lognormal(0.0, 0.9, n)  # heavy tail
    price = 120_000.0 * size**1.3 * rng.lognormal(0.0, 0.35, n)

    cols = np.stack(
        [
            _minmax(bedrooms),
            _minmax(bathrooms),
            _minmax(np.log1p(living_area)),
            _minmax(-np.log1p(price)),  # cheaper is better
            _minmax(np.log1p(lot_area)),
        ],
        axis=1,
    )
    return ObjectSet([tuple(row) for row in cols])


def nba_like(n: int = 12278, seed=None) -> ObjectSet:
    """Positively correlated 5-attribute player stats.

    A Gamma-distributed latent skill scales per-stat Poisson rates
    (points, rebounds, assists, steals, blocks), reproducing the
    NBA set's discrete, skewed, positively correlated profile.
    """
    rng = np.random.default_rng(seed)
    skill = rng.gamma(shape=2.0, scale=1.0, size=n)
    # League-average per-game rates for the five stats.
    base_rates = np.array([10.0, 4.5, 2.5, 0.8, 0.5])
    # Mild per-player role variation decorrelates stats a little
    # (guards assist, centers block), as in the real data.
    role = rng.dirichlet(np.ones(5) * 8.0, size=n) * 5.0
    rates = skill[:, None] * base_rates[None, :] * role
    stats = rng.poisson(rates).astype(float)
    cols = np.stack([_minmax(stats[:, j]) for j in range(5)], axis=1)
    return ObjectSet([tuple(row) for row in cols])
