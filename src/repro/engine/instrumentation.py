"""The single instrumentation layer shared by every engine run.

Before the refactor each solver carried its own copy of the metric
wiring — ``time.perf_counter`` bracketing, an ``IOStats`` snapshot of
the object index, a :class:`MemoryTracker` for peak search memory and
a hand-built :class:`RunStats`.  ``Instrumentation`` owns all of it:
snapshot on construction, one :meth:`finish` call to assemble the
paper's three metrics (page reads, CPU seconds, peak memory) plus the
loop count.  Strategy-specific counters and I/O adjustments (paged
function lists, disk function trees) are layered on afterwards via
each strategy's ``finalize`` hook.
"""

from __future__ import annotations

import time

from repro.core.index import ObjectIndex
from repro.core.types import RunStats
from repro.storage.stats import MemoryTracker


def fold_auxiliary_io(stats: RunStats, aux, reads_counter: str) -> None:
    """Fold an auxiliary storage layer's page traffic into the run's
    reported I/O (the Section 7.6 accounting shared by paged function
    lists, the batch TA sweep and Chain's disk function tree): record
    the auxiliary physical reads under ``reads_counter``, snapshot the
    object-tree-only count as ``object_reads`` *before* folding, then
    add the auxiliary traffic to the totals.  The snapshot-before-fold
    order is what keeps ``object_reads + <reads_counter> ==
    io_accesses``."""
    stats.counters[reads_counter] = aux.physical_reads
    stats.counters["object_reads"] = stats.io.physical_reads
    stats.io.physical_reads += aux.physical_reads
    stats.io.logical_reads += aux.logical_reads


class Instrumentation:
    """Timer + I/O snapshot + memory tracker for one solver run."""

    def __init__(self, index: ObjectIndex):
        self._index = index
        self._start = time.perf_counter()
        self._io_before = index.stats.snapshot()
        self.mem = MemoryTracker()
        self.phases: dict[str, float] = {}

    def phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time against a round-loop phase
        (``skyline_initial`` / ``search`` / ``commit`` /
        ``skyline_repair``).  Phases feed span trees, not counters —
        counters stay bit-identical across executors."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def finish(self, loops: int) -> RunStats:
        """Assemble the run's :class:`RunStats` (object-index I/O only;
        strategies add auxiliary traffic in their ``finalize``)."""
        return RunStats(
            io=self._index.stats.delta_since(self._io_before),
            cpu_seconds=time.perf_counter() - self._start,
            peak_memory_bytes=self.mem.peak_bytes,
            loops=loops,
            phases=dict(self.phases),
        )
