"""Divide-and-Conquer skyline [Börzsönyi et al., ICDE 2001].

Recursively splits the input at the median of a rotating dimension,
computes the two partial skylines, and merges them by filtering the
"worse" half against the "better" half.  Points with larger values in
the split dimension can never be dominated by points with strictly
smaller values there, so the better half's skyline is final.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.rtree.geometry import dominates
from repro.skyline.reference import naive_skyline

Point = tuple[float, ...]

_BASE_CASE = 16


def dc_skyline(items: Sequence[tuple[int, Point]]) -> dict[int, Point]:
    """Skyline of ``(id, point)`` pairs via divide & conquer."""
    if not items:
        return {}
    dims = len(items[0][1])
    return _recurse(list(items), 0, dims)


def _recurse(items: list[tuple[int, Point]], depth: int, dims: int) -> dict[int, Point]:
    if len(items) <= _BASE_CASE:
        return naive_skyline(items)

    dim = depth % dims
    items.sort(key=lambda it: it[1][dim])
    mid = len(items) // 2
    median = items[mid][1][dim]
    low = [it for it in items if it[1][dim] < median]
    high = [it for it in items if it[1][dim] >= median]
    if not low:
        # Degenerate split (median ties dominate the range): fall back.
        return naive_skyline(items)

    sky_high = _recurse(high, depth + 1, dims)
    sky_low = _recurse(low, depth + 1, dims)

    merged = dict(sky_high)
    high_points = list(sky_high.values())
    for oid, p in sky_low.items():
        if not any(dominates(q, p) for q in high_points):
            merged[oid] = p
    return merged
