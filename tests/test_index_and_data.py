"""Object index plumbing and the data generators."""

import numpy as np
import pytest

from repro.core.index import build_object_index
from repro.data.generators import (
    anti_correlated_points,
    clustered_weights,
    correlated_points,
    independent_points,
    make_functions,
    make_objects,
    random_capacities,
    random_priorities,
    uniform_weights,
)
from repro.data.instances import FunctionSet, ObjectSet
from repro.data.real import nba_like, zillow_like


class TestObjectIndex:
    def test_build_and_reset(self):
        os_ = make_objects(500, 3, "independent", seed=1)
        idx = build_object_index(os_, page_size=512, buffer_fraction=0.05)
        assert idx.dims == 3
        assert idx.stats.physical_reads == 0  # reset after build
        assert idx.tree.size == 500
        store = idx.tree.store
        assert store.buffer.capacity == int(store.num_pages * 0.05)

    def test_memory_backend(self):
        os_ = make_objects(100, 2, "independent", seed=2)
        idx = build_object_index(os_, memory=True)
        assert idx.is_memory
        assert sorted(idx.tree.iter_items()) == sorted(os_.items())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_object_index(ObjectSet([]))

    def test_reset_for_run_clears_buffer(self):
        os_ = make_objects(400, 2, "independent", seed=3)
        idx = build_object_index(os_, page_size=512, buffer_fraction=1.0)
        list(idx.tree.iter_items())  # warm the buffer
        idx.reset_for_run()
        assert idx.stats.physical_reads == 0
        list(idx.tree.iter_items())
        # Cold buffer: first pass is all physical reads.
        assert idx.stats.physical_reads == idx.tree.store.num_pages


class TestGenerators:
    def test_shapes_and_range(self):
        for gen in (independent_points, correlated_points, anti_correlated_points):
            pts = gen(500, 4, seed=1)
            assert pts.shape == (500, 4)
            assert (pts >= 0).all() and (pts <= 1).all()

    def test_determinism(self):
        a = anti_correlated_points(100, 3, seed=42)
        b = anti_correlated_points(100, 3, seed=42)
        assert (a == b).all()

    def test_correlation_signs(self):
        ind = independent_points(4000, 2, seed=5)
        cor = correlated_points(4000, 2, seed=5)
        anti = anti_correlated_points(4000, 2, seed=5)
        r_ind = np.corrcoef(ind[:, 0], ind[:, 1])[0, 1]
        r_cor = np.corrcoef(cor[:, 0], cor[:, 1])[0, 1]
        r_anti = np.corrcoef(anti[:, 0], anti[:, 1])[0, 1]
        assert abs(r_ind) < 0.1
        assert r_cor > 0.5
        assert r_anti < -0.5

    def test_anti_correlated_skyline_is_largest(self):
        """The benchmark folklore the paper relies on: anti-correlated
        data has a much larger skyline than correlated data."""
        from repro.skyline import naive_skyline

        sizes = {}
        for name in ("correlated", "anti-correlated"):
            os_ = make_objects(800, 3, name, seed=6)
            sizes[name] = len(naive_skyline(os_.items()))
        assert sizes["anti-correlated"] > 3 * sizes["correlated"]

    def test_weights_normalized(self):
        w = uniform_weights(200, 5, seed=7)
        assert np.allclose(w.sum(axis=1), 1.0)
        cw = clustered_weights(200, 5, 3, seed=8)
        assert np.allclose(cw.sum(axis=1), 1.0)
        assert (cw >= 0).all()

    def test_clustered_weights_cluster(self):
        """With one cluster the weight variance shrinks vs uniform."""
        uni = uniform_weights(500, 4, seed=9)
        clu = clustered_weights(500, 4, 1, seed=9)
        assert clu.var(axis=0).mean() < uni.var(axis=0).mean()

    def test_make_objects_unknown_distribution(self):
        with pytest.raises(ValueError):
            make_objects(10, 2, "weird")

    def test_make_functions_with_everything(self):
        fs = make_functions(
            20, 3, seed=10, n_clusters=2,
            gammas=random_priorities(20, 4, seed=1),
            capacities=random_capacities(20, 3, seed=2, fixed=False),
        )
        assert len(fs) == 20
        assert fs.max_gamma <= 4
        assert all(1 <= fs.capacity(i) <= 3 for i in range(20))

    def test_random_capacities_fixed(self):
        assert random_capacities(5, 4) == [4] * 5

    def test_priority_bounds(self):
        gs = random_priorities(100, 8, seed=3)
        assert all(1 <= g <= 8 for g in gs)
        with pytest.raises(ValueError):
            random_priorities(5, 0)


class TestRealDataSubstitutes:
    def test_zillow_like_profile(self):
        os_ = zillow_like(3000, seed=1)
        assert os_.dims == 5
        pts = np.array(os_.points)
        assert (pts >= 0).all() and (pts <= 1).all()
        # Size attributes correlate positively...
        assert np.corrcoef(pts[:, 0], pts[:, 2])[0, 1] > 0.3
        # ...and price-value (negated price) anti-correlates with size.
        assert np.corrcoef(pts[:, 2], pts[:, 3])[0, 1] < -0.3

    def test_nba_like_profile(self):
        os_ = nba_like(2000, seed=2)
        assert os_.dims == 5
        pts = np.array(os_.points)
        # Stats positively correlated through latent skill, and skewed
        # (mean well below the max of the normalized range).
        assert np.corrcoef(pts[:, 0], pts[:, 1])[0, 1] > 0.3
        assert pts.mean() < 0.35


class TestInstanceValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            FunctionSet([(0.5, 0.6)])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            FunctionSet([(-0.2, 1.2)])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ObjectSet([(0.5, 0.5), (0.5,)])
        with pytest.raises(ValueError):
            FunctionSet([(1.0,), (0.5, 0.5)])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ObjectSet([(0.5,)], capacities=[0])
        with pytest.raises(ValueError):
            FunctionSet([(1.0,)], capacities=[1, 2])

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            FunctionSet([(1.0,)], gammas=[0.0])

    def test_effective_weights(self):
        fs = FunctionSet([(0.25, 0.75)], gammas=[2.0])
        assert fs.effective_weights(0) == (0.5, 1.5)
        assert fs.gamma(0) == 2.0
        assert fs.max_gamma == 2.0

    def test_totals(self):
        fs = FunctionSet([(1.0,), (1.0,)], capacities=[2, 3])
        assert fs.total_capacity == 5
        os_ = ObjectSet([(0.1,)])
        assert os_.total_capacity == 1
