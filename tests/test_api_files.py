"""Problem/Solution file round trips and the content-address helpers."""

import pytest

from repro.api import AssignmentSession, Problem, SerdeError, Solution, canonical_digest


def make_problem(method="sb", **options):
    return (
        Problem.builder()
        .add_objects([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
        .add_functions(
            [(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)],
            priorities=[2.0, 1.0, 1.0],
            capacities=[1, 2, 1],
        )
        .solver(method, **options)
        .build()
    )


def test_problem_file_round_trip(tmp_path):
    problem = make_problem()
    path = problem.to_file(tmp_path / "problem.json")
    assert path.read_text().endswith("\n")
    assert Problem.from_file(path) == problem
    assert Problem.from_file(str(path)).digest() == problem.digest()


def test_solution_file_round_trip(tmp_path):
    problem = make_problem()
    with AssignmentSession(problem) as session:
        solution = session.solve()
    path = solution.to_file(tmp_path / "solution.json")
    loaded = Solution.from_file(path)
    assert loaded == solution
    assert loaded.to_dict() == solution.to_dict()  # stats round-trip too


def test_from_file_missing_path_raises_serde_error(tmp_path):
    with pytest.raises(SerdeError):
        Problem.from_file(tmp_path / "nope.json")
    with pytest.raises(SerdeError):
        Solution.from_file(tmp_path / "nope.json")


def test_from_file_rejects_wrong_schema(tmp_path):
    problem = make_problem()
    path = problem.to_file(tmp_path / "p.json")
    with pytest.raises(SerdeError):
        Solution.from_file(path)  # a problem payload is not a solution


def test_digest_is_content_addressed():
    assert make_problem().digest() == make_problem().digest()
    assert make_problem().digest() != make_problem("chain").digest()
    # digest memoization survives repeated calls
    p = make_problem()
    assert p.digest() is p.digest()


def test_instance_digest_ignores_solver_selection():
    base = make_problem()
    assert base.instance_digest() == make_problem("chain").instance_digest()
    assert (
        base.with_method("sb", omega_fraction=0.1).instance_digest()
        == base.instance_digest()
    )
    other = base.with_objects([(0.1, 0.1), (0.9, 0.9), (0.3, 0.8)])
    assert other.instance_digest() != base.instance_digest()


def test_solve_key_separates_method_and_options():
    base = make_problem()
    same = make_problem()
    assert base.solve_key() == same.solve_key()
    assert base.solve_key() != base.with_method("chain").solve_key()
    assert base.solve_key() != base.with_options(omega_fraction=0.1).solve_key()


def test_canonical_digest_is_order_insensitive():
    assert canonical_digest({"a": 1, "b": 2}) == canonical_digest({"b": 2, "a": 1})
    assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})
