"""Tests of the :mod:`repro.obs` observability stack.

Unit tests cover the pure pieces (trace context parsing, span-tree
assembly, the log ring's bounds, Prometheus escaping/rendering); the
end-to-end tests boot a real embedded server and assert the wire
contract: ``X-Repro-Trace`` echoed on every traced response, error
envelopes carrying ``trace_id``, ``/v1/traces`` + ``/v1/logs``
queryable, ``/metrics`` content-negotiating the Prometheus text
format, and ``repro-admin`` driving all of it over HTTP.
"""

import http.client
import json
import logging
import socket

import pytest

from repro.api import Problem
from repro.errors import ServerError
from repro.obs import admin
from repro.obs.log import LogRing, RingHandler, get_logger, record_to_dict
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
)
from repro.obs.store import TraceStore, assemble_tree, render_tree
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    SpanCollector,
    TraceContext,
    collecting,
    current_context,
    new_span_id,
    new_trace_id,
    span,
)
from repro.server import Client, ServerConfig, serve_in_thread

from .conftest import random_instance


def make_problem(nf=5, no=24, dims=3, seed=11, method="sb", **options):
    functions, objects = random_instance(nf, no, dims, seed=seed)
    return Problem.from_sets(objects, functions, method=method, options=options)


# ---------------------------------------------------------------------------
# trace context / spans


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext(new_trace_id(), new_span_id())
        parsed = TraceContext.parse(context.header())
        assert parsed == context

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            "abc:def",
            "g" * 32 + ":" + "0" * 16,  # non-hex
            "0" * 32 + ":" + "0" * 15,  # short span id
            ("a" * 32 + ":" + "b" * 16).upper(),  # wrong case
        ],
    )
    def test_malformed_headers_parse_to_none(self, value):
        assert TraceContext.parse(value) is None

    def test_parse_tolerates_surrounding_whitespace(self):
        context = TraceContext(new_trace_id(), new_span_id())
        assert TraceContext.parse(f"  {context.header()} ") == context


class TestSpans:
    def test_nested_spans_share_trace_and_parent_correctly(self):
        collector = SpanCollector()
        with collecting(collector):
            with span("outer") as outer:
                with span("inner") as inner:
                    assert current_context().span_id == inner.span_id
        assert current_context() is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner finishes (and publishes) first.
        assert [s.name for s in collector.spans] == ["inner", "outer"]
        assert all(s.duration_seconds >= 0 for s in collector.spans)

    def test_exceptions_mark_the_span_errored_and_reraise(self):
        collector = SpanCollector()
        with pytest.raises(ValueError, match="boom"):
            with collecting(collector):
                with span("doomed"):
                    raise ValueError("boom")
        (failed,) = collector.spans
        assert failed.status == "error"
        assert "ValueError: boom" in failed.error

    def test_without_a_collector_nothing_is_retained(self):
        with span("unobserved") as s:
            assert current_context().trace_id == s.trace_id
        assert current_context() is None

    def test_wire_parent_adopts_the_callers_trace(self):
        parent = TraceContext(new_trace_id(), new_span_id())
        collector = SpanCollector()
        with collecting(collector, parent=parent):
            with span("server.request") as root:
                pass
        assert root.trace_id == parent.trace_id
        assert root.parent_id == parent.span_id


class TestTreeAssembly:
    def _span(self, name, span_id, parent_id, started, **attributes):
        return {
            "trace_id": "t" * 32,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "started": started,
            "duration_seconds": 0.01,
            "status": "ok",
            "node": None,
            **({"attributes": attributes} if attributes else {}),
        }

    def test_absent_parents_become_roots(self):
        # The root's parent is the client's span — never in the list.
        spans = [
            self._span("server.request", "a" * 16, "f" * 16, 1.0),
            self._span("solve.execute", "b" * 16, "a" * 16, 2.0),
        ]
        roots = assemble_tree(spans)
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "server.request"
        assert roots[0]["children"][0]["span"]["name"] == "solve.execute"

    def test_children_sorted_by_start_with_derived_last(self):
        spans = [
            self._span("root", "a" * 16, None, 0.0),
            self._span("engine.search", "d" * 16, "a" * 16, 0.0, derived=True),
            self._span("late", "c" * 16, "a" * 16, 5.0),
            self._span("early", "b" * 16, "a" * 16, 1.0),
        ]
        (root,) = assemble_tree(spans)
        names = [child["span"]["name"] for child in root["children"]]
        assert names == ["early", "late", "engine.search"]

    def test_render_tree_header_flags_and_transcript(self):
        record = {
            "trace_id": "ab" * 16,
            "status": "ok",
            "duration_seconds": 0.5,
            "slow": True,
            "stitched": True,
            "nodes": ["127.0.0.1:1", "127.0.0.1:2"],
            "spans": [self._span("gateway.request", "a" * 16, None, 0.0)],
            "plan_explain": "candidates:\n  sb: 1.0",
        }
        text = render_tree(record)
        assert "ab" * 16 in text
        assert "[slow]" in text
        assert "stitched: 127.0.0.1:1, 127.0.0.1:2" in text
        assert "gateway.request" in text
        assert "planner transcript:" in text
        assert "sb: 1.0" in text


class TestTraceStore:
    def _root(self, duration=0.01):
        return Span(
            trace_id=new_trace_id(),
            span_id=new_span_id(),
            parent_id=None,
            name="server.request",
            started=1.0,
            duration_seconds=duration,
        )

    def test_slow_requests_are_pinned_past_recent_churn(self):
        store = TraceStore(recent_size=2, slow_size=4, slow_threshold_seconds=0.1)
        slow_root = self._root(duration=0.5)
        store.record(slow_root, [], node="n1")
        for _ in range(3):  # churn the recent ring
            store.record(self._root(duration=0.0), [])
        record = store.get(slow_root.trace_id)
        assert record is not None
        assert record["slow"] is True
        info = store.info()
        assert info["recorded_total"] == 4
        assert info["slow_total"] == 1
        assert info["recent_entries"] == 2

    def test_recent_lists_newest_first_summaries(self):
        store = TraceStore(slow_threshold_seconds=10.0)
        first, second = self._root(), self._root()
        store.record(first, [], node="n1")
        store.record(second, [])
        listing = store.recent()
        assert [r["trace_id"] for r in listing] == [
            second.trace_id,
            first.trace_id,
        ]
        assert listing[0]["spans"] == 1
        assert listing[0]["slow"] is False

    def test_record_stamps_node_and_keeps_extra(self):
        store = TraceStore()
        root = self._root()
        child = Span(
            trace_id=root.trace_id,
            span_id=new_span_id(),
            parent_id=root.span_id,
            name="solve.execute",
            started=1.0,
            duration_seconds=0.001,
        )
        record = store.record(
            root, [child], node="127.0.0.1:99", extra={"plan_explain": "why"}
        )
        assert all(s["node"] == "127.0.0.1:99" for s in record["spans"])
        assert record["plan_explain"] == "why"
        assert len(record["spans"]) == 2  # root deduped into the list


# ---------------------------------------------------------------------------
# structured logging


class TestLogRing:
    def test_capacity_bound_and_dropped_accounting(self):
        ring = LogRing(capacity=4)
        for i in range(10):
            ring.append({"level": "INFO", "message": f"m{i}"})
        assert len(ring) == 4
        assert [r["message"] for r in ring.tail()] == ["m6", "m7", "m8", "m9"]
        info = ring.info()
        assert info == {"capacity": 4, "entries": 4, "total": 10, "dropped": 6}

    def test_tail_filters_by_minimum_severity(self):
        ring = LogRing(capacity=8)
        for level in ("DEBUG", "INFO", "WARNING", "ERROR"):
            ring.append({"level": level, "message": level.lower()})
        assert [r["level"] for r in ring.tail(level="warning")] == [
            "WARNING",
            "ERROR",
        ]
        assert len(ring.tail(limit=2)) == 2

    def test_tail_zero_limit_returns_nothing(self):
        # regression: records[-0:] is records[:], so tail(0) used to
        # return the whole ring instead of an empty slice
        ring = LogRing(capacity=4)
        for i in range(3):
            ring.append({"level": "INFO", "message": f"m{i}"})
        assert ring.tail(limit=0) == []
        assert ring.tail(limit=0, level="info") == []
        assert len(ring.tail(limit=-1)) == 3  # negative = unbounded

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LogRing(capacity=0)


class TestStructuredLogging:
    @pytest.fixture()
    def captured(self):
        """A private logger wired to a fresh ring."""
        ring = LogRing(capacity=16)
        handler = RingHandler(ring, node="test-node")
        logger = logging.getLogger("repro.test_obs_logging")
        logger.setLevel(logging.DEBUG)
        logger.propagate = False
        logger.addHandler(handler)
        try:
            yield get_logger("repro.test_obs_logging"), ring
        finally:
            logger.removeHandler(handler)

    def test_keyword_fields_ride_on_the_record(self, captured):
        log, ring = captured
        log.warning("backend marked down", backend="127.0.0.1:1", reason="boom")
        (entry,) = ring.tail()
        assert entry["level"] == "WARNING"
        assert entry["message"] == "backend marked down"
        assert entry["backend"] == "127.0.0.1:1"
        assert entry["reason"] == "boom"
        assert entry["node"] == "test-node"

    def test_records_inside_a_span_carry_the_trace_id(self, captured):
        log, ring = captured
        with collecting(SpanCollector()):
            with span("traced-block") as s:
                log.info("inside")
        (entry,) = ring.tail()
        assert entry["trace_id"] == s.trace_id
        assert entry["span_id"] == s.span_id

    def test_exception_records_include_the_traceback(self, captured):
        log, ring = captured
        try:
            raise RuntimeError("kaput")
        except RuntimeError:
            log.exception("job failed", job_id="j1")
        (entry,) = ring.tail()
        assert "RuntimeError: kaput" in entry["exception"]
        assert entry["job_id"] == "j1"

    def test_record_to_dict_survives_plain_stdlib_records(self):
        record = logging.LogRecord(
            "other", logging.INFO, __file__, 1, "plain %s", ("msg",), None
        )
        out = record_to_dict(record)
        assert out["message"] == "plain msg"
        assert out["logger"] == "other"


# ---------------------------------------------------------------------------
# Prometheus exposition


class TestPrometheus:
    def test_label_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_gauges_and_labelled_histograms(self):
        snapshot = {
            "queue": {"depth": 3, "limit": 64},
            "uptime_seconds": 1.5,
            "latency": {
                "sb": {
                    "buckets": {"0.01": 2, "0.1": 1, "+inf": 1},
                    "count": 4,
                    "sum_seconds": 0.25,
                    "p50_seconds": 0.01,
                }
            },
            "http": {"responses_by_status": {"200": 7}},
            "label": "ignored-string",
        }
        text = render_prometheus(snapshot)
        assert "repro_queue_depth 3" in text
        assert "repro_uptime_seconds 1.5" in text
        # Per-bucket counts become cumulative ``le`` counts.
        assert 'repro_latency_bucket{method="sb",le="0.01"} 2' in text
        assert 'repro_latency_bucket{method="sb",le="0.1"} 3' in text
        assert 'repro_latency_bucket{method="sb",le="+Inf"} 4' in text
        assert 'repro_latency_count{method="sb"} 4' in text
        assert 'repro_latency_sum{method="sb"} 0.25' in text
        assert 'repro_latency_p50_seconds{method="sb"} 0.01' in text
        assert 'repro_http_responses_by_status{status="200"} 7' in text
        assert "ignored-string" not in text

    def test_booleans_render_as_zero_one(self):
        text = render_prometheus({"backends": {"127.0.0.1:1": {"alive": True}}})
        assert 'repro_backends_alive{backend="127.0.0.1:1"} 1' in text


# ---------------------------------------------------------------------------
# end-to-end over a real embedded server


@pytest.fixture(scope="module")
def obs_server():
    handle = serve_in_thread(
        ServerConfig(port=0, slow_trace_threshold_seconds=0.0)
    )
    try:
        yield handle
    finally:
        handle.close()


@pytest.fixture()
def obs_client(obs_server):
    with Client(obs_server.base_url) as client:
        yield client


def _raw_get(handle, path, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10.0)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


class TestServerObservability:
    def test_responses_echo_the_trace_header(self, obs_server, obs_client):
        solution = obs_client.solve(make_problem(seed=101))
        assert solution.verify()
        trace_id = obs_client.last_trace_id
        assert trace_id is not None and len(trace_id) == 32

    def test_trace_endpoint_returns_the_full_span_tree(
        self, obs_server, obs_client
    ):
        obs_client.solve(make_problem(seed=102))
        record = obs_client.request(
            "GET", f"/v1/traces/{obs_client.last_trace_id}"
        )[1]
        names = {s["name"] for s in record["spans"]}
        assert {"server.request", "solve.execute"} <= names
        # The fresh solve ran the engine: its span plus derived phases.
        assert "engine.solve" in names
        assert any(name.startswith("engine.s") for name in names - {"engine.solve"})
        assert {s["trace_id"] for s in record["spans"]} == {record["trace_id"]}
        (root,) = assemble_tree(record["spans"])
        assert root["span"]["name"] == "server.request"
        engine = [s for s in record["spans"] if s["name"] == "engine.solve"]
        assert engine[0]["attributes"]["loops"] >= 1

    def test_auto_solves_retain_the_planner_transcript(
        self, obs_server, obs_client
    ):
        obs_client.solve(make_problem(seed=103, method="auto"))
        record = obs_client.request(
            "GET", f"/v1/traces/{obs_client.last_trace_id}"
        )[1]
        assert record["slow"] is True  # threshold 0 pins everything
        assert "plan_explain" in record
        rendered = render_tree(record)
        assert "planner transcript:" in rendered

    def test_trace_listing_is_queryable(self, obs_server, obs_client):
        obs_client.solve(make_problem(seed=104))
        listing = obs_client.request("GET", "/v1/traces")[1]
        assert listing["info"]["recorded_total"] >= 1
        newest = listing["traces"][0]
        assert newest["trace_id"] == obs_client.last_trace_id

    def test_error_envelopes_carry_the_trace_id(self, obs_server, obs_client):
        with pytest.raises(ServerError) as excinfo:
            obs_client.request("GET", "/v1/problems/no-such-problem")
        error = excinfo.value
        assert error.status == 404
        assert error.trace_id is not None
        assert error.payload["trace_id"] == error.trace_id
        assert f"[trace {error.trace_id}]" in str(error)

    def test_operational_events_land_in_the_ring(self, obs_server, obs_client):
        problem_id = obs_client.register(make_problem(seed=107))
        obs_client.solve(problem_id)
        body = obs_client.request("GET", "/v1/logs?limit=512")[1]
        messages = {e["message"] for e in body["entries"]}
        assert "server started" in messages
        assert "problem registered" in messages
        # Threshold 0.0 marks every request slow, so the slow-request
        # warning must fire and carry a resolvable trace id.
        slow = [e for e in body["entries"] if e["message"] == "slow request"]
        assert slow, messages
        record = obs_client.request(
            "GET", f"/v1/traces/{slow[-1]['trace_id']}"
        )[1]
        assert record["slow"] is True

    def test_log_ring_is_tailable_over_http(self, obs_server, obs_client):
        get_logger("repro.server").warning("obs test entry", probe=1)
        body = obs_client.request("GET", "/v1/logs?level=WARNING&limit=50")[1]
        entries = [
            e for e in body["entries"] if e["message"] == "obs test entry"
        ]
        assert entries, body
        assert entries[-1]["probe"] == 1
        assert entries[-1]["node"] == f"127.0.0.1:{obs_server.port}"
        assert body["ring"]["capacity"] == 512

    def test_metrics_content_negotiation(self, obs_server, obs_client):
        snapshot = obs_client.metrics()  # JSON stays the default
        assert "traces" in snapshot and "log_ring" in snapshot
        status, headers, body = _raw_get(
            obs_server, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "repro_queue_depth" in text
        assert "repro_http_requests_total" in text
        status, headers, _ = _raw_get(obs_server, "/metrics?format=prometheus")
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE

    def test_infrastructure_paths_are_not_traced(self, obs_server):
        status, headers, _ = _raw_get(obs_server, "/healthz")
        assert status == 200
        assert TRACE_HEADER not in headers

    def test_observability_off_disables_tracing(self):
        handle = serve_in_thread(ServerConfig(port=0, observability=False))
        try:
            with Client(handle.base_url) as client:
                client.solve(make_problem(seed=105))
                assert client.last_trace_id is None
                listing = client.request("GET", "/v1/traces")[1]
                assert listing["traces"] == []
        finally:
            handle.close()


# ---------------------------------------------------------------------------
# repro-admin


class TestAdminConsole:
    def test_status_renders_a_server_summary(self, obs_server, capsys):
        assert admin.main(["--url", obs_server.base_url, "status"]) == 0
        out = capsys.readouterr().out
        assert f"repro-server @ {obs_server.base_url}" in out
        assert "solves" in out
        assert "traces:" in out

    def test_trace_last_renders_a_span_tree(
        self, obs_server, obs_client, capsys
    ):
        obs_client.solve(make_problem(seed=106))
        assert (
            admin.main(["--url", obs_server.base_url, "trace", "--last"]) == 0
        )
        out = capsys.readouterr().out
        assert "server.request" in out
        assert "ms" in out

    def test_trace_json_dumps_the_record(self, obs_server, obs_client, capsys):
        obs_client.solve(make_problem(seed=107))
        trace_id = obs_client.last_trace_id
        code = admin.main(
            ["--url", obs_server.base_url, "trace", trace_id, "--json"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["trace_id"] == trace_id

    def test_unknown_trace_exits_nonzero(self, obs_server, capsys):
        code = admin.main(["--url", obs_server.base_url, "trace", "0" * 32])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_logs_prints_json_lines(self, obs_server, obs_client, capsys):
        get_logger("repro.server").warning("admin logs probe")
        code = admin.main(["--url", obs_server.base_url, "logs", "--limit", "100"])
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert any(e["message"] == "admin logs probe" for e in lines)

    def test_watch_refreshes_n_times_then_exits(self, obs_server, capsys):
        code = admin.main(
            [
                "--url", obs_server.base_url,
                "watch", "--count", "2", "--interval", "0.01", "--no-clear",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("repro-server @") == 2
        assert "req/s" in out

    def test_unreachable_server_exits_nonzero(self, capsys):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = admin.main(
            ["--url", f"http://127.0.0.1:{free_port}", "status"]
        )
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_bench_trend_expands_comparison_rows(self, tmp_path, capsys):
        arm = {
            "requests_per_second": 100.0,
            "latency_p50_seconds": 0.01,
            "latency_p99_seconds": 0.05,
        }
        results = {
            "pr3_server": dict(arm, requests_per_second=80.0),
            "pr8_obs_overhead": {
                "mode": "obs_overhead",
                "on": arm,
                "off": dict(arm, requests_per_second=101.0),
                "overhead_pct": 0.99,
            },
        }
        path = tmp_path / "BENCH_server.json"
        path.write_text(json.dumps(results))
        assert admin.main(["bench-trend", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "pr3_server" in out
        assert "pr8_obs_overhead/on" in out
        assert "pr8_obs_overhead/off" in out
        assert "observability overhead +0.99%" in out

    def test_bench_trend_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = admin.main(["bench-trend", "--file", str(tmp_path / "nope.json")])
        assert code == 1
