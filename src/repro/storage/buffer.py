"""LRU buffer pool in front of a :class:`~repro.storage.pagefile.PageFile`.

The paper's experiments use an LRU memory buffer whose default size is
2% of the R-tree size (Figure 13 sweeps 0%–10%).  Reads served from
the buffer are *hits* and cost no I/O; misses are forwarded to the
page file and charged as physical reads.  Writes go through the buffer
(write-through), so a freshly written page is resident.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.pagefile import PageFile


class LRUBufferPool:
    """Classic LRU page buffer.

    ``capacity`` is the number of resident pages.  A capacity of zero
    disables buffering entirely (every read is a physical read), which
    is the paper's "0% buffer" configuration.
    """

    def __init__(self, pagefile: PageFile, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.pagefile = pagefile
        self.capacity = capacity
        self._resident: OrderedDict[int, bytes] = OrderedDict()

    @classmethod
    def fraction_of(cls, pagefile: PageFile, fraction: float) -> "LRUBufferPool":
        """Build a pool sized as ``fraction`` of the file's current pages.

        Mirrors the paper's "buffer size = X% of the tree size".
        """
        if fraction < 0:
            raise ValueError(f"fraction must be >= 0, got {fraction}")
        capacity = int(pagefile.num_pages * fraction)
        return cls(pagefile, capacity)

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def stats(self):
        return self.pagefile.stats

    def read(self, page_id: int) -> bytes:
        """Read a page, LRU-promoting it; charge a hit or a miss."""
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.stats.record_hit()
            return self._resident[page_id]
        data = self.pagefile.read(page_id)  # records the miss
        self._admit(page_id, data)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Write-through: update disk and (if buffering) residency."""
        self.pagefile.write(page_id, data)
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self._resident[page_id] = bytes(data)
        else:
            self._admit(page_id, bytes(data))

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the buffer (e.g. after freeing it)."""
        self._resident.pop(page_id, None)

    def clear(self) -> None:
        self._resident.clear()

    def resize(self, capacity: int) -> None:
        """Change capacity, evicting LRU pages if shrinking."""
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        while len(self._resident) > self.capacity:
            self._resident.popitem(last=False)

    def _admit(self, page_id: int, data: bytes) -> None:
        if self.capacity == 0:
            return
        while len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
        self._resident[page_id] = data
