"""Paper-style series tables for the benchmark harness.

A figure in the paper is a set of series (one per algorithm) over a
swept parameter.  ``format_series`` renders the same structure as
text: one row per algorithm and metric, one column per sweep value.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.harness import Cell

_METRICS = {
    "io": ("I/O accesses", lambda c: f"{c.io:,}"),
    "cpu": ("CPU time (s)", lambda c: f"{c.cpu_seconds:.2f}"),
    "mem": ("peak memory (KiB)", lambda c: f"{c.memory_bytes / 1024:,.0f}"),
}


def format_series(
    title: str,
    sweep_name: str,
    sweep_values: Sequence,
    cells: Sequence[Cell],
    metrics: Sequence[str] = ("io", "cpu", "mem"),
) -> str:
    """Render cells as one table per metric, paper-figure style.

    ``cells`` must carry ``params[sweep_name]`` matching one of
    ``sweep_values``; methods appear in first-seen order.
    """
    methods: list[str] = []
    for c in cells:
        if c.method not in methods:
            methods.append(c.method)
    by_key = {(c.method, c.params[sweep_name]): c for c in cells}

    width = max(10, *(len(str(v)) + 2 for v in sweep_values))
    name_w = max(14, *(len(m) + 2 for m in methods))
    lines = [f"== {title} =="]
    for metric in metrics:
        label, fmt = _METRICS[metric]
        lines.append(f"-- {label} vs {sweep_name} --")
        header = " " * name_w + "".join(f"{v!s:>{width}}" for v in sweep_values)
        lines.append(header)
        for method in methods:
            row = f"{method:<{name_w}}"
            for v in sweep_values:
                cell = by_key.get((method, v))
                row += f"{fmt(cell) if cell else '-':>{width}}"
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def print_series(
    title: str,
    sweep_name: str,
    sweep_values: Sequence,
    cells: Sequence[Cell],
    metrics: Sequence[str] = ("io", "cpu", "mem"),
) -> None:
    print(format_series(title, sweep_name, sweep_values, cells, metrics))
