"""k-skyband computation (paper Section 2.3).

The k-skyband of a dataset contains the points dominated by at most
``k-1`` others; for any monotone preference function the top-k results
are contained in the k-skyband [Mouratidis et al., SIGMOD'06, cited as
the paper's reference 16].  The 1-skyband is exactly the skyline, so
this module generalizes :mod:`repro.skyline` and provides the
substrate the paper's related-work discussion builds on (top-k
monitoring [16], P2P top-k [23]).

Two implementations are provided: a naive O(n²) reference and a
BBS-style branch-and-bound over the R-tree that prunes a node only
when its best corner is dominated by at least ``k`` found points
(the k-skyband analogue of BBS's pruning rule).
"""

from __future__ import annotations

from collections.abc import Sequence
import heapq
import itertools

from repro.rtree.geometry import Point, dominates, sky_key_point
from repro.rtree.tree import RTree


def naive_kskyband(
    items: Sequence[tuple[int, Point]], k: int
) -> dict[int, Point]:
    """Points dominated by fewer than ``k`` others — O(n²) reference."""
    if k < 1:
        raise ValueError("k must be >= 1")
    out: dict[int, Point] = {}
    for oid, p in items:
        dominators = 0
        for qid, q in items:
            if qid != oid and dominates(q, p):
                dominators += 1
                if dominators >= k:
                    break
        if dominators < k:
            out[oid] = p
    return out


def bbs_kskyband(tree: RTree, k: int) -> dict[int, Point]:
    """Branch-and-bound k-skyband over the R-tree.

    Entries pop in ascending sky distance; a popped point already
    dominated by >= k accepted points is discarded (its dominators all
    popped earlier — the same monotonicity argument as BBS), a node is
    expanded unless >= k accepted points dominate its top corner.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if tree.root_id is None:
        return {}

    band: dict[int, Point] = {}
    seq = itertools.count()
    heap: list = []

    def push_node(node) -> None:
        if node.is_leaf:
            for oid, p in node.entries:
                heapq.heappush(
                    heap, (sky_key_point(p), next(seq), True, oid, p)
                )
        else:
            for cid, mbr in node.entries:
                heapq.heappush(
                    heap, (sky_key_point(mbr.hi), next(seq), False, cid, mbr)
                )

    def dominator_count(corner: Point) -> int:
        count = 0
        for p in band.values():
            if dominates(p, corner):
                count += 1
                if count >= k:
                    break
        return count

    push_node(tree.store.read_node(tree.root_id))
    while heap:
        _, _, is_point, ident, payload = heapq.heappop(heap)
        corner = payload if is_point else payload.hi
        if dominator_count(corner) >= k:
            continue
        if is_point:
            band[ident] = payload
        else:
            push_node(tree.store.read_node(ident))
    return band


def topk_within_kskyband(
    items: Sequence[tuple[int, Point]], weights: Sequence[float], k: int
) -> bool:
    """Verification helper: the monotone top-k is inside the k-skyband
    (the containment property the paper's Section 2.3 states)."""
    from repro.ordering import object_key
    from repro.scoring import score

    band = naive_kskyband(items, k)
    ranked = sorted(
        (object_key(score(weights, p), p, oid), oid) for oid, p in items
    )
    return all(oid in band for _, oid in ranked[:k])
