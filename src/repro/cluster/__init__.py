"""repro.cluster — sharded serving over a fleet of repro-servers.

A stdlib-only asyncio gateway that horizontally scales the single-node
:mod:`repro.server` by consistent-hash sharding::

    clients  →  repro-gateway  ──ring──►  repro-server × N
                  (this layer)             (each owns its shards'
                                            R-tree index caches)

Every request is keyed by the problem's ``instance_digest`` (solver
selection excluded — method variants of one catalogue share a shard),
so each catalogue's object index is built on exactly one backend and
stays hot there.  The ring is deterministic across processes and
restarts: no state to replicate, any gateway maps any key the same
way.  Async job ids come back prefixed ``{node_id}@{job_id}``, so
polls route by prefix with no gateway-side job table.

Failover: dead backends are skipped via ring successors (never removed
from the ring — recovery restores ownership), solves re-execute on the
successor bit-identically (deterministic engine), and a shard with no
live replica answers 503 + ``Retry-After``.

Run it standalone::

    python -m repro.cluster --backend 127.0.0.1:8001 \
        --backend 127.0.0.1:8002          # or the repro-gateway script

or embed it (tests, benchmarks)::

    from repro.cluster import GatewayConfig, running_gateway
    from repro.server import Client

    with running_gateway(
        GatewayConfig(backends=(addr_a, addr_b), port=0)
    ) as handle:
        with Client(handle.base_url) as client:  # same protocol
            solution = client.solve(problem)
"""

from repro.cluster.app import (
    GatewayConfig,
    GatewayHandle,
    GatewayMetrics,
    ReproGateway,
    running_gateway,
    serve_gateway_in_thread,
)
from repro.cluster.forwarder import Fleet
from repro.cluster.probe import Backend, HealthProber, node_id_for
from repro.cluster.ring import HashRing, ring_hash

__all__ = [
    "Backend",
    "Fleet",
    "GatewayConfig",
    "GatewayHandle",
    "GatewayMetrics",
    "HashRing",
    "HealthProber",
    "ReproGateway",
    "node_id_for",
    "ring_hash",
    "running_gateway",
    "serve_gateway_in_thread",
]
