"""``repro.analysis`` — AST-based invariant checker (``repro-lint``).

Four rule families, each encoding a discipline earlier PRs introduced
in prose and this package makes machine-checked:

======  ==========================================================
REP0xx  meta (parse failures, malformed suppression comments)
REP1xx  lock discipline — guarded attributes accessed off-lock
REP2xx  determinism — RNG / wall-clock / set-order / id() in the
        bit-identical packages (engine, kernels, skyline, planner,
        rtree)
REP3xx  registry consistency — calibration, ENGINE_CONFIGS,
        identity-test coverage, derived dispatch views
REP4xx  hot-path & error hygiene — spans/logs on never-traced
        paths, bare/swallowed except, hand-built error envelopes
======  ==========================================================

Findings are typed (:class:`Finding`), output is text or JSON, and a
checked-in baseline (``repro-lint.baseline.json``) holds reviewed,
justified exceptions: accepted findings pass CI, *new* findings fail
it.  Inline escape hatch: ``# lint: <tag>-ok(reason)`` with a
mandatory reason.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BASELINE_VERSION,
    DEFAULT_BASELINE_NAME,
    Baseline,
)
from repro.analysis.determinism import (
    DETERMINISTIC_MARKER,
    DETERMINISTIC_PACKAGES,
    check_determinism,
    is_deterministic_path,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.hotpath import (
    ENVELOPE_BOUNDARIES,
    NEVER_TRACED_MARKER,
    check_hotpath,
)
from repro.analysis.locks import check_locks
from repro.analysis.registry_rules import RegistryView, check_registry
from repro.analysis.runner import (
    LintResult,
    iter_python_files,
    lint_file,
    render_json,
    run_lint,
)
from repro.analysis.suppress import TAG_RULES, SuppressionIndex

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DETERMINISTIC_MARKER",
    "DETERMINISTIC_PACKAGES",
    "ENVELOPE_BOUNDARIES",
    "Finding",
    "LintResult",
    "NEVER_TRACED_MARKER",
    "RegistryView",
    "SuppressionIndex",
    "TAG_RULES",
    "check_determinism",
    "check_hotpath",
    "check_locks",
    "check_registry",
    "is_deterministic_path",
    "iter_python_files",
    "lint_file",
    "render_json",
    "run_lint",
    "sort_findings",
]
