"""Unit tests for the storage substrate: page file, LRU buffer, stats."""

import pytest

from repro.storage import IOStats, LRUBufferPool, MemoryTracker, PageFile


class TestIOStats:
    def test_initial_zero(self):
        s = IOStats()
        assert s.physical_reads == 0
        assert s.logical_reads == 0
        assert s.buffer_hits == 0

    def test_hit_and_miss_accounting(self):
        s = IOStats()
        s.record_miss()
        s.record_hit()
        s.record_hit()
        assert s.physical_reads == 1
        assert s.logical_reads == 3
        assert s.buffer_hits == 2

    def test_delta_since(self):
        s = IOStats()
        s.record_miss()
        snap = s.snapshot()
        s.record_miss()
        s.record_hit()
        d = s.delta_since(snap)
        assert d.physical_reads == 1
        assert d.logical_reads == 2

    def test_reset(self):
        s = IOStats()
        s.record_miss()
        s.record_write()
        s.reset()
        assert s.physical_reads == 0
        assert s.physical_writes == 0


class TestMemoryTracker:
    def test_peak_tracks_sum_of_gauges(self):
        m = MemoryTracker()
        m.set_gauge("a", 100)
        m.set_gauge("b", 50)
        assert m.peak_bytes == 150
        m.set_gauge("a", 10)
        assert m.current_bytes == 60
        assert m.peak_bytes == 150  # peak is sticky

    def test_add_accumulates(self):
        m = MemoryTracker()
        m.add("x", 10)
        m.add("x", 15)
        assert m.gauges["x"] == 25

    def test_reset(self):
        m = MemoryTracker()
        m.set_gauge("a", 5)
        m.reset()
        assert m.peak_bytes == 0
        assert m.current_bytes == 0


class TestPageFile:
    def test_allocate_write_read(self):
        pf = PageFile(page_size=128)
        pid = pf.allocate()
        pf.write(pid, b"hello")
        assert pf.read(pid) == b"hello"
        assert pf.stats.physical_reads == 1
        assert pf.stats.physical_writes == 1

    def test_write_overflow_rejected(self):
        pf = PageFile(page_size=8)
        pid = pf.allocate()
        with pytest.raises(ValueError):
            pf.write(pid, b"123456789")

    def test_unallocated_access_rejected(self):
        pf = PageFile()
        with pytest.raises(KeyError):
            pf.read(7)
        with pytest.raises(KeyError):
            pf.write(7, b"x")
        with pytest.raises(KeyError):
            pf.free(7)

    def test_free_reuses_ids(self):
        pf = PageFile()
        a = pf.allocate()
        pf.free(a)
        b = pf.allocate()
        assert b == a
        assert pf.num_pages == 1

    def test_size_accounting(self):
        pf = PageFile(page_size=4096)
        for _ in range(3):
            pf.allocate()
        assert pf.size_bytes == 3 * 4096

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageFile(page_size=0)


class TestLRUBufferPool:
    def _file_with_pages(self, n, page_size=64):
        pf = PageFile(page_size=page_size)
        pids = []
        for i in range(n):
            pid = pf.allocate()
            pf.write(pid, bytes([i]) * 8)
            pids.append(pid)
        pf.stats.reset()
        return pf, pids

    def test_hit_after_first_read(self):
        pf, pids = self._file_with_pages(1)
        buf = LRUBufferPool(pf, capacity=4)
        buf.read(pids[0])
        buf.read(pids[0])
        assert pf.stats.physical_reads == 1
        assert pf.stats.buffer_hits == 1

    def test_zero_capacity_never_caches(self):
        pf, pids = self._file_with_pages(1)
        buf = LRUBufferPool(pf, capacity=0)
        buf.read(pids[0])
        buf.read(pids[0])
        assert pf.stats.physical_reads == 2
        assert pf.stats.buffer_hits == 0

    def test_lru_eviction_order(self):
        pf, pids = self._file_with_pages(3)
        buf = LRUBufferPool(pf, capacity=2)
        buf.read(pids[0])
        buf.read(pids[1])
        buf.read(pids[0])  # 0 is now most recent
        buf.read(pids[2])  # evicts 1
        pf.stats.reset()
        buf.read(pids[0])
        assert pf.stats.physical_reads == 0  # still resident
        buf.read(pids[1])
        assert pf.stats.physical_reads == 1  # was evicted

    def test_write_through_keeps_page_resident(self):
        pf, pids = self._file_with_pages(1)
        buf = LRUBufferPool(pf, capacity=2)
        buf.write(pids[0], b"fresh")
        pf.stats.reset()
        assert buf.read(pids[0]) == b"fresh"
        assert pf.stats.physical_reads == 0

    def test_resize_evicts(self):
        pf, pids = self._file_with_pages(3)
        buf = LRUBufferPool(pf, capacity=3)
        for pid in pids:
            buf.read(pid)
        buf.resize(1)
        assert len(buf) == 1

    def test_fraction_of(self):
        pf, _ = self._file_with_pages(50)
        buf = LRUBufferPool.fraction_of(pf, 0.1)
        assert buf.capacity == 5

    def test_invalidate(self):
        pf, pids = self._file_with_pages(1)
        buf = LRUBufferPool(pf, capacity=2)
        buf.read(pids[0])
        buf.invalidate(pids[0])
        pf.stats.reset()
        buf.read(pids[0])
        assert pf.stats.physical_reads == 1

    def test_negative_capacity_rejected(self):
        pf, _ = self._file_with_pages(1)
        with pytest.raises(ValueError):
            LRUBufferPool(pf, capacity=-1)
