"""Capacity bookkeeping (Section 6.1).

Multiple identical objects/functions are modeled as one entity with a
capacity.  A stable pair ``(f, o)`` consumes ``min(cap_f, cap_o)``
units at once: repeating the paper's decrement-by-1 (Lines 15–17 of
Algorithm 3) leaves the pair mutually best until one side's capacity
reaches zero, so the batch is provably equivalent and loop counts stay
proportional to the number of *distinct* pairs.
"""

from __future__ import annotations

from repro.data.instances import FunctionSet, ObjectSet


class CapacityTracker:
    """Remaining capacities of both sides of the assignment."""

    def __init__(self, functions: FunctionSet, objects: ObjectSet):
        self._f_left = [functions.capacity(fid) for fid in range(len(functions))]
        self._o_left = [objects.capacity(oid) for oid in range(len(objects))]
        self.alive_functions = len(functions)
        self.alive_objects = len(objects)

    def function_alive(self, fid: int) -> bool:
        return self._f_left[fid] > 0

    def object_alive(self, oid: int) -> bool:
        return self._o_left[oid] > 0

    def function_capacity(self, fid: int) -> int:
        return self._f_left[fid]

    def object_capacity(self, oid: int) -> int:
        return self._o_left[oid]

    def assign(self, fid: int, oid: int) -> tuple[int, bool, bool]:
        """Consume ``min`` capacity between ``fid`` and ``oid``.

        Returns ``(units, function_died, object_died)``.
        """
        units = min(self._f_left[fid], self._o_left[oid])
        if units <= 0:
            raise ValueError(
                f"assigning exhausted pair (f={fid}, o={oid}): "
                f"{self._f_left[fid]} x {self._o_left[oid]}"
            )
        self._f_left[fid] -= units
        self._o_left[oid] -= units
        f_died = self._f_left[fid] == 0
        o_died = self._o_left[oid] == 0
        if f_died:
            self.alive_functions -= 1
        if o_died:
            self.alive_objects -= 1
        return units, f_died, o_died

    @property
    def exhausted(self) -> bool:
        """True when no further pair can be formed."""
        return self.alive_functions == 0 or self.alive_objects == 0
