"""Columnar skyline-membership maintenance.

The engine's maintenance seam (``compute_initial`` / ``remove``) over
flat arrays: membership is a boolean mask over the object matrix and
the initial skyline is one batch Pareto pass.

Removals are repaired with *reference dominators*: every alive
non-skyline object carries the index of one skyline member currently
dominating it (``ref``).  When members are removed, only the objects
whose reference died can possibly surface — everything referencing a
survivor is still dominated — so a round repairs the mask by

1. collecting the orphans (``ref`` ∈ removed);
2. re-homing the orphans a *surviving* member still dominates
   (one small ``orphans × survivors`` dominance pass);
3. Pareto-filtering the remainder: the winners are promoted into the
   skyline, the losers are re-homed onto the promoted member that
   dominates them.

The produced skyline *set* is exactly the one UpdateSkyline and
DeltaSky maintain — the skyline of the alive objects is unique — so
the vectorized configs stay pair-identical to their interpreted twins
regardless of maintenance algorithm.  I/O is 0 by construction: no
page is ever read.

:class:`MaskSkyline` is the context-free core (used both by the
static solve twin below and by the incremental churn kernel in
:mod:`repro.kernels.dynamic`); :class:`VectorizedSkylineMaintenance`
adapts it to the engine's maintenance seam (``SkylineState`` dicts,
memory gauges, member validation).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.engine.engine import EngineContext
from repro.engine.protocols import SkylineState
from repro.kernels.columnar import ColumnarInstance
from repro.kernels.pareto import dominator_index, pareto_mask


class MaskSkyline:
    """Mask-based skyline with reference-dominator incremental repair.

    Pure array state over one ``n × D`` coordinate matrix: no engine
    context, no id remapping — callers work in local row indices.
    """

    def __init__(self, points: np.ndarray):
        self.points = points
        n = points.shape[0]
        self.alive = np.ones(n, dtype=bool)
        self.sky_mask = np.zeros(n, dtype=bool)
        #: Index of one skyline member dominating each alive
        #: non-skyline row; ``-1`` for members and dead rows.
        self.ref = np.full(n, -1, dtype=np.intp)
        self.computed = False

    def sky_indices(self) -> np.ndarray:
        """Current skyline member rows, ascending."""
        return np.nonzero(self.sky_mask)[0]

    def nbytes(self) -> int:
        return int(self.alive.nbytes + self.sky_mask.nbytes + self.ref.nbytes)

    def compute_initial(self) -> np.ndarray:
        """One batch Pareto pass; returns the member rows."""
        if self.computed:
            raise RuntimeError("initial skyline already computed")
        self.computed = True
        points = self.points
        self.sky_mask = pareto_mask(points)
        sky_idx = self.sky_indices()
        pool_idx = np.nonzero(~self.sky_mask)[0]
        if pool_idx.size:
            # Every non-member is dominated by some member (skyline
            # definition), so every witness index is >= 0 here.
            witness = dominator_index(points[pool_idx], points[sky_idx])
            self.ref[pool_idx] = sky_idx[witness]
        return sky_idx

    def remove(self, removed_idx: np.ndarray) -> np.ndarray:
        """Retire member rows; returns the rows promoted to replace
        them (the reference-dominator repair of the module docstring).
        """
        if not self.computed:
            raise RuntimeError("call compute_initial() first")
        self.alive[removed_idx] = False
        self.sky_mask[removed_idx] = False

        points = self.points
        # (1) orphans: alive rows whose reference dominator died.
        orphan_idx = np.nonzero(self.alive & np.isin(self.ref, removed_idx))[0]
        if not orphan_idx.size:
            return orphan_idx
        # (2) re-home orphans a surviving member still dominates.
        survivors = self.sky_indices()
        if survivors.size:
            witness = dominator_index(points[orphan_idx], points[survivors])
            found = witness >= 0
            self.ref[orphan_idx[found]] = survivors[witness[found]]
            orphan_idx = orphan_idx[~found]
        if not orphan_idx.size:
            return orphan_idx
        # (3) orphan-vs-orphan Pareto pass; losers re-home onto the
        #     promoted member that dominates them.
        promoted_local = pareto_mask(points[orphan_idx])
        promoted = orphan_idx[promoted_local]
        losers = orphan_idx[~promoted_local]
        self.sky_mask[promoted] = True
        self.ref[promoted] = -1
        if losers.size:
            witness = dominator_index(points[losers], points[promoted])
            self.ref[losers] = promoted[witness]
        return promoted


class VectorizedSkylineMaintenance:
    """The engine-facing adapter over :class:`MaskSkyline`."""

    def __init__(self, ctx: EngineContext, columnar: ColumnarInstance):
        self.columnar = columnar
        self._objects = ctx.objects
        self._mem = ctx.mem
        self._core = MaskSkyline(columnar.points)
        self._skyline: SkylineState = {}
        self._mem.set_gauge(
            "columnar_arrays", columnar.nbytes() + self._core.nbytes()
        )

    @property
    def skyline(self) -> SkylineState:
        return self._skyline

    def sky_indices(self) -> np.ndarray:
        """Current skyline member ids, ascending."""
        return self._core.sky_indices()

    def compute_initial(self) -> SkylineState:
        sky_idx = self._core.compute_initial()
        self._skyline = {int(i): self._objects.points[int(i)] for i in sky_idx}
        return self._skyline

    def remove(self, oids: Iterable[int]) -> SkylineState:
        removed = list(oids)
        if not self._core.computed:
            raise RuntimeError("call compute_initial() first")
        for oid in removed:
            if not self._core.sky_mask[oid]:
                raise KeyError(f"object {oid} is not a current skyline member")
        for oid in removed:
            del self._skyline[oid]
        promoted = self._core.remove(np.asarray(removed, dtype=np.intp))
        for i in promoted:
            self._skyline[int(i)] = self._objects.points[int(i)]
        return self._skyline
