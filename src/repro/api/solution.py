"""The rich :class:`Solution` result returned by the session facade.

Wraps the engine's :class:`~repro.core.types.AssignmentResult` with
O(1) partner lookups, stability certification against the owning
:class:`~repro.api.problem.Problem`, diffing against a previous
solution (for dynamic updates), and versioned JSON serde (including a
full round trip of the run's cost statistics).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

from repro.api.problem import Problem
from repro.api.serde import (
    SCHEMA_KEY,
    SOLUTION_SCHEMA,
    check_payload,
    from_json,
    to_canonical_json,
)
from repro.core.types import AssignedPair, AssignmentResult, Matching, RunStats
from repro.core.validate import assert_stable
from repro.data.instances import FunctionSet, ObjectSet
from repro.errors import ReproError, SerdeError
from repro.planner import Plan, explicit_plan
from repro.storage.stats import IOStats


@dataclass(frozen=True)
class SolutionDiff:
    """Unit-level delta between two solutions.

    ``added`` / ``removed`` hold ``(fid, oid, units)`` triples: the
    matched units present only in the newer / only in the older
    solution.  Falsy when the two assignments are identical.
    """

    added: tuple[tuple[int, int, int], ...]
    removed: tuple[tuple[int, int, int], ...]

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    @property
    def units_changed(self) -> int:
        return sum(u for _, _, u in self.added) + sum(u for _, _, u in self.removed)


@dataclass(frozen=True)
class Solution:
    """An immutable solved assignment.

    Equality compares the assignment itself (``pairs`` and ``method``);
    the run statistics, the planner's :class:`~repro.planner.Plan`
    (present when the solve was routed via ``method="auto"``) and the
    back-reference to the solved problem are carried but not compared.
    ``method`` is always the *resolved* concrete method that ran — a
    planner-routed solution is indistinguishable from a hand-routed
    one except for the attached ``plan``.
    """

    pairs: tuple[AssignedPair, ...]
    method: str = "sb"
    stats: RunStats | None = field(default=None, compare=False)
    problem: Problem | None = field(default=None, compare=False, repr=False)
    plan: Plan | None = field(default=None, compare=False, repr=False)

    @classmethod
    def from_result(
        cls,
        result: AssignmentResult,
        method: str,
        problem: Problem | None = None,
        plan: Plan | None = None,
    ) -> "Solution":
        return cls(
            pairs=tuple(result.matching.pairs),
            method=method,
            stats=result.stats,
            problem=problem,
            plan=plan,
        )

    def explain(self, include_actual: bool = True) -> str:
        """The planner transcript for this solve (estimated vs actual
        wall time included when run statistics are attached)."""
        plan = self.plan
        if plan is None:
            plan = explicit_plan(self.method)
        actual = None
        if include_actual and self.stats is not None:
            actual = self.stats.cpu_seconds
        return plan.explain(actual_seconds=actual)

    # -- lookups -------------------------------------------------------

    @cached_property
    def _by_fid(self) -> dict[int, tuple[tuple[int, int], ...]]:
        out: dict[int, list[tuple[int, int]]] = {}
        for p in self.pairs:
            out.setdefault(p.fid, []).append((p.oid, p.count))
        return {fid: tuple(v) for fid, v in out.items()}

    @cached_property
    def _by_oid(self) -> dict[int, tuple[tuple[int, int], ...]]:
        out: dict[int, list[tuple[int, int]]] = {}
        for p in self.pairs:
            out.setdefault(p.oid, []).append((p.fid, p.count))
        return {oid: tuple(v) for oid, v in out.items()}

    def partner_of(self, fid: int) -> tuple[tuple[int, int], ...]:
        """``(oid, units)`` partners of a function — O(1)."""
        return self._by_fid.get(fid, ())

    def partners_of(self, oid: int) -> tuple[tuple[int, int], ...]:
        """``(fid, units)`` partners of an object — O(1)."""
        return self._by_oid.get(oid, ())

    def __iter__(self) -> Iterator[AssignedPair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    @cached_property
    def matching(self) -> Matching:
        """The assignment as the engine-level :class:`Matching`."""
        return Matching(pairs=list(self.pairs))

    def as_dict(self) -> dict[tuple[int, int], int]:
        """``{(fid, oid): units}`` — order-independent comparison form."""
        return self.matching.as_dict()

    @property
    def num_units(self) -> int:
        return sum(p.count for p in self.pairs)

    def total_score(self) -> float:
        return sum(p.score * p.count for p in self.pairs)

    # -- certification -------------------------------------------------

    def verify(
        self,
        functions: FunctionSet | None = None,
        objects: ObjectSet | None = None,
    ) -> "Solution":
        """Certify stability (no blocking pair); returns ``self``.

        Uses the attached problem's instance when ``functions`` /
        ``objects`` are not given; raises
        :class:`~repro.errors.ReproError` if neither is available and
        ``AssertionError`` if a blocking pair exists.
        """
        if functions is None or objects is None:
            if self.problem is None:
                raise ReproError(
                    "cannot verify a detached Solution: pass the instance "
                    "(functions, objects) or attach the Problem"
                )
            if functions is None:
                functions = self.problem.function_set
            if objects is None:
                objects = self.problem.object_set
        assert_stable(self.matching, functions, objects)
        return self

    # -- diffing -------------------------------------------------------

    def diff(self, previous: "Solution | None") -> SolutionDiff:
        """Unit-level changes relative to ``previous`` (``None`` =
        everything is new)."""
        mine = self.as_dict()
        theirs = previous.as_dict() if previous is not None else {}
        added: list[tuple[int, int, int]] = []
        removed: list[tuple[int, int, int]] = []
        for key in sorted(set(mine) | set(theirs)):
            delta = mine.get(key, 0) - theirs.get(key, 0)
            if delta > 0:
                added.append((key[0], key[1], delta))
            elif delta < 0:
                removed.append((key[0], key[1], -delta))
        return SolutionDiff(added=tuple(added), removed=tuple(removed))

    # -- serde ---------------------------------------------------------

    def to_dict(self) -> dict:
        stats = None
        if self.stats is not None:
            stats = {
                "io": {
                    "physical_reads": self.stats.io.physical_reads,
                    "logical_reads": self.stats.io.logical_reads,
                    "physical_writes": self.stats.io.physical_writes,
                },
                "cpu_seconds": self.stats.cpu_seconds,
                "peak_memory_bytes": self.stats.peak_memory_bytes,
                "loops": self.stats.loops,
                "counters": dict(self.stats.counters),
                "phases": dict(self.stats.phases),
            }
        payload = {
            SCHEMA_KEY: SOLUTION_SCHEMA,
            "method": self.method,
            "pairs": [[p.fid, p.oid, p.score, p.count] for p in self.pairs],
            "stats": stats,
        }
        if self.plan is not None:
            payload["plan"] = self.plan.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Solution":
        check_payload(
            payload,
            SOLUTION_SCHEMA,
            required={"method", "pairs"},
            optional={"stats", "plan"},
        )
        try:
            pairs = tuple(
                AssignedPair(int(fid), int(oid), float(score), int(count))
                for fid, oid, score, count in payload["pairs"]
            )
        except (TypeError, ValueError) as exc:
            raise SerdeError(f"malformed pairs in solution payload: {exc}") from exc
        raw = payload.get("stats")
        stats = None
        if raw is not None:
            if not isinstance(raw, Mapping):
                raise SerdeError("solution 'stats' must be a mapping or null")
            io = raw.get("io") or {}
            stats = RunStats(
                io=IOStats(
                    physical_reads=int(io.get("physical_reads", 0)),
                    logical_reads=int(io.get("logical_reads", 0)),
                    physical_writes=int(io.get("physical_writes", 0)),
                ),
                cpu_seconds=float(raw.get("cpu_seconds", 0.0)),
                peak_memory_bytes=int(raw.get("peak_memory_bytes", 0)),
                loops=int(raw.get("loops", 0)),
                counters=dict(raw.get("counters") or {}),
                phases=dict(raw.get("phases") or {}),
            )
        raw_plan = payload.get("plan")
        plan = Plan.from_dict(raw_plan) if raw_plan is not None else None
        return cls(pairs=pairs, method=payload["method"], stats=stats, plan=plan)

    def to_json(self) -> str:
        return to_canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str | bytes) -> "Solution":
        return cls.from_dict(from_json(text))

    def to_file(self, path: str | Path) -> Path:
        """Write the canonical JSON payload to ``path``; returns it."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def from_file(cls, path: str | Path) -> "Solution":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise SerdeError(f"cannot read solution file {path!s}: {exc}") from exc
        return cls.from_json(text)


__all__ = ["Solution", "SolutionDiff"]
