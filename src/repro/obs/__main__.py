"""``python -m repro.obs`` — alias for the ``repro-admin`` console."""

import sys

from repro.obs.admin import main

if __name__ == "__main__":
    sys.exit(main())
