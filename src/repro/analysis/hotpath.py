"""REP40x — hot-path and error hygiene in the serving tiers.

- **REP401 / REP402** — no span or log-record construction on the
  never-traced paths (PR 8's rule: ``/healthz``, ``/metrics``, the
  observability endpoints, job status-poll GETs, probe sweeps).  These
  arrive tens-per-solve / once-per-interval; tracing or logging them
  would dominate per-request cost and churn the recent trace store.
  The never-traced handler set is read from the module itself — its
  ``_UNTRACED_PREFIXES`` / ``_UNTRACED_GET_PREFIXES`` constants joined
  with its ``router.add(method, path, self._handler)`` calls — so a
  newly registered untraced route is covered without touching the
  linter.  Functions outside a router module opt in with a
  ``# lint: never-traced`` marker on (or above) their ``def`` line
  (probe sweeps).  State-*transition* logging (a backend flipping
  down) lives in the transition methods, which these rules do not
  descend into — per-sweep bodies stay silent, rare flips stay loud.
- **REP403** — bare ``except:`` anywhere: it catches
  ``KeyboardInterrupt`` / ``SystemExit`` and makes shutdown hangs.
- **REP404** — swallowed exceptions: an ``except`` whose body is only
  ``pass`` / ``...`` hides failures; re-raise, log, or take the
  ``# lint: except-ok(reason)`` hatch (``contextlib.suppress`` at a
  call site documents intent and is not flagged).
- **REP405** — hand-built ≥400 envelopes in route handlers: error
  responses must be *raised* through the :class:`ReproError` family
  and translated once, at the dispatch boundary — that is what keeps
  every error envelope carrying ``trace_id`` and a stable shape.
  Boundary translators (``_dispatch_inner``, ``_handle_connection``,
  ``_relay_error``, ``_stamp_trace``) are exempt: they *are* the
  translation layer.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

RULE_SPAN_IN_UNTRACED = "REP401"
RULE_LOG_IN_UNTRACED = "REP402"
RULE_BARE_EXCEPT = "REP403"
RULE_SWALLOWED_EXCEPT = "REP404"
RULE_HANDBUILT_ENVELOPE = "REP405"

#: Marker opting a single function into the never-traced body checks.
NEVER_TRACED_MARKER = "# lint: never-traced"

#: Functions allowed to construct ≥400 responses: the one translation
#: boundary per serving module.
ENVELOPE_BOUNDARIES = frozenset(
    {"_dispatch_inner", "_handle_connection", "_relay_error", "_stamp_trace"}
)

_SPAN_FACTORIES = {"span", "derived_span"}
_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical"}


def _dotted_tail(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _str_tuple(node: ast.expr) -> tuple[str, ...]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        )
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value,)
    return ()


def _module_constants(tree: ast.Module, name: str) -> tuple[str, ...]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return _str_tuple(node.value)
    return ()


def _routes(tree: ast.Module) -> list[tuple[str, str, str]]:
    """``router.add("GET", "/path", self._handler)`` sites →
    ``[(http_method, path, handler_name), ...]``."""
    routes: list[tuple[str, str, str]] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "router"
            and len(node.args) >= 3
        ):
            continue
        method_node, path_node, handler_node = node.args[:3]
        if not (
            isinstance(method_node, ast.Constant)
            and isinstance(path_node, ast.Constant)
        ):
            continue
        handler = (
            handler_node.attr
            if isinstance(handler_node, ast.Attribute)
            else handler_node.id
            if isinstance(handler_node, ast.Name)
            else None
        )
        if handler is not None:
            routes.append((str(method_node.value), str(path_node.value), handler))
    return routes


def untraced_handlers(tree: ast.Module) -> set[str]:
    """Handler names serving never-traced routes, per the module's own
    untraced-prefix constants and route registrations."""
    prefixes = _module_constants(tree, "_UNTRACED_PREFIXES")
    get_prefixes = _module_constants(tree, "_UNTRACED_GET_PREFIXES")
    handlers: set[str] = set()
    for method, path, handler in _routes(tree):
        if path.startswith(prefixes) if prefixes else False:
            handlers.add(handler)
        elif method == "GET" and get_prefixes and path.startswith(get_prefixes):
            handlers.add(handler)
    return handlers


def _marked_functions(source: str, tree: ast.Module) -> set[str]:
    """Function names carrying ``# lint: never-traced`` on or directly
    above their ``def`` line."""
    lines = source.splitlines()
    marked: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        first = min([node.lineno] + [d.lineno for d in node.decorator_list])
        for i in range(max(0, first - 2), node.lineno):
            if i < len(lines) and NEVER_TRACED_MARKER in lines[i]:
                marked.add(node.name)
    return marked


def _check_untraced_body(
    func: ast.FunctionDef | ast.AsyncFunctionDef, path: str, scope: str
) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        tail = _dotted_tail(node.func)
        if tail in _SPAN_FACTORIES:
            findings.append(
                Finding(
                    rule=RULE_SPAN_IN_UNTRACED,
                    path=path,
                    line=node.lineno,
                    column=node.col_offset,
                    scope=scope,
                    severity="warning",
                    message=(
                        f"span construction ('{tail}(...)') on a "
                        "never-traced path: probe/poll traffic must not "
                        "churn the trace store (PR 8 discipline)"
                    ),
                )
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOG_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in {"log", "logger"}
        ):
            findings.append(
                Finding(
                    rule=RULE_LOG_IN_UNTRACED,
                    path=path,
                    line=node.lineno,
                    column=node.col_offset,
                    scope=scope,
                    severity="warning",
                    message=(
                        f"log record ('log.{node.func.attr}') constructed "
                        "on a never-traced path: per-sweep/per-poll logging "
                        "floods the ring; log state *transitions* instead"
                    ),
                )
            )
    return findings


def _status_of(call: ast.Call) -> int | None:
    """The literal status of a ``Response.error(...)`` /
    ``Response.json(..., status=N)`` construction, if determinable."""
    func = call.func
    if not (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "Response"
    ):
        return None
    if func.attr == "error":
        if call.args and isinstance(call.args[0], ast.Constant):
            value = call.args[0].value
            return value if isinstance(value, int) else None
        for kw in call.keywords:
            if kw.arg == "status" and isinstance(kw.value, ast.Constant):
                value = kw.value.value
                return value if isinstance(value, int) else None
        return 500  # Response.error defaults to an error status
    if func.attr == "json":
        for kw in call.keywords:
            if kw.arg == "status" and isinstance(kw.value, ast.Constant):
                value = kw.value.value
                return value if isinstance(value, int) else None
    return None


class _HygieneVisitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        untraced: set[str],
        router_module: bool,
    ) -> None:
        self.path = path
        self.untraced = untraced
        self.router_module = router_module
        self.findings: list[Finding] = []
        self._scope_stack: list[str] = []

    def _scope(self) -> str:
        return ".".join(self._scope_stack) if self._scope_stack else "<module>"

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._scope_stack.append(node.name)
        if node.name in self.untraced:
            self.findings.extend(_check_untraced_body(node, self.path, self._scope()))
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.findings.append(
                Finding(
                    rule=RULE_BARE_EXCEPT,
                    path=self.path,
                    line=node.lineno,
                    column=node.col_offset,
                    scope=self._scope(),
                    message=(
                        "bare 'except:' catches KeyboardInterrupt/"
                        "SystemExit; catch Exception (or narrower)"
                    ),
                )
            )
        if all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        ):
            self.findings.append(
                Finding(
                    rule=RULE_SWALLOWED_EXCEPT,
                    path=self.path,
                    line=node.lineno,
                    column=node.col_offset,
                    scope=self._scope(),
                    severity="warning",
                    message=(
                        "exception swallowed (except body is only pass): "
                        "re-raise, log, or use contextlib.suppress at the "
                        "call site to document intent"
                    ),
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.router_module:
            status = _status_of(node)
            enclosing = self._scope_stack[-1] if self._scope_stack else ""
            if (
                status is not None
                and status >= 400
                and enclosing not in ENVELOPE_BOUNDARIES
            ):
                self.findings.append(
                    Finding(
                        rule=RULE_HANDBUILT_ENVELOPE,
                        path=self.path,
                        line=node.lineno,
                        column=node.col_offset,
                        scope=self._scope(),
                        severity="warning",
                        message=(
                            f"hand-built HTTP {status} envelope outside the "
                            "dispatch boundary: raise a ReproError subclass "
                            "and let the boundary translate it (keeps "
                            "trace_id and envelope shape uniform)"
                        ),
                    )
                )
        self.generic_visit(node)


def check_hotpath(tree: ast.Module, path: str, source: str) -> list[Finding]:
    """Run the hot-path / hygiene rules over one parsed module."""
    routes = _routes(tree)
    untraced = untraced_handlers(tree) if routes else set()
    untraced |= _marked_functions(source, tree)
    visitor = _HygieneVisitor(path, untraced, router_module=bool(routes))
    visitor.visit(tree)
    return visitor.findings


__all__ = [
    "ENVELOPE_BOUNDARIES",
    "NEVER_TRACED_MARKER",
    "RULE_BARE_EXCEPT",
    "RULE_HANDBUILT_ENVELOPE",
    "RULE_LOG_IN_UNTRACED",
    "RULE_SPAN_IN_UNTRACED",
    "RULE_SWALLOWED_EXCEPT",
    "check_hotpath",
]
