"""The unified assignment engine: strategy configs, protocols, and
equivalence of engine-driven runs with the solver entry points."""

import pytest

from repro import build_object_index, solve
from repro.core.reference import greedy_assign
from repro.engine import (
    ENGINE_CONFIGS,
    AssignmentEngine,
    BestPairSearch,
    EngineConfig,
    SkylineMaintenance,
    engine_config,
)
from repro.engine.commit import MultiPairCommit, SinglePairCommit
from repro.engine.rounds import MutualBestRound
from repro.engine.search import BatchTASearch, FskySearch, ReverseTASearch
from repro.engine.skyline import NoSkyline, build_object_skyline
from repro.data.instances import FunctionSet
from repro.skyline.deltasky import DeltaSkyManager
from repro.skyline.maintenance import UpdateSkylineManager

from .conftest import random_instance


def oracle(fs, os_):
    return greedy_assign(fs, os_).matching.as_dict()


# ---------------------------------------------------------------------------
# Named configs == solver entry points
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(ENGINE_CONFIGS))
def test_named_config_matches_oracle(name):
    fs, os_ = random_instance(10, 30, 3, seed=5, capacities=True)
    idx = build_object_index(os_, page_size=512, memory=(name == "sb-alt"))
    result = solve(fs, idx, method=engine_config(name))
    assert result.matching.as_dict() == oracle(fs, os_), name


@pytest.mark.parametrize("name", ["sb", "sb-update", "sb-deltasky"])
def test_figure8_variants_are_pure_configs(name):
    """Each Figure 8 ablation variant is expressible purely as an
    engine strategy config — identical output AND identical cost
    metrics to the ``sb_assign`` variant entry point."""
    from repro.core.sb import sb_assign

    fs, os_ = random_instance(12, 40, 3, seed=8)
    idx = build_object_index(os_, page_size=512, buffer_fraction=0.0)
    via_solver = sb_assign(fs, idx, variant=name)
    idx2 = build_object_index(os_, page_size=512, buffer_fraction=0.0)
    via_config = AssignmentEngine(engine_config(name)).run(fs, idx2)
    assert via_config.matching.as_dict() == via_solver.matching.as_dict()
    assert via_config.stats.loops == via_solver.stats.loops
    assert via_config.stats.io_accesses == via_solver.stats.io_accesses
    assert via_config.stats.counters == via_solver.stats.counters


@pytest.mark.parametrize("name", ["sb-alt", "sb-two-skylines", "chain"])
def test_other_solvers_are_pure_configs(name):
    """The non-Figure-8 solvers are also pure configs: config-driven
    runs carry the same matchings, loop counts, I/O and counters as
    the solver entry points."""
    fs, os_ = random_instance(12, 40, 3, seed=8, priorities=True)
    memory = name == "sb-alt"
    idx = build_object_index(os_, page_size=512, memory=memory)
    via_solver = solve(fs, idx, method=name)
    idx2 = build_object_index(os_, page_size=512, memory=memory)
    via_config = AssignmentEngine(engine_config(name)).run(fs, idx2)
    assert via_config.matching.as_dict() == via_solver.matching.as_dict()
    assert via_config.stats.loops == via_solver.stats.loops
    assert via_config.stats.io_accesses == via_solver.stats.io_accesses
    assert via_config.stats.counters == via_solver.stats.counters


def test_auxiliary_io_fold_invariant():
    """The Section 7.6 accounting identity the paper's I/O tables rely
    on: total reported physical reads = object-tree reads + auxiliary
    reads, for every mode that folds auxiliary storage traffic."""
    fs, os_ = random_instance(40, 10, 3, seed=76)

    idx = build_object_index(os_, memory=True)
    paged = solve(fs, idx, method="sb", paged_function_lists=128)
    c = paged.stats.counters
    assert paged.stats.io_accesses == c["object_reads"] + c["function_list_reads"]

    idx = build_object_index(os_, memory=True)
    alt = solve(fs, idx, method="sb-alt", page_size=128)
    c = alt.stats.counters
    assert alt.stats.io_accesses == c["object_reads"] + c["function_list_reads"]
    assert c["function_list_reads"] > 0

    idx = build_object_index(os_, memory=True)
    chain = solve(fs, idx, method="chain", disk_function_tree=True)
    c = chain.stats.counters
    assert chain.stats.io_accesses == c["object_reads"] + c["function_tree_reads"]
    assert c["function_tree_reads"] > 0


def test_custom_strategy_combination():
    """A combination no named solver ships — DeltaSky maintenance with
    the batch TA sweep and single-pair commits — still produces the
    canonical stable matching (strategies are orthogonal)."""
    fs, os_ = random_instance(10, 25, 3, seed=13)
    config = EngineConfig(
        name="custom",
        build_maintenance=lambda ctx: build_object_skyline(ctx, "deltasky"),
        build_round=lambda ctx: MutualBestRound(
            ctx, BatchTASearch(ctx, page_size=256)
        ),
        build_commit=lambda ctx: SinglePairCommit(ctx),
    )
    idx = build_object_index(os_, page_size=512, memory=True)
    result = AssignmentEngine(config).run(fs, idx)
    assert result.matching.as_dict() == oracle(fs, os_)


def test_fsky_search_with_priorities():
    fs, os_ = random_instance(10, 25, 3, seed=21, priorities=True)
    config = EngineConfig(
        name="custom-fsky",
        build_maintenance=lambda ctx: build_object_skyline(ctx, "update-skyline"),
        build_round=lambda ctx: MutualBestRound(ctx, FskySearch(ctx)),
        build_commit=lambda ctx: MultiPairCommit(ctx),
    )
    idx = build_object_index(os_, page_size=512)
    result = AssignmentEngine(config).run(fs, idx)
    assert result.matching.as_dict() == oracle(fs, os_)


# ---------------------------------------------------------------------------
# Dispatcher / config plumbing
# ---------------------------------------------------------------------------


def test_unknown_engine_config_rejected():
    with pytest.raises(ValueError, match="unknown engine config"):
        engine_config("nope")


def test_engine_config_rejects_solve_kwargs():
    fs, os_ = random_instance(3, 6, 2, seed=1)
    idx = build_object_index(os_, page_size=512)
    with pytest.raises(TypeError, match="EngineConfig"):
        solve(fs, idx, method=engine_config("sb"), multi_pair=False)


def test_unknown_maintenance_strategy_rejected():
    fs, os_ = random_instance(3, 6, 2, seed=2)
    idx = build_object_index(os_, page_size=512)
    config = EngineConfig(
        name="bad",
        build_maintenance=lambda ctx: build_object_skyline(ctx, "bogus"),
        build_round=lambda ctx: MutualBestRound(
            ctx, ReverseTASearch(ctx, resume=True, biased=True, omega=None)
        ),
        build_commit=lambda ctx: MultiPairCommit(ctx),
    )
    with pytest.raises(ValueError, match="unknown maintenance"):
        AssignmentEngine(config).run(fs, idx)


def test_empty_functions_early_return():
    fs = FunctionSet([])
    _, os_ = random_instance(1, 5, 2, seed=3)
    idx = build_object_index(os_, page_size=512)
    for name in sorted(ENGINE_CONFIGS):
        result = AssignmentEngine(engine_config(name)).run(fs, idx)
        assert len(result.matching) == 0
        assert result.stats.loops == 0


# ---------------------------------------------------------------------------
# Protocol conformance
# ---------------------------------------------------------------------------


def test_skyline_managers_satisfy_protocol():
    for cls in (UpdateSkylineManager, DeltaSkyManager, NoSkyline):
        assert issubclass(cls, SkylineMaintenance), cls.__name__


def test_searches_satisfy_protocol():
    for cls in (ReverseTASearch, BatchTASearch, FskySearch):
        assert issubclass(cls, BestPairSearch), cls.__name__
