"""Block-Nested-Loops skyline [Börzsönyi et al., ICDE 2001].

BNL scans the input once per pass, keeping candidate (so far
undominated) points in a bounded memory window.  When the window
overflows, points are spilled to a temporary file and re-examined in
the next pass; a window point can be output as soon as every point
that entered the pass after it has been compared against it (tracked
with timestamps, as in the original paper).

This is the paper's citation [4]; it serves as an index-free baseline
and cross-check for BBS.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.rtree.geometry import dominates

Point = tuple[float, ...]


def bnl_skyline(
    items: Sequence[tuple[int, Point]], window_size: int | None = None
) -> dict[int, Point]:
    """Skyline via BNL with a window of ``window_size`` candidates
    (unbounded if ``None``)."""
    if window_size is not None and window_size < 1:
        raise ValueError("window_size must be >= 1")

    result: dict[int, Point] = {}
    # Current input: (timestamp, oid, point).  Timestamps implement the
    # classic BNL output rule across passes.
    pending: list[tuple[int, int, Point]] = [
        (0, oid, p) for oid, p in items
    ]
    clock = 0

    while pending:
        window: list[tuple[int, int, Point]] = []  # (entered_at, oid, point)
        overflow: list[tuple[int, int, Point]] = []

        for entered_at, oid, p in pending:
            clock += 1
            dominated = False
            survivors: list[tuple[int, int, Point]] = []
            for w_time, w_oid, w_p in window:
                if dominated:
                    survivors.append((w_time, w_oid, w_p))
                    continue
                if dominates(w_p, p):
                    dominated = True
                    survivors.append((w_time, w_oid, w_p))
                elif not dominates(p, w_p):
                    survivors.append((w_time, w_oid, w_p))
                # else: the window point is dominated by p and dropped.
            window = survivors
            if dominated:
                continue
            if window_size is None or len(window) < window_size:
                window.append((clock, oid, p))
            else:
                # Window full: p must also be compared with the
                # overflow of this pass in the next pass.
                overflow.append((clock, oid, p))

        if not overflow:
            # Last pass: everything left in the window is skyline.
            for _, oid, p in window:
                result[oid] = p
            break

        first_overflow_time = overflow[0][0]
        next_pending: list[tuple[int, int, Point]] = []
        for w_time, w_oid, w_p in window:
            if w_time < first_overflow_time:
                # Compared against every later point: confirmed skyline.
                result[w_oid] = w_p
            else:
                next_pending.append((w_time, w_oid, w_p))
        next_pending.extend(overflow)
        # Re-examine in arrival order (stable across passes).
        next_pending.sort()
        pending = next_pending

    return result
