"""Synthetic data generators.

Object sets follow the Börzsönyi et al. [4] methodology the paper
cites for its benchmarks:

- *independent* — attribute values uniform and independent;
- *correlated* — objects good in one dimension tend to be good in all
  (points spread around the main diagonal);
- *anti-correlated* — objects good in one dimension tend to be poor in
  the others (points spread around a hyperplane perpendicular to the
  diagonal), the hardest case for skylines and the paper's default.

Function weights are drawn independently and normalized to sum to 1
(Section 3); ``clustered_weights`` reproduces the Figure 12 setup
(C Gaussian clusters with σ=0.05 around random centers).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.data.instances import FunctionSet, ObjectSet

if TYPE_CHECKING:
    from repro.api.events import Event


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def independent_points(n: int, dims: int, seed=None) -> np.ndarray:
    """Uniform, independent attribute values in [0, 1]."""
    return _rng(seed).random((n, dims))


def correlated_points(n: int, dims: int, seed=None, spread: float = 0.12) -> np.ndarray:
    """Points near the main diagonal: a shared base value per object
    plus small independent Gaussian offsets, clipped to [0, 1]."""
    rng = _rng(seed)
    base = rng.random((n, 1))
    pts = base + rng.normal(0.0, spread, (n, dims))
    return np.clip(pts, 0.0, 1.0)


def anti_correlated_points(
    n: int, dims: int, seed=None, spread: float = 0.12
) -> np.ndarray:
    """Points near a hyperplane perpendicular to the diagonal.

    Each object draws a per-dimension average ``t ~ N(0.5, spread)``
    and splits the mass ``t * dims`` across dimensions with a uniform
    Dirichlet draw; samples leaving the unit cube are rejected.  The
    attribute sum is nearly constant, so being good somewhere forces
    being poor elsewhere — the paper's default (hardest) distribution.
    """
    rng = _rng(seed)
    out = np.empty((n, dims))
    filled = 0
    while filled < n:
        batch = max(1024, 2 * (n - filled))
        t = rng.normal(0.5, spread, batch)
        shares = rng.dirichlet(np.ones(dims), batch)
        pts = shares * (t * dims)[:, None]
        ok = (t > 0.0) & (t < 1.0) & (pts <= 1.0).all(axis=1) & (pts >= 0.0).all(axis=1)
        good = pts[ok]
        take = min(len(good), n - filled)
        out[filled : filled + take] = good[:take]
        filled += take
    return out


_OBJECT_GENERATORS = {
    "independent": independent_points,
    "correlated": correlated_points,
    "anti-correlated": anti_correlated_points,
}


def make_objects(
    n: int,
    dims: int,
    distribution: str = "anti-correlated",
    seed=None,
    capacities: list[int] | None = None,
) -> ObjectSet:
    """Build an :class:`ObjectSet` with one of the three benchmark
    distributions (paper Section 7)."""
    try:
        gen = _OBJECT_GENERATORS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(_OBJECT_GENERATORS)}"
        ) from None
    pts = gen(n, dims, seed)
    return ObjectSet([tuple(row) for row in pts], capacities=capacities)


def uniform_weights(n: int, dims: int, seed=None) -> np.ndarray:
    """Independently drawn weights, normalized to sum to 1 per function
    (the paper's "weights generated independently")."""
    rng = _rng(seed)
    raw = rng.random((n, dims))
    # A zero row has probability 0 but would break normalization.
    raw = np.maximum(raw, 1e-12)
    return raw / raw.sum(axis=1, keepdims=True)


def clustered_weights(
    n: int,
    dims: int,
    n_clusters: int,
    seed=None,
    sigma: float = 0.05,
) -> np.ndarray:
    """Figure 12's clustered weight distribution: C random centers,
    Gaussian spread σ around the chosen center, clipped non-negative
    and renormalized to sum to 1."""
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = _rng(seed)
    centers = uniform_weights(n_clusters, dims, rng)
    choice = rng.integers(0, n_clusters, n)
    raw = centers[choice] + rng.normal(0.0, sigma, (n, dims))
    raw = np.clip(raw, 1e-12, None)
    return raw / raw.sum(axis=1, keepdims=True)


def make_functions(
    n: int,
    dims: int,
    seed=None,
    n_clusters: int | None = None,
    gammas: list[float] | None = None,
    capacities: list[int] | None = None,
) -> FunctionSet:
    """Build a :class:`FunctionSet`; clustered if ``n_clusters`` given."""
    if n_clusters is None:
        w = uniform_weights(n, dims, seed)
    else:
        w = clustered_weights(n, dims, n_clusters, seed)
    return FunctionSet(
        [tuple(row) for row in w], gammas=gammas, capacities=capacities
    )


def random_priorities(n: int, max_gamma: int, seed=None) -> list[float]:
    """Priorities drawn uniformly from {1, ..., max_gamma} (Section 7.4)."""
    if max_gamma < 1:
        raise ValueError("max_gamma must be >= 1")
    rng = _rng(seed)
    return [float(g) for g in rng.integers(1, max_gamma + 1, n)]


def zipf_probabilities(n: int, s: float) -> np.ndarray:
    """Bounded Zipf pmf over ranks ``1..n``: ``p(r) ∝ r^-s``.

    ``s=0`` degenerates to uniform; larger ``s`` concentrates mass on
    the first ranks.  Bounded (unlike ``numpy.random.zipf``) so it can
    drive choices over a finite catalogue set or size range.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if s < 0:
        raise ValueError("zipf exponent must be >= 0")
    weights = np.arange(1, n + 1, dtype=np.float64) ** -s
    return weights / weights.sum()


@dataclass(frozen=True)
class CohortRequest:
    """One simulated arrival: a preference cohort against a catalogue.

    ``catalogue`` is shared *by identity* across requests hitting the
    same catalogue rank, so downstream index caches see genuine reuse.
    """

    request_id: int
    catalogue_id: int
    catalogue: ObjectSet
    functions: FunctionSet


def request_stream(
    n_requests: int,
    catalogues: int | Sequence[ObjectSet] = 4,
    *,
    n_objects: int = 512,
    dims: int = 3,
    distribution: str = "anti-correlated",
    catalogue_skew: float = 1.1,
    cohort_skew: float = 1.5,
    max_cohort: int = 64,
    seed=None,
) -> Iterator[CohortRequest]:
    """Zipf-skewed request arrivals for load-testing the serving layer.

    Models the two skews real assignment services see (conference
    cohorts, seminar allocation rounds): *catalogue popularity* — a few
    hot catalogues take most of the traffic (``catalogue_skew`` over
    catalogue rank, so rank 0 is the hottest) — and *cohort size* —
    most arrivals are small cohorts with a heavy tail of large ones
    (``cohort_skew`` over sizes ``1..max_cohort``).  Pass prebuilt
    ``catalogues`` to control them, or an int to synthesize that many
    with :func:`make_objects` (``n_objects``/``dims``/``distribution``).
    """
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if max_cohort < 1:
        raise ValueError("max_cohort must be >= 1")
    rng = _rng(seed)
    if isinstance(catalogues, int):
        if catalogues < 1:
            raise ValueError("need at least one catalogue")
        pool = [
            make_objects(n_objects, dims, distribution, seed=rng)
            for _ in range(catalogues)
        ]
    else:
        pool = list(catalogues)
        if not pool:
            raise ValueError("need at least one catalogue")
    catalogue_p = zipf_probabilities(len(pool), catalogue_skew)
    sizes = np.arange(1, max_cohort + 1)
    size_p = zipf_probabilities(max_cohort, cohort_skew)
    for request_id in range(n_requests):
        catalogue_id = int(rng.choice(len(pool), p=catalogue_p))
        catalogue = pool[catalogue_id]
        cohort_size = int(rng.choice(sizes, p=size_p))
        yield CohortRequest(
            request_id=request_id,
            catalogue_id=catalogue_id,
            catalogue=catalogue,
            functions=make_functions(cohort_size, catalogue.dims, seed=rng),
        )


def churn_stream(
    n_events: int,
    functions: FunctionSet,
    objects: ObjectSet,
    *,
    arrival_fraction: float = 0.5,
    object_fraction: float = 0.7,
    departure_skew: float = 1.1,
    distribution: str = "anti-correlated",
    max_capacity: int = 1,
    max_priority: int = 1,
    seed=None,
) -> Iterator[Event]:
    """Zipf-skewed churn events over a seeded population.

    Models the paper's future-work scenario at the ROADMAP's "running
    system" scale: a mostly-stable population with high-rate *edge*
    churn.  Each event hits the object side with probability
    ``object_fraction`` and is an arrival with probability
    ``arrival_fraction``; departures pick a live handle Zipf-skewed by
    *recency rank* (``departure_skew``; rank 0 is the newest arrival),
    so recently allocated participants turn over fastest while the
    seed population persists — the regime where suffix rematching
    beats re-solving.  Arrivals draw points from ``distribution``,
    weights from :func:`uniform_weights`, capacities uniform in
    ``1..max_capacity`` and priorities in ``1..max_priority``.

    Handle bookkeeping mirrors the consumers exactly — the seed
    population holds positional handles and every arrival takes the
    next integer on its side, matching both
    :class:`~repro.core.dynamic.DynamicStableMatching` and
    :meth:`AssignmentSession.apply <repro.api.session.AssignmentSession.apply>`
    — so departure events can name handles without feedback from the
    consumer.  A side is never churned below one live participant.
    Deterministic for a given ``seed``.
    """
    if n_events < 0:
        raise ValueError("n_events must be >= 0")
    if not 0.0 <= arrival_fraction <= 1.0:
        raise ValueError("arrival_fraction must be in [0, 1]")
    if not 0.0 <= object_fraction <= 1.0:
        raise ValueError("object_fraction must be in [0, 1]")
    if max_capacity < 1:
        raise ValueError("max_capacity must be >= 1")
    if max_priority < 1:
        raise ValueError("max_priority must be >= 1")
    if distribution not in _OBJECT_GENERATORS:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {sorted(_OBJECT_GENERATORS)}"
        )
    # Imported lazily: repro.api sits above repro.data in the layering
    # (api -> data for instances), so a module-level import here would
    # initialize the two packages mutually.
    from repro.api.events import (
        FunctionArrived,
        FunctionDeparted,
        ObjectArrived,
        ObjectDeparted,
    )

    rng = _rng(seed)
    dims = objects.dims
    live_f = list(range(len(functions)))
    live_o = list(range(len(objects)))
    next_f = len(functions)
    next_o = len(objects)
    gen_point = _OBJECT_GENERATORS[distribution]
    for _ in range(n_events):
        object_side = bool(rng.random() < object_fraction)
        live = live_o if object_side else live_f
        # Departures need a survivor: the matching over an empty side
        # is trivially empty and benchmarks nothing.
        arrival = bool(rng.random() < arrival_fraction) or len(live) <= 1
        if arrival:
            capacity = int(rng.integers(1, max_capacity + 1))
            if object_side:
                point = tuple(float(x) for x in gen_point(1, dims, rng)[0])
                live.append(next_o)
                next_o += 1
                yield ObjectArrived(point=point, capacity=capacity)
            else:
                weights = tuple(float(x) for x in uniform_weights(1, dims, rng)[0])
                priority = float(rng.integers(1, max_priority + 1))
                live.append(next_f)
                next_f += 1
                yield FunctionArrived(
                    weights=weights, priority=priority, capacity=capacity
                )
        else:
            rank = int(
                rng.choice(
                    len(live), p=zipf_probabilities(len(live), departure_skew)
                )
            )
            handle = live.pop(len(live) - 1 - rank)
            if object_side:
                yield ObjectDeparted(oid=handle)
            else:
                yield FunctionDeparted(fid=handle)


def random_capacities(n: int, k: int, seed=None, fixed: bool = True) -> list[int]:
    """Capacities for Section 7.3: all equal to ``k`` when ``fixed``,
    else uniform in {1..k}."""
    if k < 1:
        raise ValueError("capacity must be >= 1")
    if fixed:
        return [k] * n
    rng = _rng(seed)
    return [int(c) for c in rng.integers(1, k + 1, n)]
