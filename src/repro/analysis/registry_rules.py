"""REP30x — registry ↔ calibration ↔ dispatch consistency.

PR 5 made :data:`repro.planner.registry.REGISTRY` the one table every
layer dispatches from.  These rules keep the satellites that *cannot*
be derived views — the checked-in calibration table, the engine-config
map, the identity test's forced-pick list — from drifting away from
it:

- **REP301** — a plannable :class:`SolverSpec` has no calibration row:
  the planner would cost it with the pessimistic ``DEFAULT_ROW`` and
  effectively never pick it;
- **REP302** — registry ↔ ``ENGINE_CONFIGS`` mismatch (an
  engine-backed spec missing from the config map, or a config entry no
  spec claims);
- **REP303** — a plannable spec is not exercised by the identity
  test's forced-pick list (a config ``method="auto"`` can emit without
  a bit-identity guarantee test);
- **REP304** — ``core.solve``'s ``SOLVERS`` / ``SOLVER_OPTIONS``
  tables are no longer *derived* from the registry (a literal dict
  re-introduces the pre-PR-5 split-brain);
- **REP305** — a stale calibration row neither a plannable spec nor a
  churn backend (``plan_churn``) references; REP301 also fires for a
  churn backend cost key with no calibrated row.

The checks run on a :class:`RegistryView` — by default snapshotted
from the live registry/calibration/config tables (they are canonical;
re-parsing them from source would just re-implement Python) — while
the *test* and *derived-view* checks parse source, because what they
verify is how the code is written, not what it evaluates to.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

RULE_MISSING_CALIBRATION = "REP301"
RULE_ENGINE_CONFIG_MISMATCH = "REP302"
RULE_MISSING_FORCED_PICK = "REP303"
RULE_UNDERIVED_VIEW = "REP304"
RULE_STALE_CALIBRATION = "REP305"

#: The derived-view names ``repro.core`` must build from the registry.
DERIVED_VIEWS = ("SOLVERS", "SOLVER_OPTIONS")


@dataclass(frozen=True)
class RegistryView:
    """The cross-checked facts, decoupled from the live modules so
    tests can seed inconsistent views."""

    #: ``{spec name: cost key}`` of plannable specs.
    plannable: dict[str, str]
    #: Names of engine-backed specs (``config_factory`` present).
    engine_backed: frozenset[str]
    #: Keys of ``ENGINE_CONFIGS``.
    engine_configs: frozenset[str]
    #: Keys of the checked-in ``CALIBRATION`` table.
    calibration: frozenset[str]
    #: Cost keys of the churn backends (``plan_churn`` candidates) —
    #: calibrated rows that intentionally match no registry spec.
    churn_cost_keys: frozenset[str] = frozenset()
    #: Source anchors (findings point at the drifted artifact).
    calibration_path: str = "src/repro/planner/calibration.py"
    configs_path: str = "src/repro/engine/configs.py"
    identity_test_path: str = "tests/test_planner_identity.py"
    core_init_path: str = "src/repro/core/__init__.py"
    root: Path = field(default_factory=Path)

    @classmethod
    def live(cls, root: Path) -> "RegistryView":
        """Snapshot the real tables (imports the repro package)."""
        from repro.engine.configs import ENGINE_CONFIGS
        from repro.planner.calibration import CALIBRATION
        from repro.planner.plan import CHURN_COST_KEYS
        from repro.planner.registry import REGISTRY

        return cls(
            plannable={s.name: s.cost_key for s in REGISTRY.plannable()},
            engine_backed=frozenset(s.name for s in REGISTRY if s.engine_backed),
            engine_configs=frozenset(ENGINE_CONFIGS),
            calibration=frozenset(CALIBRATION),
            churn_cost_keys=frozenset(CHURN_COST_KEYS.values()),
            root=root,
        )


def _anchor(root: Path, rel_path: str, symbol: str) -> int:
    """Line of ``symbol``'s (ann)assignment in a source file, for
    anchoring a cross-file finding; 1 when unresolvable."""
    try:
        tree = ast.parse((root / rel_path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return 1
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == symbol:
                return node.lineno
    return 1


def _forced_pick_names(root: Path, rel_path: str) -> tuple[bool, set[str]]:
    """``(derived_from_registry, literal names)`` for the identity test.

    A test that computes its pick list via ``REGISTRY.plannable()``
    covers every plannable spec by construction.  Otherwise the string
    literals in the file are the candidate names to check against.
    """
    try:
        source = (root / rel_path).read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError):
        return False, set()
    literals: set[str] = set()
    derived = False
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "plannable"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "REGISTRY"
        ):
            derived = True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            literals.add(node.value)
    return derived, literals


def _underived_views(root: Path, rel_path: str) -> list[tuple[str, int]]:
    """Derived-view assignments in ``core/__init__`` whose right-hand
    side never references ``REGISTRY`` → ``[(name, line), ...]``."""
    try:
        tree = ast.parse((root / rel_path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return []
    stale: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if not (isinstance(target, ast.Name) and target.id in DERIVED_VIEWS):
                continue
            references_registry = any(
                isinstance(sub, ast.Name) and sub.id == "REGISTRY"
                for sub in ast.walk(value)
            )
            if not references_registry:
                stale.append((target.id, node.lineno))
    return stale


def check_registry(view: RegistryView) -> list[Finding]:
    """Run every registry-consistency rule over one view."""
    findings: list[Finding] = []
    root = view.root

    calibration_line = _anchor(root, view.calibration_path, "CALIBRATION")
    for name, cost_key in sorted(view.plannable.items()):
        if cost_key not in view.calibration:
            findings.append(
                Finding(
                    rule=RULE_MISSING_CALIBRATION,
                    path=view.calibration_path,
                    line=calibration_line,
                    scope="CALIBRATION",
                    message=(
                        f"plannable solver '{name}' has no calibration row "
                        f"for cost key '{cost_key}': the planner would fall "
                        "back to the pessimistic DEFAULT_ROW and never pick "
                        "it — refit with bench_planner.py --calibrate"
                    ),
                )
            )
    for cost_key in sorted(view.churn_cost_keys - view.calibration):
        findings.append(
            Finding(
                rule=RULE_MISSING_CALIBRATION,
                path=view.calibration_path,
                line=calibration_line,
                scope="CALIBRATION",
                message=(
                    f"churn backend cost key '{cost_key}' has no calibration "
                    "row: plan_churn would rank it by the pessimistic "
                    "DEFAULT_ROW — refit with bench_churn.py --calibrate"
                ),
            )
        )
    referenced = set(view.plannable.values()) | view.churn_cost_keys
    for cost_key in sorted(view.calibration - referenced):
        findings.append(
            Finding(
                rule=RULE_STALE_CALIBRATION,
                path=view.calibration_path,
                line=calibration_line,
                scope="CALIBRATION",
                severity="warning",
                message=(
                    f"calibration row '{cost_key}' matches no plannable "
                    "spec's cost key (nor a churn backend's): stale row "
                    "from a removed or renamed solver"
                ),
            )
        )

    configs_line = _anchor(root, view.configs_path, "ENGINE_CONFIGS")
    for name in sorted(view.engine_backed - view.engine_configs):
        findings.append(
            Finding(
                rule=RULE_ENGINE_CONFIG_MISMATCH,
                path=view.configs_path,
                line=configs_line,
                scope="ENGINE_CONFIGS",
                message=(
                    f"engine-backed solver '{name}' has no ENGINE_CONFIGS "
                    "entry: engine_config() and the bench harness cannot "
                    "build it"
                ),
            )
        )
    for name in sorted(view.engine_configs - view.engine_backed):
        findings.append(
            Finding(
                rule=RULE_ENGINE_CONFIG_MISMATCH,
                path=view.configs_path,
                line=configs_line,
                scope="ENGINE_CONFIGS",
                message=(
                    f"ENGINE_CONFIGS entry '{name}' matches no engine-backed "
                    "registry spec: unreachable config (or a spec lost its "
                    "config_factory)"
                ),
            )
        )

    derived, literals = _forced_pick_names(root, view.identity_test_path)
    if not derived:
        missing = sorted(set(view.plannable) - literals)
        for name in missing:
            findings.append(
                Finding(
                    rule=RULE_MISSING_FORCED_PICK,
                    path=view.identity_test_path,
                    line=1,
                    scope="<module>",
                    message=(
                        f"plannable solver '{name}' is not in the identity "
                        "test's forced-pick list: method='auto' can emit a "
                        "config with no bit-identity guarantee test (derive "
                        "the list from REGISTRY.plannable())"
                    ),
                )
            )

    for name, line in _underived_views(root, view.core_init_path):
        findings.append(
            Finding(
                rule=RULE_UNDERIVED_VIEW,
                path=view.core_init_path,
                line=line,
                scope=name,
                message=(
                    f"'{name}' is assigned without referencing REGISTRY: "
                    "core.solve's dispatch tables must stay derived views "
                    "of the solver registry (PR 5), not literal copies"
                ),
            )
        )
    return findings


__all__ = [
    "DERIVED_VIEWS",
    "RULE_ENGINE_CONFIG_MISMATCH",
    "RULE_MISSING_CALIBRATION",
    "RULE_MISSING_FORCED_PICK",
    "RULE_STALE_CALIBRATION",
    "RULE_UNDERIVED_VIEW",
    "RegistryView",
    "check_registry",
]
