"""Perf-trajectory baseline for the engine refactor.

Runs the paper's Table 2 default configuration (scaled, see
``repro.bench.config``) through the ``sb`` solver and records
wall-time / I/O / memory into ``BENCH_engine.json`` next to this
script.  Run once before a refactor with ``--label pre_refactor`` and
once after with ``--label post_refactor``; later PRs append further
labelled snapshots so the repo carries its own perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_refactor.py --label post_refactor
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
from pathlib import Path

from repro.bench.config import current_scale, defaults
from repro.bench.harness import clear_caches, make_instance, run_cell

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def measure(method: str, repeats: int) -> dict:
    d = defaults()
    functions, objects = make_instance(d.nf, d.no, d.dims, d.distribution, seed=2)
    cells = [
        run_cell(
            method,
            functions,
            objects,
            buffer_fraction=d.buffer_fraction,
            page_size=d.page_size,
        )
        for _ in range(repeats)
    ]
    times = [c.cpu_seconds for c in cells]
    return {
        "method": method,
        "scale": current_scale(),
        "nf": d.nf,
        "no": d.no,
        "dims": d.dims,
        "repeats": repeats,
        "wall_seconds_median": statistics.median(times),
        "wall_seconds_min": min(times),
        "io_accesses": cells[0].io,
        "peak_memory_bytes": cells[0].memory_bytes,
        "loops": cells[0].loops,
        "pairs": cells[0].pairs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label", required=True,
        help="snapshot name, e.g. pre_refactor / post_refactor",
    )
    parser.add_argument("--method", default="sb")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    clear_caches()
    snapshot = measure(args.method, args.repeats)
    snapshot["python"] = platform.python_version()

    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    results[args.label] = snapshot
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"{args.label}: {snapshot['wall_seconds_median']:.3f}s median "
          f"({snapshot['io_accesses']} page reads) -> {RESULT_PATH}")


if __name__ == "__main__":
    main()
