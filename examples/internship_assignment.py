#!/usr/bin/env python3
"""Internship assignment with capacities and student priorities.

The paper's running scenario, at a realistic scale: companies publish
positions described by salary, standing, mentoring and flexibility
scores; identical openings at one company are a single object with a
capacity (Section 6.1).  Students weight the four attributes and carry
a priority equal to their year of study (Section 6.2) — a 4th-year
student beats a 2nd-year student competing for the same position.

Run:  python examples/internship_assignment.py
"""

import numpy as np

from repro import FunctionSet, ObjectSet
from repro.api import AssignmentSession, Problem

RNG = np.random.default_rng(2009)

N_COMPANIES = 400
N_STUDENTS = 300
ATTRS = ["salary", "standing", "mentoring", "flexibility"]


def make_positions() -> tuple[ObjectSet, list[str]]:
    """Companies with anti-correlated salary/standing (startups pay,
    blue chips impress) and a capacity of 1-5 identical openings."""
    salary = RNG.random(N_COMPANIES)
    standing = np.clip(1.0 - salary + RNG.normal(0, 0.15, N_COMPANIES), 0, 1)
    mentoring = RNG.random(N_COMPANIES)
    flexibility = RNG.random(N_COMPANIES)
    points = np.stack([salary, standing, mentoring, flexibility], axis=1)
    capacities = RNG.integers(1, 6, N_COMPANIES).tolist()
    names = [f"company-{i:03d}" for i in range(N_COMPANIES)]
    return ObjectSet([tuple(p) for p in points], capacities=capacities), names


def make_students() -> tuple[FunctionSet, list[str]]:
    """Students fill the paper's Table 1 form: 1-5 stars per attribute,
    normalized to weights; seniority (year 1-4) becomes the priority."""
    stars = RNG.integers(1, 6, (N_STUDENTS, len(ATTRS))).astype(float)
    weights = stars / stars.sum(axis=1, keepdims=True)
    years = RNG.integers(1, 5, N_STUDENTS)
    names = [f"student-{i:03d} (year {y})" for i, y in enumerate(years)]
    return (
        FunctionSet([tuple(w) for w in weights], gammas=[float(y) for y in years]),
        names,
    )


def main() -> None:
    positions, company_names = make_positions()
    students, student_names = make_students()

    problem = Problem.from_sets(positions, students, method="sb")
    with AssignmentSession(problem) as session:
        solution = session.solve().verify()
    stats = solution.stats

    print(f"{solution.num_units} of {N_STUDENTS} students placed across "
          f"{len(solution.pairs)} (student, company) pairs.\n")

    print("First ten assignments in stable order:")
    for pair in solution.pairs[:10]:
        print(f"  {student_names[pair.fid]:26s} -> {company_names[pair.oid]}"
              f"   score {pair.score:.3f}")

    # Seniority should visibly pay off: compare mean raw (un-scaled)
    # satisfaction by year.
    year_scores: dict[int, list[float]] = {1: [], 2: [], 3: [], 4: []}
    for pair in solution.pairs:
        year = int(students.gamma(pair.fid))
        raw = pair.score / students.gamma(pair.fid)
        year_scores[year].extend([raw] * pair.count)
    print("\nMean raw satisfaction by seniority (priorities at work):")
    for year in (4, 3, 2, 1):
        scores = year_scores[year]
        mean = sum(scores) / len(scores) if scores else float("nan")
        print(f"  year {year}: {mean:.3f}  ({len(scores)} students)")

    print(f"\nSolver cost: {stats.io_accesses} page reads, "
          f"{stats.loops} loops, {stats.cpu_seconds:.2f}s CPU, "
          f"{stats.peak_memory_bytes / 1024:.0f} KiB peak search memory.")


if __name__ == "__main__":
    main()
