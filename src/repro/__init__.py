"""repro — reproduction of "A Fair Assignment Algorithm for Multiple
Preference Queries" (U, Mamoulis, Mouratidis; VLDB 2009).

Compute a fair (stable-marriage) 1-1 assignment between a set of
linear preference functions and a set of multidimensional objects.

Quickstart::

    from repro import FunctionSet, ObjectSet, build_object_index, solve

    objects = ObjectSet([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
    functions = FunctionSet([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
    index = build_object_index(objects)
    matching, stats = solve(functions, index, method="sb")
    for pair in matching.pairs:
        print(f"user {pair.fid} -> position {pair.oid} (score {pair.score:.2f})")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.core import (
    AssignedPair,
    AssignmentResult,
    Matching,
    ObjectIndex,
    RunStats,
    build_object_index,
    solve,
)
from repro.data.instances import FunctionSet, ObjectSet
from repro.engine import AssignmentEngine, EngineConfig, engine_config
from repro.service import BatchSolver, JobResult, SolveJob

__version__ = "1.0.0"

__all__ = [
    "AssignedPair",
    "AssignmentEngine",
    "AssignmentResult",
    "BatchSolver",
    "EngineConfig",
    "FunctionSet",
    "JobResult",
    "Matching",
    "ObjectIndex",
    "ObjectSet",
    "RunStats",
    "SolveJob",
    "build_object_index",
    "engine_config",
    "solve",
    "__version__",
]
