"""Prometheus text exposition of the ``/metrics`` JSON snapshots.

``/metrics`` stays JSON by default; a scraper asking with ``Accept:
text/plain`` (or ``?format=prometheus``) gets the same snapshot in the
`text exposition format`_ version 0.0.4 — so the fleet is scrapeable
by stock Prometheus without the servers taking any dependency.

The renderer is driven by the snapshot's shape, with two structural
rules and a handful of labelled sections:

- a dict carrying ``buckets``/``count``/``sum_seconds`` (the repo's
  :class:`~repro.server.metrics.LatencyHistogram` ``to_dict`` shape)
  becomes a Prometheus histogram — note the conversion: the repo
  stores *per-bucket* counts, the exposition format wants
  *cumulative* ``le`` counts;
- any other numeric leaf becomes a gauge named by its dotted path.

Dict sections whose keys are identities rather than schema (latency
per method, forward latency and snapshots per backend, planner picks,
responses per status) render those keys as label values — escaped per
the format's rules (backslash, double quote, newline).

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import re
from collections.abc import Mapping

_NAME_CLEAN = re.compile(r"[^a-zA-Z0-9_:]")

#: Snapshot sections whose immediate keys are label values, not metric
#: name parts: ``section path -> label name``.
_LABELLED_SECTIONS = {
    ("latency",): "method",
    ("forward_latency",): "backend",
    ("backends",): "backend",
    ("http", "responses_by_status"): "status",
    ("planner", "picks"): "method",
    ("fleet", "planner", "picks"): "method",
    ("fleet", "http", "responses_by_status"): "status",
}


def escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def metric_name(parts: tuple[str, ...]) -> str:
    name = "_".join(_NAME_CLEAN.sub("_", str(p)) for p in parts)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _is_histogram(value: Mapping) -> bool:
    return "buckets" in value and "count" in value and "sum_seconds" in value


def _emit_histogram(
    lines: list[str], name: str, labels: dict[str, str], hist: Mapping
) -> None:
    cumulative = 0
    # The snapshot's buckets are per-bucket counts keyed by upper
    # bound (insertion-ordered ascending, "+inf" last); the exposition
    # format wants cumulative counts per ``le``.
    for bound, count in hist["buckets"].items():
        cumulative += count
        le = "+Inf" if bound == "+inf" else bound
        lines.append(
            f"{name}_bucket{_format_labels({**labels, 'le': le})}"
            f" {cumulative}"
        )
    lines.append(f"{name}_count{_format_labels(labels)} {hist['count']}")
    lines.append(
        f"{name}_sum{_format_labels(labels)} {_format_value(hist['sum_seconds'])}"
    )
    for quantile_key in ("p50_seconds", "p99_seconds", "max_seconds"):
        if quantile_key in hist:
            lines.append(
                f"{name}_{quantile_key}{_format_labels(labels)}"
                f" {_format_value(hist[quantile_key])}"
            )


def _walk(
    lines: list[str],
    path: tuple[str, ...],
    section: tuple[str, ...],
    labels: dict[str, str],
    value,
    prefix: str,
) -> None:
    if isinstance(value, Mapping):
        if _is_histogram(value):
            _emit_histogram(lines, f"{prefix}_{metric_name(path)}", labels, value)
            return
        label_name = _LABELLED_SECTIONS.get(section)
        for key, child in value.items():
            if label_name is not None:
                _walk(
                    lines,
                    path,
                    section + (key,),
                    {**labels, label_name: str(key)},
                    child,
                    prefix,
                )
            else:
                _walk(
                    lines,
                    path + (str(key),),
                    section + (str(key),),
                    labels,
                    child,
                    prefix,
                )
        return
    if isinstance(value, (int, float, bool)) and not isinstance(value, str):
        name = f"{prefix}_{metric_name(path)}" if path else prefix
        lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")
    # Strings / None / lists have no numeric reading; skipped.


def render_prometheus(snapshot: Mapping, prefix: str = "repro") -> str:
    """The text exposition document for one ``/metrics`` snapshot."""
    lines: list[str] = []
    # When a labelled section sits under another labelled section
    # (gateway ``backends.{addr}.{...}`` snapshots hold plain leaves),
    # the per-status/per-pick label lookup uses the *section* path with
    # label keys removed — handled by keeping ``section`` as the raw
    # key path and matching prefixes:
    for key, value in snapshot.items():
        _walk(lines, (str(key),), (str(key),), {}, value, prefix)
    return "\n".join(lines) + "\n"


def wants_prometheus(request) -> bool:
    """Content negotiation for ``/metrics``: explicit ``?format=``
    wins; otherwise an ``Accept`` header preferring ``text/plain``."""
    fmt = request.query.get("format")
    if fmt is not None:
        return fmt.lower() in ("prometheus", "text")
    accept = request.headers.get("accept", "")
    return "text/plain" in accept and "application/json" not in accept


PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "escape_label_value",
    "metric_name",
    "render_prometheus",
    "wants_prometheus",
]
