"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.data.instances import FunctionSet, ObjectSet

# ---------------------------------------------------------------------------
# Random instance builders (plain `random`, used by seeded loop tests)
# ---------------------------------------------------------------------------

TIE_VALUES = [0.0, 0.25, 0.5, 0.75, 1.0]


def random_points(n: int, dims: int, rng: random.Random, tie_heavy: bool = False):
    if tie_heavy:
        return [
            tuple(rng.choice(TIE_VALUES) for _ in range(dims)) for _ in range(n)
        ]
    return [tuple(rng.random() for _ in range(dims)) for _ in range(n)]


def random_weights(n: int, dims: int, rng: random.Random, tie_heavy: bool = False):
    out = []
    for _ in range(n):
        if tie_heavy:
            w = [rng.choice(TIE_VALUES) for _ in range(dims)]
        else:
            w = [rng.random() for _ in range(dims)]
        s = sum(w)
        out.append(tuple(x / s for x in w) if s > 0 else tuple([1.0 / dims] * dims))
    return out


def random_instance(
    nf: int,
    no: int,
    dims: int,
    seed: int = 0,
    capacities: bool = False,
    priorities: bool = False,
    tie_heavy: bool = False,
) -> tuple[FunctionSet, ObjectSet]:
    rng = random.Random(seed)
    points = random_points(no, dims, rng, tie_heavy)
    weights = random_weights(nf, dims, rng, tie_heavy)
    fcaps = [rng.randint(1, 3) for _ in range(nf)] if capacities else None
    ocaps = [rng.randint(1, 3) for _ in range(no)] if capacities else None
    gammas = [float(rng.randint(1, 4)) for _ in range(nf)] if priorities else None
    return (
        FunctionSet(weights, gammas=gammas, capacities=fcaps),
        ObjectSet(points, capacities=ocaps),
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

coord = st.one_of(
    st.sampled_from(TIE_VALUES),  # force ties/duplicates often
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)


def points_strategy(dims: int, min_size=1, max_size=40):
    return st.lists(
        st.tuples(*([coord] * dims)), min_size=min_size, max_size=max_size
    )


def weights_strategy(dims: int, min_size=1, max_size=15):
    raw = st.tuples(*([coord] * dims)).filter(lambda w: sum(w) > 0)
    return st.lists(
        raw.map(lambda w: tuple(x / sum(w) for x in w)),
        min_size=min_size,
        max_size=max_size,
    )


@pytest.fixture
def rng():
    return random.Random(1234)
