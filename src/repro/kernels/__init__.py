"""Columnar numpy solve kernels — the vectorized twins of the
interpreted engine configs.

The interpreted solvers walk objects one at a time: per-object reverse
TA searches, R-tree skyline maintenance, per-pair Python bookkeeping.
This package rewrites the engine's inner loops over flat float64
arrays built once per solve (:class:`~repro.kernels.columnar.ColumnarInstance`):

- batch Pareto filtering and incremental skyline-membership
  maintenance (:mod:`repro.kernels.pareto`,
  :class:`~repro.kernels.skyline.VectorizedSkylineMaintenance`);
- one matmul per round answering *both* mutual-best directions
  (fbest and obest) with exact canonical tie-resolution inside a
  rounding-error tolerance band
  (:class:`~repro.kernels.rounds.VectorizedMutualRound`);
- array capacity/alive vectors seeding the masks the kernels filter
  by (per-pair commit bookkeeping stays engine-owned — it is O(pairs),
  not O(|F|·|O|)).

**The oracle discipline.**  Every vectorized config is a *bit-identical
twin* of an interpreted config: same pairs in the same order with the
same float scores, same loop count.  The interpreted configs remain
the ground truth — ``tests/test_kernels.py`` verifies each twin
pair-for-pair (and the planner identity suite exercises the vectorized
configs through batch/session/server on both executors).  Exactness
comes from the MatrixView pattern generalized: numpy produces a
*candidate band* (everything within a term-magnitude-scaled tolerance
of the approximate maximum), and the canonical winner is resolved
inside the band with :func:`repro.scoring.score` and the canonical
tuple orders of :mod:`repro.ordering`.

**Instrumentation.**  ``loops`` and ``skyline_final_size`` are exact
(the round structure is the scalar one).  ``io_accesses`` is 0 by
construction — the kernels never touch the object R-tree — and peak
memory gauges the columnar arrays plus the round score matrix instead
of TA states and BBS heaps; both divergences are documented in the
README's "Columnar kernels" section.
"""

from repro.kernels.columnar import ColumnarInstance
from repro.kernels.configs import (
    VECTORIZED_CONFIGS,
    sb_deltasky_vec_assign,
    sb_deltasky_vec_config,
    sb_vec_assign,
    sb_vec_config,
)
from repro.kernels.dynamic import MutableColumns, VectorizedChurnState
from repro.kernels.pareto import dominated_mask, pareto_mask
from repro.kernels.rounds import VectorizedMutualRound
from repro.kernels.skyline import MaskSkyline, VectorizedSkylineMaintenance

__all__ = [
    "ColumnarInstance",
    "MaskSkyline",
    "MutableColumns",
    "VECTORIZED_CONFIGS",
    "VectorizedChurnState",
    "VectorizedMutualRound",
    "VectorizedSkylineMaintenance",
    "dominated_mask",
    "pareto_mask",
    "sb_deltasky_vec_assign",
    "sb_deltasky_vec_config",
    "sb_vec_assign",
    "sb_vec_config",
]
