"""Console entry point: ``python -m repro.cluster`` / ``repro-gateway``.

Announces the bound address on stdout once the socket is listening —
``--port 0`` picks an ephemeral port, so supervisors (and the CI
cluster-smoke job) parse the announcement line rather than guessing.
Backends are given with repeated ``--backend host:port`` flags (or one
comma-separated ``--backends`` list).
"""

from __future__ import annotations

import argparse

from repro.cluster.app import GatewayConfig, ReproGateway
from repro.obs.log import configure_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gateway",
        description=(
            "Shard fair-assignment solves over a fleet of repro-server "
            "backends via a deterministic consistent-hash ring."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8100,
        help="TCP port; 0 binds an ephemeral port (announced on stdout)",
    )
    parser.add_argument(
        "--backend", action="append", default=[], metavar="HOST:PORT",
        help="one backend repro-server (repeat for each fleet member)",
    )
    parser.add_argument(
        "--backends", default=None, metavar="HOST:PORT,HOST:PORT,...",
        help="comma-separated backend list (alternative to --backend)",
    )
    parser.add_argument(
        "--vnodes", type=int, default=256,
        help="virtual nodes per backend on the hash ring",
    )
    parser.add_argument(
        "--probe-interval", type=float, default=2.0,
        help="seconds between background /healthz sweeps",
    )
    parser.add_argument(
        "--probe-timeout", type=float, default=2.0,
        help="per-probe HTTP timeout (seconds)",
    )
    parser.add_argument(
        "--down-after", type=int, default=2,
        help="consecutive probe failures before a backend is marked down",
    )
    parser.add_argument(
        "--forward-timeout", type=float, default=120.0,
        help="per-forward HTTP timeout (covers backend solve time)",
    )
    parser.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint (seconds) on 503 responses",
    )
    parser.add_argument(
        "--log-level", default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON-lines logs instead of key=value text",
    )
    parser.add_argument(
        "--no-observability", action="store_true",
        help="disable request tracing and trace retention",
    )
    parser.add_argument(
        "--slow-trace-threshold", type=float, default=0.25,
        help=(
            "requests at or over this wall time (seconds) are pinned in "
            "the slow-trace store"
        ),
    )
    parser.add_argument(
        "--log-ring-size", type=int, default=512,
        help="recent log records retained for GET /v1/logs",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    configure_logging(
        level=args.log_level,
        json_mode=args.log_json,
        node=f"{args.host}:{args.port}" if args.port else args.host,
    )
    addresses = list(args.backend)
    if args.backends:
        addresses.extend(
            part.strip() for part in args.backends.split(",") if part.strip()
        )
    if not addresses:
        build_parser().error(
            "at least one backend is required (--backend HOST:PORT)"
        )
    config = GatewayConfig(
        backends=tuple(addresses),
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        probe_interval_seconds=args.probe_interval,
        probe_timeout_seconds=args.probe_timeout,
        down_after=args.down_after,
        forward_timeout_seconds=args.forward_timeout,
        retry_after_seconds=args.retry_after,
        observability=not args.no_observability,
        slow_trace_threshold_seconds=args.slow_trace_threshold,
        log_ring_size=args.log_ring_size,
    )
    gateway = ReproGateway(config)

    def announce(started: ReproGateway) -> None:
        print(
            f"repro-gateway listening on http://{config.host}:{started.port} "
            f"({len(config.backends)} backends)",
            flush=True,
        )

    try:
        gateway.serve_forever(on_started=announce)
    # lint: except-ok(Ctrl-C is the operator's shutdown signal; exit clean)
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
