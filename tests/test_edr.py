"""Exclusive-dominance-region decomposition vs direct membership."""

import random

import pytest
from hypothesis import given, settings

from repro.skyline.edr import (
    dominance_region,
    exclusive_dominance_region,
    point_in_edr,
    point_in_edr_exact,
    subtract_box,
)
from repro.rtree.geometry import Rect

from .conftest import points_strategy


def test_dominance_region_shape():
    r = dominance_region((0.4, 0.7))
    assert r == Rect((0.0, 0.0), (0.4, 0.7))


def test_subtract_disjoint_returns_box():
    box = Rect((0.5, 0.5), (1.0, 1.0))
    cut = Rect((0.0, 0.0), (0.4, 0.4))
    assert subtract_box(box, cut) == [box]


def test_subtract_fully_covered_is_empty():
    box = Rect((0.1, 0.1), (0.3, 0.3))
    cut = Rect((0.0, 0.0), (0.5, 0.5))
    assert subtract_box(box, cut) == []


def test_subtract_corner_overlap_areas_sum():
    box = Rect((0.0, 0.0), (1.0, 1.0))
    cut = Rect((0.0, 0.0), (0.5, 0.5))
    pieces = subtract_box(box, cut)
    assert sum(p.area() for p in pieces) == pytest.approx(0.75)
    # Pieces are pairwise interior-disjoint.
    for i in range(len(pieces)):
        for j in range(i + 1, len(pieces)):
            a, b = pieces[i], pieces[j]
            if a.intersects(b):
                inter_lo = tuple(max(x, y) for x, y in zip(a.lo, b.lo))
                inter_hi = tuple(min(x, y) for x, y in zip(a.hi, b.hi))
                assert Rect(inter_lo, inter_hi).area() == pytest.approx(0.0)


def test_figure3_example_2d():
    """Paper Figure 3(a): removing d, the EDR is the region dominated
    by d but by neither a nor c."""
    a, c, d = (0.2, 0.9), (0.8, 0.3), (0.6, 0.7)
    boxes = exclusive_dominance_region(d, [a, c])
    # The point just under d is exclusively dominated.
    assert point_in_edr((0.59, 0.69), boxes)
    # A point under both d and a is not exclusive.
    assert not point_in_edr((0.1, 0.5), boxes)
    # A point under both d and c is not exclusive.
    assert not point_in_edr((0.5, 0.2), boxes)


@pytest.mark.parametrize("dims", [2, 3, 4])
def test_decomposition_matches_direct_membership(dims):
    rng = random.Random(dims)
    for _ in range(20):
        p = tuple(0.3 + 0.7 * rng.random() for _ in range(dims))
        others = [tuple(rng.random() for _ in range(dims)) for _ in range(4)]
        boxes = exclusive_dominance_region(p, others)
        for _ in range(50):
            q = tuple(rng.random() for _ in range(dims))
            # Interior sampling: skip boundary coincidences where the
            # closed-box decomposition and the closed membership test
            # legitimately differ on measure-zero sets.
            if any(abs(qi - pi) < 1e-9 for qi, pi in zip(q, p)):
                continue
            if any(
                abs(qi - si) < 1e-9 for s in others for qi, si in zip(q, s)
            ):
                continue
            assert point_in_edr(q, boxes) == point_in_edr_exact(q, p, others)


@given(points_strategy(3, min_size=2, max_size=6))
@settings(max_examples=30, deadline=None)
def test_edr_area_never_exceeds_dominance_region(pts):
    p, *others = pts
    boxes = exclusive_dominance_region(p, others)
    dom_area = dominance_region(p).area()
    assert sum(b.area() for b in boxes) <= dom_area + 1e-9


def test_edr_of_dominated_point_is_empty():
    # If another skyline point dominates p entirely... p's whole
    # dominance region is covered.
    p = (0.3, 0.3)
    boxes = exclusive_dominance_region(p, [(0.5, 0.5)])
    assert sum(b.area() for b in boxes) == pytest.approx(0.0)
