"""Disk-based R-tree substrate.

The paper indexes the object set ``O`` with an R-tree on 4 KB pages
(and, for the Chain baseline, the function weights with a main-memory
R-tree).  This package implements the full substrate from scratch:

- :mod:`repro.rtree.geometry` — MBR algebra, dominance tests and the
  score/priority keys used by BBS and BRS.
- :mod:`repro.rtree.encoding` — byte-level node layout; node fanout is
  *derived from the page size*, so I/O counts reflect realistic
  fanouts exactly as in the paper.
- :mod:`repro.rtree.store` — node stores: a disk-backed store (page
  file + LRU buffer, with I/O accounting) and a main-memory store.
- :mod:`repro.rtree.bulk` — Sort-Tile-Recursive bulk loading.
- :mod:`repro.rtree.tree` — the R-tree proper (Guttman quadratic
  split insert, condense-tree delete, range search).
"""

from repro.rtree.geometry import Rect, dominates, dominates_on_or_equal
from repro.rtree.node import Node
from repro.rtree.store import DiskNodeStore, MemoryNodeStore
from repro.rtree.tree import RTree

__all__ = [
    "DiskNodeStore",
    "MemoryNodeStore",
    "Node",
    "RTree",
    "Rect",
    "dominates",
    "dominates_on_or_equal",
]
