"""Figure 12 — effect of the function weight distribution.

Function weights drawn from C Gaussian clusters (sigma = 0.05 around
random centers), C in {1, 3, 5, 7, 9}.  Expected shape: SB keeps its
two-orders-of-magnitude I/O advantage for every C; C = 1 is the most
CPU-intensive case (maximum skew -> maximum competition for the same
objects -> more conflicts per stable pair).
"""

import pytest

from repro.bench.config import CLUSTER_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]


@pytest.mark.benchmark(group="fig12-function-distribution")
@pytest.mark.parametrize("clusters", CLUSTER_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig12(benchmark, method, clusters):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=12, n_clusters=clusters
    )
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
