"""Figure 11 — effect of the number of objects |O| (anti-correlated).

Paper sweep {10, 50, 100, 200, 400}k, scaled.  Expected shape: both
I/O and CPU grow with |O| for everyone (top-1 and skyline searches
cost more), with SB two orders of magnitude below the baselines in
I/O and several times faster in CPU.
"""

import pytest

from repro.bench.config import defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]


@pytest.mark.benchmark(group="fig11-object-cardinality")
@pytest.mark.parametrize("no", D.o_sweep())
@pytest.mark.parametrize("method", METHODS)
def test_fig11(benchmark, method, no):
    functions, objects = make_instance(D.nf, no, D.dims, D.distribution, seed=11)
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
