"""RoundStrategy implementations.

:class:`MutualBestRound` is the canonical skyline-driven round shared
by SB, its ablations, SB-alt and the two-skyline variant: a pluggable
:class:`~repro.engine.protocols.BestPairSearch` produces the best
alive function of every skyline object, a vectorized canonical scan
of the skyline produces the best object of every candidate function,
and their intersection — the mutually-best pairs of Property 2 — is
handed to the engine's commit step.

:class:`ChainRound` adapts Wong et al.'s Chain to the same loop: one
propose() call is one step of the mutual top-1 chase (Property 1),
emitting a pair when the chase closes and an empty proposal when it
merely enqueues the counterpart.
"""

from __future__ import annotations

from collections import deque

from repro.core.vectorized import MatrixView
from repro.engine.engine import EngineContext
from repro.engine.instrumentation import fold_auxiliary_io
from repro.engine.protocols import (
    BestPairSearch,
    RoundStrategy,
    SkylineState,
    StablePair,
)
from repro.rtree.store import MemoryNodeStore
from repro.rtree.tree import RTree
from repro.scoring import score
from repro.storage.stats import BYTES_PER_HEAP_ENTRY
from repro.topk.brs import BRSSearch


class MutualBestRound(RoundStrategy):
    """fbest ∩ obest over the object skyline (Algorithm 3's Lines 5–12)."""

    def __init__(self, ctx: EngineContext, search: BestPairSearch):
        self.ctx = ctx
        self.search = search
        self._sky_view: MatrixView | None = None

    def propose(self, skyline: SkylineState) -> list[StablePair] | None:
        # (a) best alive function of every skyline object (strategy).
        fbest = self.search.best_functions(skyline)
        if not fbest:
            return None

        # (b) best skyline object of every candidate function
        #     (vectorized canonical scan of the in-memory skyline,
        #     diff-synced across rounds instead of rebuilt).
        if self._sky_view is None:
            self._sky_view = MatrixView.from_dict(skyline)
        else:
            self._sky_view.sync(skyline)
        skyline_view = self._sky_view
        candidate_fids = sorted({fid for fid, _ in fbest.values()})
        obest: dict[int, int] = {}
        for fid in candidate_fids:
            w = self.ctx.functions.effective_weights(fid)
            obest[fid] = skyline_view.best_for(w)[0]

        # (c) mutually-best pairs (Property 2).
        return [
            StablePair(fid, obest[fid], fbest[obest[fid]][1])
            for fid in candidate_fids
            if fbest[obest[fid]][0] == fid
        ]

    def on_pair_committed(
        self, fid: int, oid: int, units: int, f_died: bool, o_died: bool
    ) -> None:
        if f_died:
            self.search.on_function_dead(fid)
        if o_died:
            self.search.on_object_dead(oid)

    def on_round_end(self, dead_fids: list[int]) -> None:
        self.search.on_round_end(dead_fids)

    def finalize(self, stats, skyline) -> None:
        self.search.finalize(stats, skyline)


class ChainRound(RoundStrategy):
    """Mutual top-1 chasing over two R-trees (the adapted Chain of [25]).

    The functions are indexed by a main-memory (or simulated-disk)
    R-tree on their effective weights; objects answer "best function"
    queries through the function tree and functions answer "best
    object" queries through the object tree, both via fresh BRS top-1
    searches — Chain cannot resume searches, which is precisely why
    the paper measures it as the most expensive method.
    """

    def __init__(self, ctx: EngineContext, disk_function_tree: bool = False):
        self.ctx = ctx
        functions = ctx.functions
        self.disk_function_tree = disk_function_tree

        # R-tree over the (γ-scaled) function weights; its construction
        # is part of Chain's CPU cost (Section 7).  Assigned functions
        # are physically deleted, as in the original algorithm.
        dims = functions.dims
        if disk_function_tree:
            from repro.rtree.store import DiskNodeStore

            self.fn_store = DiskNodeStore(dims, page_size=4096, buffer_capacity=0)
        else:
            self.fn_store = MemoryNodeStore(dims, page_size=4096)
        self.fn_tree = RTree.bulk_load(
            self.fn_store, dims,
            [(fid, functions.effective_weights(fid))
             for fid in range(len(functions))],
        )
        if disk_function_tree:
            self.fn_store.set_buffer_fraction(0.02)
            self.fn_store.buffer.clear()
            self.fn_store.stats.reset()

        self.assigned_objects: set[int] = set()
        self.pending: deque[tuple[str, int]] = deque()
        self.next_seed = 0
        self.top1_searches = 0

    def propose(self, skyline: SkylineState) -> list[StablePair] | None:
        ctx = self.ctx
        caps = ctx.caps
        ctx.mem.set_gauge(
            "chain_queue", len(self.pending) * BYTES_PER_HEAP_ENTRY
        )
        if self.pending:
            side, ident = self.pending.popleft()
            if side == "f" and not caps.function_alive(ident):
                return []
            if side == "o" and not caps.object_alive(ident):
                return []
        else:
            while (self.next_seed < len(ctx.functions)
                   and not caps.function_alive(self.next_seed)):
                self.next_seed += 1
            if self.next_seed >= len(ctx.functions):
                return None
            side, ident = "f", self.next_seed

        if side == "f":
            found = self._top1_object(ident)
            if found is None:
                return None  # no objects left at all
            oid, _s = found
            back = self._top1_function(oid)
            if back == ident:
                return [self._pair(ident, oid)]
            self.pending.append(("o", oid))
            return []
        back_fid = self._top1_function(ident)
        if back_fid is None:
            return None  # no functions left at all
        found = self._top1_object(back_fid)
        if found is not None and found[0] == ident:
            return [self._pair(back_fid, ident)]
        self.pending.append(("f", back_fid))
        return []

    def on_pair_committed(
        self, fid: int, oid: int, units: int, f_died: bool, o_died: bool
    ) -> None:
        if o_died:
            self.assigned_objects.add(oid)
        else:
            self.pending.append(("o", oid))
        if f_died:
            self.fn_tree.delete(fid, self.ctx.functions.effective_weights(fid))
        else:
            self.pending.append(("f", fid))

    def finalize(self, stats, skyline) -> None:
        stats.counters["top1_searches"] = self.top1_searches
        stats.counters["fn_tree_accesses"] = self.fn_store.stats.logical_reads
        if self.disk_function_tree:
            fold_auxiliary_io(stats, self.fn_store.stats, "function_tree_reads")

    # -- internals ----------------------------------------------------------

    def _pair(self, fid: int, oid: int) -> StablePair:
        s = score(
            self.ctx.functions.effective_weights(fid),
            self.ctx.objects.points[oid],
        )
        return StablePair(fid, oid, s)

    def _top1_object(self, fid: int) -> tuple[int, float] | None:
        """Best remaining object for a function (fresh BRS search)."""
        self.top1_searches += 1
        search = BRSSearch(
            self.ctx.index.tree,
            self.ctx.functions.effective_weights(fid),
            self.assigned_objects,
        )
        result = search.next()
        self.ctx.mem.set_gauge("chain_search", search.memory_bytes())
        if result is None:
            return None
        oid, _point, s = result
        return oid, s

    def _top1_function(self, oid: int) -> int | None:
        """Best remaining function for an object (fresh BRS search on
        the function tree; weights and points swap roles)."""
        self.top1_searches += 1
        search = BRSSearch(self.fn_tree, self.ctx.objects.points[oid])
        result = search.next()
        self.ctx.mem.set_gauge("chain_search", search.memory_bytes())
        if result is None:
            return None
        fid, _weights, _s = result
        return fid
