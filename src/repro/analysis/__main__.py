"""``repro-lint`` — the console entry point of :mod:`repro.analysis`.

Usage::

    repro-lint                         # lint src/repro against the baseline
    repro-lint --json                  # machine-readable output
    repro-lint --write-baseline        # accept current findings
    repro-lint src/repro/analysis      # self-check one package
    repro-lint --no-baseline path.py   # absolute mode: any finding fails

Exit status: 0 when no *new* findings (accepted baseline findings and
justified suppressions don't fail), 1 when new findings exist, 2 on
usage errors.  ``--fail-on-new`` names the default contract explicitly
for CI readability.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.runner import render_json, run_lint


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro codebase: lock "
            "discipline (REP1xx), determinism (REP2xx), registry "
            "consistency (REP3xx), hot-path/error hygiene (REP4xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding is new and fails",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file (preserving "
            "existing justifications) and exit 0"
        ),
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help=(
            "exit non-zero iff findings not in the baseline exist "
            "(the default contract, named for CI clarity)"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (e.g. REP101,REP403)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the project-level registry consistency checks",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    root = (args.root or Path.cwd()).resolve()
    paths = args.paths or [root / "src" / "repro"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    baseline_path = args.baseline or root / DEFAULT_BASELINE_NAME
    baseline: Baseline | None = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    rules = (
        frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        if args.rules
        else None
    )
    result = run_lint(
        paths,
        root=root,
        baseline=None if args.write_baseline else baseline,
        rules=rules,
        registry_checks=not args.no_registry,
    )

    if args.write_baseline:
        ledger = baseline or Baseline()
        ledger.save(baseline_path, result.new)
        print(f"repro-lint: wrote {len(result.new)} finding(s) to {baseline_path}")
        return 0

    print(render_json(result) if args.json else result.render_text())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
