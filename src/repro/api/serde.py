"""Versioned dict/JSON serialization shared by the API value objects.

Payloads are plain JSON-compatible dicts tagged with a ``"schema"``
string (``"repro.problem/v1"``, ``"repro.solution/v1"``).  Decoding is
strict: a wrong tag, a missing field, or an unknown field raises
:class:`~repro.errors.SerdeError` instead of guessing — cross-process
payloads that drift should fail loudly at the boundary.

Floats survive the round trip bit-identically: ``json`` serializes via
``repr``, which is exact for finite IEEE-754 doubles.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from typing import Any

from repro.errors import SerdeError

SCHEMA_KEY = "schema"
#: Current problem schema.  v2 (over v1) admits the planner
#: pseudo-method ``"auto"`` in the solver section; v1 payloads remain
#: readable (:data:`PROBLEM_SCHEMAS`) — the sections are otherwise
#: identical.
PROBLEM_SCHEMA = "repro.problem/v2"
PROBLEM_SCHEMA_V1 = "repro.problem/v1"
#: Schema tags accepted when *reading* a problem payload.
PROBLEM_SCHEMAS = (PROBLEM_SCHEMA, PROBLEM_SCHEMA_V1)
SOLUTION_SCHEMA = "repro.solution/v1"


def check_payload(
    payload: Any,
    schema: str | tuple[str, ...],
    required: frozenset[str] | set[str],
    optional: frozenset[str] | set[str] = frozenset(),
) -> None:
    """Validate a decoded payload's schema tag and field names.

    ``schema`` may be a tuple of acceptable tags (newest first) — the
    backward-compatible read path for bumped schemas.
    """
    accepted = (schema,) if isinstance(schema, str) else tuple(schema)
    schema = accepted[0]
    if not isinstance(payload, Mapping):
        raise SerdeError(
            f"expected a mapping payload for {schema!r}, "
            f"got {type(payload).__name__}"
        )
    tag = payload.get(SCHEMA_KEY)
    if tag not in accepted:
        if len(accepted) == 1:
            raise SerdeError(f"expected schema {schema!r}, got {tag!r}")
        raise SerdeError(f"expected schema in {list(accepted)}, got {tag!r}")
    keys = set(payload) - {SCHEMA_KEY}
    missing = set(required) - keys
    if missing:
        raise SerdeError(f"{schema!r} payload missing field(s) {sorted(missing)}")
    unknown = keys - set(required) - set(optional)
    if unknown:
        raise SerdeError(f"{schema!r} payload has unknown field(s) {sorted(unknown)}")


def to_canonical_json(payload: dict) -> str:
    """Canonical encoding: sorted keys, no insignificant whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def from_json(text: str | bytes) -> Any:
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise SerdeError(f"malformed JSON payload: {exc}") from exc


def canonical_digest(payload: dict) -> str:
    """SHA-256 hex digest of the canonical JSON encoding.

    Because :func:`to_canonical_json` is deterministic (sorted keys,
    fixed separators, exact float ``repr``), structurally identical
    payloads digest equally across processes — the content-address
    the serving layer uses for problem registration dedup and result
    cache keys.
    """
    return hashlib.sha256(to_canonical_json(payload).encode("utf-8")).hexdigest()


__all__ = [
    "PROBLEM_SCHEMA",
    "PROBLEM_SCHEMAS",
    "PROBLEM_SCHEMA_V1",
    "SCHEMA_KEY",
    "SOLUTION_SCHEMA",
    "canonical_digest",
    "check_payload",
    "from_json",
    "to_canonical_json",
]
