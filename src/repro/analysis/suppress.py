"""The escape hatch: ``# lint: <tag>-ok(reason)`` comments.

A rule finding is suppressed when the flagged line — or a comment-only
line directly above it — carries a suppression whose tag covers the
rule, **with a non-empty reason**.  The reason is mandatory by design:
an invariant checker whose overrides don't say *why* just moves the
folklore from reviewers' heads into unexplained pragmas.  A reasonless
``-ok()`` does not suppress anything and is itself reported (REP001),
so it cannot rot silently.

Tags map to rule ids (see :data:`TAG_RULES`); an exact rule id
(``REP203``) is also accepted as a tag.  Multiple suppressions may
share one comment: ``# lint: setiter-ok(canonical order restored by
sort below) idkey-ok(never ordered)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.findings import Finding

#: Suppression tag → rule ids it covers.
TAG_RULES: dict[str, tuple[str, ...]] = {
    "unguarded": ("REP101", "REP102"),
    "rng": ("REP201",),
    "timedep": ("REP202",),
    "setiter": ("REP203",),
    "idkey": ("REP204",),
    "nondeterminism": ("REP201", "REP202", "REP203", "REP204"),
    "untraced": ("REP401", "REP402"),
    "except": ("REP403", "REP404"),
    "envelope": ("REP405",),
}

_SUPPRESSION_RE = re.compile(r"#\s*lint:\s*(?P<body>.+)$")
_CLAUSE_RE = re.compile(r"(?P<tag>[A-Za-z0-9_]+)-ok\((?P<reason>[^)]*)\)")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Suppression:
    """One ``tag-ok(reason)`` clause found in a source comment."""

    line: int
    tag: str
    reason: str

    def covers(self, rule: str) -> bool:
        if self.tag.upper() == rule:
            return True
        return rule in TAG_RULES.get(self.tag.lower(), ())


class SuppressionIndex:
    """All suppression comments of one file, queryable per finding."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, list[Suppression]] = {}
        self._comment_only: set[int] = set()
        self.malformed: list[Finding] = []
        self._scan(source)

    def _scan(self, source: str) -> None:
        for lineno, text in enumerate(source.splitlines(), start=1):
            if _COMMENT_ONLY_RE.match(text):
                self._comment_only.add(lineno)
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            body = match.group("body")
            clauses = list(_CLAUSE_RE.finditer(body))
            for clause in clauses:
                tag = clause.group("tag")
                reason = clause.group("reason").strip()
                if not reason:
                    # Recorded, never honoured: the empty reason is the
                    # violation (the rule it "suppressed" still fires).
                    self.malformed.append(
                        Finding(
                            rule="REP001",
                            path="",
                            line=lineno,
                            column=match.start(),
                            severity="warning",
                            message=(
                                f"suppression '{tag}-ok()' has no reason; "
                                "escape hatches must say why "
                                "(# lint: {tag}-ok(reason))"
                            ),
                        )
                    )
                    continue
                self._by_line.setdefault(lineno, []).append(
                    Suppression(line=lineno, tag=tag, reason=reason)
                )

    def _candidates(self, line: int) -> list[Suppression]:
        found = list(self._by_line.get(line, ()))
        # A comment-only line directly above covers the statement below
        # (chains of comment lines walk upward, so a block comment
        # ending in the suppression still applies).
        above = line - 1
        while above in self._comment_only:
            found.extend(self._by_line.get(above, ()))
            above -= 1
        return found

    def lookup(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``rule`` at ``line``, if any."""
        for suppression in self._candidates(line):
            if suppression.covers(rule):
                return suppression
        return None


__all__ = ["Suppression", "SuppressionIndex", "TAG_RULES"]
