"""Skyline maintenance: UpdateSkyline (Theorem 1) and DeltaSky."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.store import DiskNodeStore
from repro.rtree.tree import RTree
from repro.skyline import DeltaSkyManager, UpdateSkylineManager, naive_skyline

from .conftest import points_strategy, random_points


def build_tree(items, dims, page_size=256, buffer_capacity=10**6):
    store = DiskNodeStore(dims, page_size=page_size, buffer_capacity=buffer_capacity)
    tree = RTree.bulk_load(store, dims, items)
    store.stats.reset()
    return tree, store


def drain(manager_cls, items, dims, batch, rng=None, tree=None):
    """Remove skyline members in batches until the set is exhausted,
    checking against a from-scratch recomputation at every step."""
    if tree is None:
        tree, _ = build_tree(items, dims)
    mgr = manager_cls(tree)
    mgr.compute_initial()
    alive = dict(items)
    while mgr.skyline:
        assert mgr.skyline == naive_skyline(list(alive.items()))
        victims = sorted(mgr.skyline)[:batch]
        mgr.remove(victims)
        for oid in victims:
            del alive[oid]
    assert alive == {} or naive_skyline(list(alive.items())) == {}
    return mgr


@pytest.mark.parametrize("manager_cls", [UpdateSkylineManager, DeltaSkyManager])
@pytest.mark.parametrize("dims,batch", [(2, 1), (3, 1), (3, 3), (4, 2)])
def test_maintenance_matches_recompute(manager_cls, dims, batch, rng):
    items = list(enumerate(random_points(250, dims, rng)))
    drain(manager_cls, items, dims, batch)


@pytest.mark.parametrize("manager_cls", [UpdateSkylineManager, DeltaSkyManager])
def test_maintenance_tie_heavy(manager_cls, rng):
    items = list(enumerate(random_points(150, 3, rng, tie_heavy=True)))
    drain(manager_cls, items, 3, 2)


@given(points_strategy(2, min_size=1, max_size=35), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_property_update_skyline_2d(pts, batch):
    items = list(enumerate(pts))
    drain(UpdateSkylineManager, items, 2, batch)


@given(points_strategy(3, min_size=1, max_size=25), st.integers(1, 2))
@settings(max_examples=20, deadline=None)
def test_property_deltasky_3d(pts, batch):
    items = list(enumerate(pts))
    drain(DeltaSkyManager, items, 3, batch)


def test_remove_non_member_rejected(rng):
    items = list(enumerate(random_points(50, 2, rng)))
    tree, _ = build_tree(items, 2)
    mgr = UpdateSkylineManager(tree)
    mgr.compute_initial()
    missing = max(oid for oid, _ in items) + 1
    with pytest.raises(KeyError):
        mgr.remove([missing])


def test_initial_required_before_remove(rng):
    items = list(enumerate(random_points(10, 2, rng)))
    tree, _ = build_tree(items, 2)
    with pytest.raises(RuntimeError):
        UpdateSkylineManager(tree).remove([0])
    with pytest.raises(RuntimeError):
        DeltaSkyManager(tree).remove([0])


class TestTheorem1:
    """UpdateSkyline is I/O optimal: no R-tree page is read twice over
    an entire drain, even with a zero buffer."""

    def test_read_once_over_full_drain(self, rng):
        dims = 3
        items = list(enumerate(random_points(1500, dims, rng)))
        tree, store = build_tree(items, dims, buffer_capacity=0)
        store.stats.reset()

        mgr = UpdateSkylineManager(tree)
        mgr.compute_initial()
        while mgr.skyline:
            mgr.remove(sorted(mgr.skyline)[:2])

        # With no buffer, logical == physical; read-once means the
        # total cannot exceed the number of pages in the tree, and a
        # full drain reads every page exactly once.
        assert store.stats.physical_reads == store.stats.logical_reads
        assert store.stats.physical_reads == store.num_pages

    def test_deltasky_rereads_updateskyline_does_not(self, rng):
        """Figure 8's shape: DeltaSky's repeated traversals cost far
        more page reads than UpdateSkyline on the same drain."""
        dims = 3
        items = list(enumerate(random_points(1200, dims, rng)))

        reads = {}
        for name, cls in [
            ("update", UpdateSkylineManager), ("delta", DeltaSkyManager)
        ]:
            tree, store = build_tree(items, dims, buffer_capacity=0)
            store.stats.reset()
            mgr = cls(tree)
            mgr.compute_initial()
            while mgr.skyline:
                mgr.remove(sorted(mgr.skyline)[:1])
            reads[name] = store.stats.physical_reads

        assert reads["update"] < reads["delta"]

    def test_buffer_size_does_not_change_updateskyline_io(self, rng):
        """Because UpdateSkyline never re-reads, its physical I/O is
        identical with a 0% and a 100% buffer (Figure 13's flat SB)."""
        dims = 3
        items = list(enumerate(random_points(800, dims, rng)))
        counts = []
        for capacity in (0, 10**6):
            tree, store = build_tree(items, dims, buffer_capacity=capacity)
            store.buffer.clear()
            store.stats.reset()
            mgr = UpdateSkylineManager(tree)
            mgr.compute_initial()
            while mgr.skyline:
                mgr.remove(sorted(mgr.skyline)[:3])
            counts.append(store.stats.physical_reads)
        assert counts[0] == counts[1]
