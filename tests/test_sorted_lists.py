"""Sorted coefficient lists: ordering, lazy deletion, paging."""

import math

import pytest

from repro.data.instances import FunctionSet
from repro.topk.sorted_lists import CoefficientLists, PagedCoefficientLists

from .conftest import random_weights


def make_functions(rng, n=20, dims=3, gammas=None):
    return FunctionSet(random_weights(n, dims, rng), gammas=gammas)


class TestCoefficientLists:
    def test_lists_sorted_descending_fid_ascending(self, rng):
        lists = CoefficientLists(make_functions(rng))
        for d in range(lists.dims):
            col = [lists.entry(d, i) for i in range(lists.length(d))]
            assert col == sorted(col, key=lambda e: (-e[0], e[1]))

    def test_figure5_layout(self):
        """The paper's Figure 5 lists for fa..fe."""
        fs = FunctionSet([
            (0.8, 0.1, 0.1),
            (0.2, 0.8, 0.0),
            (0.5, 0.4, 0.1),
            (0.0, 0.1, 0.9),
            (0.2, 0.4, 0.4),
        ])
        lists = CoefficientLists(fs)
        l1 = [lists.entry(0, i) for i in range(5)]
        assert [fid for _, fid in l1] == [0, 2, 1, 4, 3]  # fa fc {fb,fe} fd
        assert l1[0][0] == pytest.approx(0.8)
        l3 = [lists.entry(2, i) for i in range(5)]
        assert l3[0] == (pytest.approx(0.9), 3)  # fd leads the z-list

    def test_initial_bound_is_max(self, rng):
        lists = CoefficientLists(make_functions(rng))
        for d in range(lists.dims):
            assert lists.initial_bound(d) == lists.entry(d, 0)[0]

    def test_kill_is_lazy(self, rng):
        lists = CoefficientLists(make_functions(rng, n=5))
        lists.kill(2)
        assert not lists.is_alive(2)
        assert lists.n_alive == 4
        # The entry physically stays.
        assert any(
            lists.entry(0, i)[1] == 2 for i in range(lists.length(0))
        )

    def test_double_kill_rejected(self, rng):
        lists = CoefficientLists(make_functions(rng, n=3))
        lists.kill(0)
        with pytest.raises(KeyError):
            lists.kill(0)

    def test_max_alive_gamma_tracks_kills(self, rng):
        fs = make_functions(rng, n=4, gammas=[1.0, 4.0, 2.0, 3.0])
        lists = CoefficientLists(fs)
        assert lists.max_alive_gamma() == 4.0
        lists.kill(1)
        assert lists.max_alive_gamma() == 3.0
        lists.kill(3)
        assert lists.max_alive_gamma() == 2.0

    def test_effective_weights_scaled_by_gamma(self, rng):
        fs = FunctionSet([(0.5, 0.5)], gammas=[3.0])
        lists = CoefficientLists(fs)
        assert lists.effective_weights(0) == (1.5, 1.5)
        assert lists.initial_bound(0) == pytest.approx(1.5)

    def test_numpy_views_consistent(self, rng):
        lists = CoefficientLists(make_functions(rng))
        for d in range(lists.dims):
            for i in range(lists.length(d)):
                coef, fid = lists.entry(d, i)
                assert lists.coefs_np[d][i] == coef
                assert lists.fids_np[d][i] == fid


class TestPagedCoefficientLists:
    def test_sequential_scan_charges_one_read_per_page(self, rng):
        fs = make_functions(rng, n=100, dims=2)
        # 16-byte entries, 64-byte pages -> 4 entries per page.
        lists = PagedCoefficientLists(fs, page_size=64)
        assert lists.entries_per_page == 4
        for i in range(100):
            lists.entry(0, i)
        assert lists.stats.physical_reads == math.ceil(100 / 4)

    def test_random_access_charges(self, rng):
        fs = make_functions(rng, n=64, dims=3)
        lists = PagedCoefficientLists(fs, page_size=64)
        lists.stats.reset()
        lists.random_access(5, 1)
        assert lists.stats.physical_reads == 1
        # Same page again: the one-page-per-list cache absorbs it.
        lists.random_access(5, 1)
        assert lists.stats.physical_reads == 1

    def test_num_pages(self, rng):
        fs = make_functions(rng, n=10, dims=2)
        lists = PagedCoefficientLists(fs, page_size=64)
        assert lists.num_pages() == 2 * math.ceil(10 / 4)
