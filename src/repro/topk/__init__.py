"""Top-k search: the paper's query substrate.

- :mod:`repro.topk.sorted_lists` — the per-dimension descending
  coefficient lists indexing the function set ``F`` (Section 5.1),
  with lazy deletions and an optional disk-resident paged variant
  (Section 7.6).
- :mod:`repro.topk.knapsack` — the fractional-knapsack *tight*
  threshold ``Ttight`` (Section 5.1), generalized to priorities
  (``B = max γ``, Section 6.2).
- :mod:`repro.topk.reverse` — reverse top-1: the best function for a
  given object via TA with biased list probing, resumable state and
  the Ω-bounded candidate heap.
- :mod:`repro.topk.ta` — classic Fagin TA over sorted attribute lists
  (related work [8]; reference implementation and tests).
- :mod:`repro.topk.brs` — BRS [19]: incremental, resumable
  branch-and-bound ranked search over an R-tree, used by the Brute
  Force and Chain baselines.
- :mod:`repro.topk.onion` — Onion [5]: convex-hull-layer
  precomputation for linear top-k (related-work baseline).
"""

from repro.topk.brs import BRSSearch
from repro.topk.knapsack import tight_threshold
from repro.topk.onion import OnionIndex
from repro.topk.reverse import ReverseBestSearch
from repro.topk.sorted_lists import CoefficientLists
from repro.topk.ta import ta_topk

__all__ = [
    "BRSSearch",
    "CoefficientLists",
    "OnionIndex",
    "ReverseBestSearch",
    "ta_topk",
    "tight_threshold",
]
