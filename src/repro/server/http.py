"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

Just enough protocol for a JSON service: request-line + headers +
``Content-Length`` bodies on the way in, fixed-length responses with
keep-alive on the way out.  No chunked transfer, no TLS, no
multipart — payloads are JSON documents and the framing stays small
enough to audit.  Malformed input raises :class:`ProtocolError`, which
the connection loop converts into a 400/413/431 response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import SerdeError

#: Default ceiling for a request body (solution/problem payloads are a
#: few MB at the scales the benchmarks use; 64 MiB leaves headroom).
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_HEADER_COUNT = 100

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """The peer sent something that is not parseable HTTP/1.x; carries
    the status the connection loop should answer with before closing."""

    def __init__(self, message: str, status: int = 400):
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    keep_alive: bool

    def json(self, default=None):
        """Decode the body as JSON; an empty body yields ``default``.

        Raises :class:`~repro.errors.SerdeError` on malformed JSON so
        the service's one error-mapping path (→ 400) applies.
        """
        if not self.body:
            return default
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise SerdeError(f"malformed JSON request body: {exc}") from exc


@dataclass
class Response:
    """One HTTP response; :meth:`encode` produces the wire bytes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200, **headers: str) -> "Response":
        return cls(
            status=status,
            body=(json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            headers=headers,
        )

    @classmethod
    def error(cls, status: int, message: str, **extra) -> "Response":
        return cls.json({"error": message, **extra}, status=status)

    def encode(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def read_request(
    reader,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Request | None:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for anything that is not a
    well-formed HTTP/1.x request within the size limits.
    """
    # StreamReader.readline raises ValueError once a line exceeds the
    # reader's buffer limit (64 KiB by default) — surface that as the
    # protocol error it is instead of crashing the connection task.
    try:
        request_line = await reader.readline()
    except ValueError:
        raise ProtocolError("request line too long", status=431) from None
    if not request_line:
        return None
    if len(request_line) > MAX_HEADER_BYTES:
        raise ProtocolError("request line too long", status=431)
    try:
        method, target, version = request_line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(
            f"malformed request line {request_line!r}"
        ) from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise ProtocolError("request header line too long", status=431) from None
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ProtocolError("connection closed mid-headers")
        total += len(line)
        if total > MAX_HEADER_BYTES or len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("request headers too large", status=431)
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        # Without chunked decoding, the unread payload would be parsed
        # as the next request and desync the keep-alive stream; reject
        # up front (RFC 7230 §3.3.3) and close.
        raise ProtocolError(
            "Transfer-Encoding is not supported; send Content-Length",
            status=411,
        )
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(
                f"malformed Content-Length {length_header!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"negative Content-Length {length}")
        if length > max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                status=413,
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as exc:  # IncompleteReadError and friends
                raise ProtocolError("connection closed mid-body") from exc

    parts = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return Request(
        method=method.upper(),
        path=unquote(parts.path) or "/",
        query=dict(parse_qsl(parts.query)),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


__all__ = [
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "read_request",
]
