"""``repro-admin`` — the fleet console.

One small operator CLI over the serving HTTP surface (works against a
single ``repro-server`` or a ``repro-gateway`` fronting a fleet —
both speak the same protocol):

- ``status``      one-shot summary of ``/healthz`` + ``/metrics``
- ``watch``       live-refresh dashboard (req/s, cache hit rate,
                  queue depth, per-backend health, planner picks)
- ``trace ID``    render a span tree from ``/v1/traces/{id}``
                  (``--last`` picks the newest recorded trace)
- ``logs``        tail the remote ``/v1/logs`` ring
- ``bench-trend`` render the BENCH_server.json trajectory

Usage::

    repro-admin --url http://127.0.0.1:8000 status
    repro-admin --url http://127.0.0.1:8100 watch --interval 2
    repro-admin --url http://127.0.0.1:8100 trace --last
    repro-admin bench-trend --file BENCH_server.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ServerError
from repro.obs.store import render_tree
from repro.server.client import Client


def _bar(fraction: float, width: int = 24) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "█" * filled + "·" * (width - filled)


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "—"
    if seconds < 1:
        return f"{seconds * 1000:.1f} ms"
    return f"{seconds:.2f} s"


# ---------------------------------------------------------------------------
# status


def _render_server_status(health: dict, metrics: dict, url: str) -> list[str]:
    solves = metrics.get("solves", {})
    total = solves.get("total", 0)
    hits = solves.get("cache_hits", 0)
    hit_rate = (hits / total * 100) if total else 0.0
    queue = metrics.get("queue", {})
    caches = metrics.get("solution_cache", {})
    index = metrics.get("index_cache", {})
    lines = [
        f"repro-server @ {url} — {health.get('status', '?')}"
        f" — v{health.get('version', '?')}"
        f" — up {health.get('uptime_seconds', 0.0):.0f}s",
        f"  executor {health.get('executor', '?')}"
        f" · problems {health.get('problems', 0)}"
        f" · queue {queue.get('depth', 0)}/{queue.get('limit', 0)}"
        f" (peak {queue.get('peak_depth', 0)},"
        f" rejected {queue.get('rejected_total', 0)})",
        f"  solves {total} (cache hits {hits}, {hit_rate:.1f}%)"
        f" · solution cache {caches.get('entries', 0)} entries"
        f" · index cache {index.get('hits', 0)}h/{index.get('misses', 0)}m",
        f"  jobs {queue.get('jobs_submitted', 0)} submitted,"
        f" {queue.get('jobs_completed', 0)} completed,"
        f" {queue.get('jobs_failed', 0)} failed",
    ]
    picks = metrics.get("planner", {}).get("picks", {})
    if picks:
        rendered = ", ".join(f"{m} {n}" for m, n in picks.items())
        lines.append(f"  planner picks: {rendered}")
    for method, hist in sorted(metrics.get("latency", {}).items()):
        lines.append(
            f"  latency[{method}]: p50 {_fmt_seconds(hist.get('p50_seconds'))}"
            f" p99 {_fmt_seconds(hist.get('p99_seconds'))}"
            f" max {_fmt_seconds(hist.get('max_seconds'))}"
            f" (n={hist.get('count', 0)})"
        )
    traces = metrics.get("traces")
    if traces:
        lines.append(
            f"  traces: {traces.get('recorded_total', 0)} recorded,"
            f" {traces.get('slow_total', 0)} slow"
            f" (threshold {_fmt_seconds(traces.get('slow_threshold_seconds'))})"
        )
    return lines


def _render_gateway_status(health: dict, metrics: dict, url: str) -> list[str]:
    ring = health.get("ring", {})
    lines = [
        f"repro-gateway @ {url} — {health.get('status', '?')}"
        f" — v{health.get('version', '?')}"
        f" — up {health.get('uptime_seconds', 0.0):.0f}s",
        f"  ring: {ring.get('alive', 0)}/{ring.get('configured', 0)} backends"
        f" alive · {ring.get('vnodes_per_backend', 0)} vnodes each"
        f" · {health.get('problems_routed', 0)} problems routed",
    ]
    gw = metrics.get("gateway", {})
    lines.append(
        f"  forwards {gw.get('forwards_total', 0)}"
        f" · reshards {gw.get('reshards_total', 0)}"
        f" · re-registrations {gw.get('reregistrations_total', 0)}"
        f" · no-owner 503s {gw.get('no_owner_total', 0)}"
    )
    for address, backend in sorted(health.get("backends", {}).items()):
        state = "up  " if backend.get("alive") else "DOWN"
        queue_depth = backend.get("queue_depth")
        queue_text = f" queue {queue_depth}" if queue_depth is not None else ""
        lines.append(
            f"  [{state}] {address} ({backend.get('node_id', '?')})"
            f" forwards {backend.get('forwards', 0)}{queue_text}"
            + (
                f" — last error: {backend['last_error']}"
                if backend.get("last_error")
                else ""
            )
        )
    fleet = metrics.get("fleet", {})
    solves = fleet.get("solves", {})
    if solves:
        total = solves.get("total", 0)
        hits = solves.get("cache_hits", 0)
        hit_rate = (hits / total * 100) if total else 0.0
        lines.append(
            f"  fleet solves {total} (cache hits {hits}, {hit_rate:.1f}%)"
            f" over {fleet.get('backends_reporting', 0)} reporting backends"
        )
    picks = fleet.get("planner", {}).get("picks", {})
    if picks:
        rendered = ", ".join(f"{m} {n}" for m, n in picks.items())
        lines.append(f"  fleet planner picks: {rendered}")
    return lines


def status_lines(client: Client, url: str) -> list[str]:
    health = client.health()
    metrics = client.metrics()
    if health.get("role") == "gateway":
        return _render_gateway_status(health, metrics, url)
    return _render_server_status(health, metrics, url)


def cmd_status(args) -> int:
    with Client(args.url) as client:
        for line in status_lines(client, args.url):
            print(line)
    return 0


# ---------------------------------------------------------------------------
# watch


def cmd_watch(args) -> int:
    previous_requests: int | None = None
    previous_at: float | None = None
    iterations = 0
    with Client(args.url) as client:
        while True:
            lines = status_lines(client, args.url)
            metrics = client.metrics()
            requests_total = metrics.get("http", {}).get("requests_total", 0)
            now = time.monotonic()
            if previous_requests is not None and now > previous_at:
                rate = (requests_total - previous_requests) / (now - previous_at)
                capacity = max(rate, 1.0)
                lines.append(
                    f"  {rate:6.1f} req/s  {_bar(rate / (capacity * 1.25))}"
                )
            previous_requests, previous_at = requests_total, now
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(time.strftime("%H:%M:%S"), f"(refresh {args.interval:g}s)")
            for line in lines:
                print(line)
            sys.stdout.flush()
            iterations += 1
            if args.count is not None and iterations >= args.count:
                return 0
            time.sleep(args.interval)


# ---------------------------------------------------------------------------
# trace


def cmd_trace(args) -> int:
    with Client(args.url) as client:
        trace_id = args.trace_id
        if trace_id is None:
            listing = client.request("GET", "/v1/traces")[1]
            traces = listing.get("traces", [])
            if not traces:
                print("no traces recorded yet", file=sys.stderr)
                return 1
            trace_id = traces[0]["trace_id"]
        try:
            record = client.request("GET", f"/v1/traces/{trace_id}")[1]
        except ServerError as exc:
            if exc.status == 404:
                print(f"trace {trace_id} not found", file=sys.stderr)
                return 1
            raise
        if args.json:
            print(json.dumps(record, indent=2, sort_keys=True))
        else:
            print(render_tree(record))
    return 0


# ---------------------------------------------------------------------------
# logs


def cmd_logs(args) -> int:
    query = f"?limit={args.limit}"
    if args.level:
        query += f"&level={args.level}"
    with Client(args.url) as client:
        body = client.request("GET", f"/v1/logs{query}")[1]
    for entry in body.get("entries", []):
        print(json.dumps(entry, sort_keys=True))
    ring = body.get("ring", {})
    if ring.get("dropped"):
        print(
            f"({ring['dropped']} older records dropped by the ring)",
            file=sys.stderr,
        )
    return 0


# ---------------------------------------------------------------------------
# bench-trend


def _trend_rows(results: dict) -> list[tuple[str, dict]]:
    """Flatten BENCH_server.json into renderable ``(name, row)`` pairs
    — comparison rows (thread_vs_process, obs_overhead) expand into
    one row per arm."""
    rows: list[tuple[str, dict]] = []
    for label, row in results.items():
        if not isinstance(row, dict):
            continue
        if "requests_per_second" in row:
            rows.append((label, row))
            continue
        for arm, sub in row.items():
            if isinstance(sub, dict) and "requests_per_second" in sub:
                rows.append((f"{label}/{arm}", sub))
    return rows


def cmd_bench_trend(args) -> int:
    path = Path(args.file)
    if not path.exists():
        print(f"no benchmark file at {path}", file=sys.stderr)
        return 1
    results = json.loads(path.read_text())
    rows = _trend_rows(results)
    if not rows:
        print(f"no throughput rows in {path}", file=sys.stderr)
        return 1
    best = max(row["requests_per_second"] for _, row in rows)
    width = max(len(name) for name, _ in rows)
    print(f"serving throughput trajectory ({path.name}):")
    for name, row in rows:
        rps = row["requests_per_second"]
        print(
            f"  {name:<{width}}  {rps:7.1f} req/s  {_bar(rps / best)}"
            f"  p50 {_fmt_seconds(row.get('latency_p50_seconds'))}"
            f"  p99 {_fmt_seconds(row.get('latency_p99_seconds'))}"
        )
    for label, row in results.items():
        if isinstance(row, dict) and "overhead_pct" in row:
            print(f"  {label}: observability overhead {row['overhead_pct']:+.2f}%")
        if isinstance(row, dict) and "process_speedup" in row:
            print(f"  {label}: process speedup {row['process_speedup']:.2f}x")
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-admin",
        description="Operator console for repro-server / repro-gateway fleets.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="server or gateway base URL (default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("status", help="one-shot fleet/server summary")

    watch = sub.add_parser("watch", help="live-refresh dashboard")
    watch.add_argument("--interval", type=float, default=2.0)
    watch.add_argument(
        "--count", type=int, default=None,
        help="refresh N times then exit (default: run until interrupted)",
    )
    watch.add_argument(
        "--no-clear", action="store_true",
        help="append refreshes instead of clearing the screen",
    )

    trace = sub.add_parser("trace", help="render one trace's span tree")
    trace.add_argument("trace_id", nargs="?", default=None)
    trace.add_argument(
        "--last", action="store_true",
        help="render the newest recorded trace (default when no id given)",
    )
    trace.add_argument("--json", action="store_true", help="raw record JSON")

    logs = sub.add_parser("logs", help="tail the remote log ring")
    logs.add_argument("--limit", type=int, default=50)
    logs.add_argument("--level", default=None, help="minimum severity")

    trend = sub.add_parser(
        "bench-trend", help="render the BENCH_server.json trajectory"
    )
    trend.add_argument(
        "--file", default=str(
            Path(__file__).resolve().parents[3] / "BENCH_server.json"
        ),
        help="benchmark results file (default: repo BENCH_server.json)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "status": cmd_status,
        "watch": cmd_watch,
        "trace": cmd_trace,
        "logs": cmd_logs,
        "bench-trend": cmd_bench_trend,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        return 130
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
