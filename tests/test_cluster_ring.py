"""Properties of the consistent-hash ring the gateway routes by.

The three guarantees sharding rests on, each pinned here: the mapping
is deterministic across processes (no per-process hash salting),
virtual nodes spread keys within the advertised balance envelope, and
removing a node moves only that node's keys (minimal movement) — which
is exactly why the gateway skips dead nodes instead of removing them.
"""

import hashlib
import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import repro
from repro.cluster import HashRing, ring_hash

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

NODES = ("10.0.0.1:8001", "10.0.0.2:8001", "10.0.0.3:8001")


def digests(count: int) -> list[str]:
    """Realistic routing keys: hex digests, like ``instance_digest``."""
    return [
        hashlib.sha256(f"instance-{i}".encode()).hexdigest()
        for i in range(count)
    ]


def test_preference_lists_cover_all_members_without_repeats():
    ring = HashRing(NODES)
    for key in digests(50):
        preference = ring.preference(key)
        assert sorted(preference) == sorted(NODES)
        assert preference[0] == ring.owner(key)


def test_owner_respects_alive_filter_in_successor_order():
    ring = HashRing(NODES)
    key = digests(1)[0]
    first, second, third = ring.preference(key)
    assert ring.owner(key, alive={second, third}) == second
    assert ring.owner(key, alive=lambda node: node == third) == third
    assert ring.owner(key, alive=set()) is None


def test_empty_ring_and_membership_bookkeeping():
    ring = HashRing()
    assert ring.preference("anything") == []
    assert ring.owner("anything") is None
    ring.add(NODES[0])
    ring.add(NODES[0])  # idempotent
    assert len(ring) == 1 and NODES[0] in ring
    assert ring.owner("anything") == NODES[0]
    ring.remove(NODES[0])
    ring.remove(NODES[0])  # idempotent
    assert len(ring) == 0 and ring.preference("anything") == []


def test_mapping_is_deterministic_across_processes():
    """The whole design rests on this: every gateway process, today
    and after a restart, maps every key to the same owner — builtin
    ``hash`` would be salted per process, SHA-256 is not."""
    keys = digests(50)
    ring = HashRing(NODES)
    local = {key: ring.preference(key) for key in keys}

    script = (
        "import json, sys\n"
        "from repro.cluster import HashRing\n"
        "nodes, keys = json.load(sys.stdin)\n"
        "ring = HashRing(nodes)\n"
        "print(json.dumps({k: ring.preference(k) for k in keys}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps([list(NODES), keys]),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert json.loads(completed.stdout) == local
    # And ring_hash itself is a pure content hash.
    assert ring_hash("abc") == int.from_bytes(
        hashlib.sha256(b"abc").digest()[:8], "big"
    )


def test_balance_within_twenty_percent_on_1k_digests():
    """1k digests over 3 nodes: every node lands within +-20% of the
    even share (the default virtual-node count is chosen for this)."""
    keys = digests(1000)
    ring = HashRing(NODES)
    counts = Counter(ring.owner(key) for key in keys)
    assert sorted(counts) == sorted(NODES)
    even = len(keys) / len(NODES)
    for node, count in counts.items():
        assert 0.8 * even <= count <= 1.2 * even, (node, count)


def test_removal_moves_only_the_removed_nodes_keys():
    """Minimal movement: dropping one of N nodes re-homes ~1/N of the
    keys — exactly those the removed node owned — and no key owned by
    a surviving node moves."""
    nodes = NODES + ("10.0.0.4:8001",)
    keys = digests(1000)
    ring = HashRing(nodes)
    before = {key: ring.owner(key) for key in keys}
    victim = nodes[1]
    ring.remove(victim)
    after = {key: ring.owner(key) for key in keys}

    moved = {key for key in keys if before[key] != after[key]}
    assert moved == {key for key in keys if before[key] == victim}
    # ~1/N of the keys, with slack for virtual-node variance.
    share = len(moved) / len(keys)
    assert 0.15 <= share <= 0.35, share

    # Re-adding the node restores the original ownership exactly —
    # the gateway's recovery story (rejoin with positions intact).
    ring.add(victim)
    assert {key: ring.owner(key) for key in keys} == before


def test_successor_skip_equals_removal_for_ownership():
    """Skipping a dead node via the alive-filter gives the same owner
    as physically removing it — so the gateway's skip-don't-remove
    failover agrees with consistent-hashing's movement guarantee."""
    keys = digests(300)
    ring = HashRing(NODES)
    dead = NODES[2]
    alive = set(NODES) - {dead}
    skipped = {key: ring.owner(key, alive=alive) for key in keys}

    removed_ring = HashRing(NODES)
    removed_ring.remove(dead)
    assert {key: removed_ring.owner(key) for key in keys} == skipped
