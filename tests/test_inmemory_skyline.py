"""InMemorySkylineManager (the Fsky substrate of Section 6.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline.inmemory import InMemorySkylineManager
from repro.skyline.reference import naive_skyline

from .conftest import points_strategy, random_points


def test_initial_skyline_matches_naive(rng):
    items = list(enumerate(random_points(200, 3, rng)))
    mgr = InMemorySkylineManager(items)
    assert mgr.skyline == naive_skyline(items)


def test_drain_matches_recompute(rng):
    items = list(enumerate(random_points(120, 3, rng, tie_heavy=True)))
    mgr = InMemorySkylineManager(items)
    alive = dict(items)
    while mgr.skyline:
        assert mgr.skyline == naive_skyline(list(alive.items()))
        victims = sorted(mgr.skyline)[:2]
        mgr.remove(victims)
        for v in victims:
            del alive[v]
    assert not alive or naive_skyline(list(alive.items())) == {}


def test_remove_non_member_rejected(rng):
    mgr = InMemorySkylineManager([(0, (1.0, 1.0)), (1, (0.1, 0.1))])
    with pytest.raises(KeyError):
        mgr.remove([1])  # dominated, not a skyline member


def test_memory_entries_counts_parked_items():
    mgr = InMemorySkylineManager(
        [(0, (1.0, 1.0)), (1, (0.5, 0.5)), (2, (0.2, 0.2))]
    )
    assert len(mgr) == 1
    assert mgr.memory_entries() == 2


def test_empty():
    mgr = InMemorySkylineManager([])
    assert mgr.skyline == {}
    assert mgr.remove([]) == {}


@given(points_strategy(2, min_size=1, max_size=30), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_property_drain(pts, batch):
    items = list(enumerate(pts))
    mgr = InMemorySkylineManager(items)
    alive = dict(items)
    while mgr.skyline:
        assert mgr.skyline == naive_skyline(list(alive.items()))
        victims = sorted(mgr.skyline)[:batch]
        mgr.remove(victims)
        for v in victims:
            del alive[v]
