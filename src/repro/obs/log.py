"""Structured JSON-lines logging with trace correlation.

One logging shape for every serving tier: each record is a flat dict —
timestamp, level, logger, message, the caller's keyword fields, plus
``trace_id`` / ``span_id`` lifted from the active
:class:`~repro.obs.trace.TraceContext` and the process's ``node`` id —
rendered either as a JSON line (``--log-json``) or a readable
``key=value`` line.  The same record dicts feed the bounded in-process
:class:`LogRing` each server/gateway exposes at ``GET /v1/logs``, so a
fleet's recent logs are tailable remotely without any log shipping.

Built on stdlib ``logging``: :func:`get_logger` wraps a standard
logger with keyword-field methods (``log.warning("backend down",
address=...)``), stashing the fields on the record for the formatters
and the ring handler; third-party/stdlib records flowing through the
same handlers simply have no extra fields.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
import traceback
from collections import deque

from repro.obs.trace import current_context

_FIELDS_ATTR = "repro_fields"

#: Default node id stamped on records (set once per process by
#: :func:`configure_logging`); embedded servers sharing one process
#: pass per-record node ids through their own ring handlers instead.
_NODE_ID: str | None = None

_LEVELS = {"DEBUG": 10, "INFO": 20, "WARNING": 30, "ERROR": 40, "CRITICAL": 50}


def set_node_id(node_id: str | None) -> None:
    global _NODE_ID
    _NODE_ID = node_id


def node_id() -> str | None:
    return _NODE_ID


def record_to_dict(record: logging.LogRecord, node: str | None = None) -> dict:
    """Flatten a stdlib record into the one structured-log shape."""
    out: dict = {
        "ts": record.created,
        "level": record.levelname,
        "logger": record.name,
        "message": record.getMessage(),
    }
    resolved_node = node if node is not None else _NODE_ID
    if resolved_node is not None:
        out["node"] = resolved_node
    context = current_context()
    if context is not None:
        out["trace_id"] = context.trace_id
        out["span_id"] = context.span_id
    fields = getattr(record, _FIELDS_ATTR, None)
    if fields:
        for key, value in fields.items():
            out.setdefault(key, value)
    if record.exc_info and record.exc_info[0] is not None:
        buf = io.StringIO()
        traceback.print_exception(*record.exc_info, file=buf, limit=20)
        out["exception"] = buf.getvalue().strip()
    return out


class JsonFormatter(logging.Formatter):
    """One JSON object per line; non-JSON field values fall back to
    ``str`` so a stray object can never break the log stream."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(record_to_dict(record), sort_keys=True, default=str)


class KeyValueFormatter(logging.Formatter):
    """Human-readable default: timestamp, level, message, key=value."""

    def format(self, record: logging.LogRecord) -> str:
        data = record_to_dict(record)
        ts = time.strftime("%H:%M:%S", time.localtime(data.pop("ts")))
        level = data.pop("level")
        name = data.pop("logger")
        message = data.pop("message")
        exception = data.pop("exception", None)
        suffix = " ".join(f"{k}={data[k]}" for k in data)
        line = f"{ts} {level:<7} {name} {message}"
        if suffix:
            line = f"{line} {suffix}"
        if exception:
            line = f"{line}\n{exception}"
        return line


class LogRing:
    """Bounded, thread-safe ring of recent structured log records.

    The remote-tail store behind ``GET /v1/logs``: appends are O(1),
    the oldest records fall off past ``capacity``, and ``dropped``
    keeps the loss observable.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("LogRing capacity must be >= 1")
        self.capacity = capacity
        self._guard = threading.Lock()
        self._records: deque[dict] = deque(maxlen=capacity)
        self._total = 0

    def append(self, record: dict) -> None:
        with self._guard:
            self._records.append(record)
            self._total += 1

    def tail(self, limit: int = 100, level: str | None = None) -> list[dict]:
        """The newest ``limit`` records (oldest-first), optionally at
        or above a severity level."""
        with self._guard:
            records = list(self._records)
        if level is not None:
            floor = _LEVELS.get(level.upper())
            if floor is not None:
                records = [
                    r for r in records if _LEVELS.get(r.get("level"), 0) >= floor
                ]
        if limit == 0:
            return []
        if limit > 0:
            records = records[-limit:]
        return records

    def info(self) -> dict:
        with self._guard:
            return {
                "capacity": self.capacity,
                "entries": len(self._records),
                "total": self._total,
                "dropped": max(0, self._total - self.capacity),
            }

    def __len__(self) -> int:
        with self._guard:
            return len(self._records)


class RingHandler(logging.Handler):
    """Feeds every record through to a :class:`LogRing` as a dict."""

    def __init__(self, ring: LogRing, node: str | None = None):
        super().__init__()
        self.ring = ring
        self.node = node

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.ring.append(record_to_dict(record, node=self.node))
        except Exception:  # a broken record must never kill the caller
            self.handleError(record)


class StructuredLogger:
    """Keyword-field façade over a stdlib logger.

    ``log.warning("backend down", address=addr, failures=3)`` — the
    message stays a plain string (grep-stable), the fields ride on the
    record for the JSON formatter and the ring.
    """

    def __init__(self, logger: logging.Logger):
        self._logger = logger
        self.name = logger.name

    def _log(self, level: int, message: str, fields: dict, exc_info=False) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(
                level, message, extra={_FIELDS_ATTR: fields}, exc_info=exc_info
            )

    def debug(self, message: str, **fields) -> None:
        self._log(logging.DEBUG, message, fields)

    def info(self, message: str, **fields) -> None:
        self._log(logging.INFO, message, fields)

    def warning(self, message: str, **fields) -> None:
        self._log(logging.WARNING, message, fields)

    def error(self, message: str, **fields) -> None:
        self._log(logging.ERROR, message, fields)

    def exception(self, message: str, **fields) -> None:
        self._log(logging.ERROR, message, fields, exc_info=True)

    def isEnabledFor(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)


def get_logger(name: str) -> StructuredLogger:
    return StructuredLogger(logging.getLogger(name))


def configure_logging(
    level: str = "INFO",
    json_mode: bool = False,
    node: str | None = None,
    logger_name: str = "repro",
) -> logging.Logger:
    """Console-script logging setup (used by ``repro-server`` /
    ``repro-gateway`` ``--log-level`` / ``--log-json``).

    Configures the ``repro`` logger subtree — not the root logger, so
    embedding applications keep their own logging — with one stream
    handler in the chosen format, replacing any handler a previous
    call installed.
    """
    if node is not None:
        set_node_id(node)
    logger = logging.getLogger(logger_name)
    logger.setLevel(_LEVELS.get(level.upper(), logging.INFO))
    logger.propagate = False
    for handler in [h for h in logger.handlers if isinstance(h, logging.StreamHandler)]:
        logger.removeHandler(handler)
    stream = logging.StreamHandler()
    stream.setFormatter(JsonFormatter() if json_mode else KeyValueFormatter())
    logger.addHandler(stream)
    return logger


__all__ = [
    "JsonFormatter",
    "KeyValueFormatter",
    "LogRing",
    "RingHandler",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
    "node_id",
    "record_to_dict",
    "set_node_id",
]
