"""Serde round trips (property-based) and deprecation shims.

``Problem`` and ``Solution`` must survive ``to_dict → from_dict`` and
``to_json → from_json`` bit-identically — capacities, priorities and
solver options included — since the dict form is the process-boundary
contract for a future service layer.
"""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import Problem, SerdeError, Solution
from repro.core import SOLVER_OPTIONS

from .conftest import random_instance

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_coord = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _weights(dims: int):
    return (
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=dims,
            max_size=dims,
        )
        .map(lambda xs: tuple(x / sum(xs) for x in xs))
    )


_METHOD_OPTIONS = {
    "sb": {"omega_fraction": st.one_of(st.none(), st.floats(0.01, 0.5)),
           "multi_pair": st.booleans()},
    "sb-alt": {"page_size": st.sampled_from([512, 1024, 4096])},
    "chain": {"disk_function_tree": st.booleans()},
    "brute-force": {"function_scan_pages": st.integers(0, 4)},
    # The planner pseudo-method: valid in serde, accepts no options.
    "auto": {},
}


@st.composite
def problems(draw) -> Problem:
    dims = draw(st.integers(2, 4))
    n_obj = draw(st.integers(1, 6))
    n_fun = draw(st.integers(1, 5))
    objects = tuple(
        tuple(draw(_coord) for _ in range(dims)) for _ in range(n_obj)
    )
    functions = tuple(draw(_weights(dims)) for _ in range(n_fun))
    ocaps = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(1, 4), min_size=n_obj, max_size=n_obj
            ).map(tuple),
        )
    )
    fcaps = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(1, 4), min_size=n_fun, max_size=n_fun
            ).map(tuple),
        )
    )
    gammas = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
                min_size=n_fun,
                max_size=n_fun,
            ).map(tuple),
        )
    )
    method = draw(st.sampled_from(sorted(_METHOD_OPTIONS)))
    options = {
        name: draw(strategy)
        for name, strategy in _METHOD_OPTIONS[method].items()
        if draw(st.booleans())
    }
    return Problem(
        objects=objects,
        functions=functions,
        object_capacities=ocaps,
        function_capacities=fcaps,
        priorities=gammas,
        method=method,
        options=options,
        page_size=draw(st.sampled_from([512, 4096])),
        memory_index=draw(st.sampled_from([None, True, False])),
        buffer_fraction=draw(st.floats(0.01, 1.0, allow_nan=False)),
    )


# ---------------------------------------------------------------------------
# Problem round trips
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(problems())
def test_problem_dict_round_trip_is_bit_identical(problem):
    restored = Problem.from_dict(problem.to_dict())
    assert restored == problem
    assert restored.objects == problem.objects
    assert restored.functions == problem.functions
    assert restored.object_capacities == problem.object_capacities
    assert restored.function_capacities == problem.function_capacities
    assert restored.priorities == problem.priorities
    assert dict(restored.options) == dict(problem.options)
    assert restored.page_size == problem.page_size
    assert restored.memory_index == problem.memory_index
    assert restored.buffer_fraction == problem.buffer_fraction


@settings(max_examples=60, deadline=None)
@given(problems())
def test_problem_json_round_trip_is_canonical(problem):
    text = problem.to_json()
    restored = Problem.from_json(text)
    assert restored == problem
    # Canonical form is a fixpoint: re-encoding yields the same bytes.
    assert restored.to_json() == text
    # And the payload is genuinely JSON (a service could ship it).
    assert json.loads(text)["schema"] == "repro.problem/v2"


def test_problem_v1_payload_still_reads():
    """Schema bump compatibility: a payload written by a pre-planner
    release (tagged ``repro.problem/v1``) must keep deserializing —
    the sections are identical, v2 only admits ``method="auto"``."""
    fs, os_ = random_instance(3, 5, 2, seed=4)
    problem = Problem.from_sets(os_, fs, method="sb")
    payload = problem.to_dict()
    assert payload["schema"] == "repro.problem/v2"
    payload["schema"] = "repro.problem/v1"
    restored = Problem.from_dict(payload)
    assert restored == problem
    # Re-encoding always emits the current schema.
    assert restored.to_dict()["schema"] == "repro.problem/v2"


def test_auto_method_serde_round_trip():
    fs, os_ = random_instance(3, 5, 2, seed=5)
    problem = Problem.from_sets(os_, fs, method="auto")
    restored = Problem.from_json(problem.to_json())
    assert restored == problem
    assert restored.method == "auto"
    # The resolved method keys the cache; both sides resolve equally.
    assert restored.solve_key() == problem.solve_key()
    assert restored.solve_key()[1] != "auto"


# ---------------------------------------------------------------------------
# Solution round trips
# ---------------------------------------------------------------------------


def test_solution_round_trip_preserves_pairs_and_stats():
    from repro.api import AssignmentSession

    fs, os_ = random_instance(6, 10, 3, seed=8, capacities=True)
    with AssignmentSession(Problem.from_sets(os_, fs)) as session:
        solution = session.solve()
    restored = Solution.from_json(solution.to_json())
    assert restored == solution
    assert restored.pairs == solution.pairs  # scores bit-identical
    assert restored.method == solution.method
    assert restored.stats.io.physical_reads == solution.stats.io.physical_reads
    assert restored.stats.io.logical_reads == solution.stats.io.logical_reads
    assert restored.stats.loops == solution.stats.loops
    assert restored.stats.counters == solution.stats.counters
    assert restored.stats.cpu_seconds == solution.stats.cpu_seconds
    # Lookups survive detachment from the session.
    for pair in restored:
        assert (pair.oid, pair.count) in restored.partner_of(pair.fid)


def test_solution_without_stats_round_trips():
    sol = Solution(pairs=(), method="dynamic")
    assert Solution.from_dict(sol.to_dict()) == sol


# ---------------------------------------------------------------------------
# Strict decoding
# ---------------------------------------------------------------------------


def test_serde_rejects_wrong_schema_and_unknown_fields():
    fs, os_ = random_instance(2, 3, 2, seed=9)
    payload = Problem.from_sets(os_, fs).to_dict()
    with pytest.raises(SerdeError):
        Problem.from_dict({**payload, "schema": "repro.problem/v999"})
    with pytest.raises(SerdeError):
        Problem.from_dict({**payload, "surprise": 1})
    with pytest.raises(SerdeError):
        Problem.from_dict(
            {**payload, "solver": {"method": "sb", "bogus": True}}
        )
    with pytest.raises(SerdeError):
        Problem.from_dict({"schema": "repro.problem/v1"})
    with pytest.raises(SerdeError):
        Problem.from_json("{not json")
    with pytest.raises(SerdeError):
        Solution.from_dict({"schema": "repro.solution/v1", "method": "sb"})


def test_every_named_solver_options_are_serializable():
    """Every documented option name fits the JSON-scalar constraint."""
    for method, accepted in SOLVER_OPTIONS.items():
        assert all(isinstance(name, str) for name in accepted), method


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


def test_deprecated_entry_points_warn_exactly_once():
    repro._DEPRECATION_EMITTED.clear()
    objects = repro.ObjectSet([(0.5, 0.5), (0.2, 0.8)])
    functions = repro.FunctionSet([(1.0, 0.0)])
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        index = repro.build_object_index(objects)
        repro.build_object_index(objects)
        repro.solve(functions, index)
        repro.solve(functions, index)
    messages = [
        str(w.message)
        for w in record
        if issubclass(w.category, DeprecationWarning)
    ]
    assert len([m for m in messages if "repro.solve" in m]) == 1
    assert len([m for m in messages if "repro.build_object_index" in m]) == 1


def test_deprecated_entry_points_still_functional():
    repro._DEPRECATION_EMITTED.clear()
    objects = repro.ObjectSet([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
    functions = repro.FunctionSet([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        index = repro.build_object_index(objects)
        matching, stats = repro.solve(functions, index, method="sb")
    assert {(p.fid, p.oid) for p in matching.pairs} == {(0, 2), (1, 1), (2, 0)}
