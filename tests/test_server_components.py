"""Unit tests for the serving-layer building blocks: the solution LRU,
admission control, job store bounds, and latency histograms."""

import pytest

from repro.api import Problem, Solution
from repro.server.cache import SolutionCache
from repro.server.jobs import DONE, AdmissionController, JobStore
from repro.server.metrics import LatencyHistogram, ServerMetrics


def solution(tag: int) -> Solution:
    from repro.core.types import AssignedPair

    return Solution(pairs=(AssignedPair(0, tag, 1.0, 1),), method="sb")


def key(tag: int):
    return (f"instance-{tag}", "sb", "{}")


def test_solution_cache_lru_eviction_and_counters():
    cache = SolutionCache(max_entries=2)
    cache.put(key(1), solution(1))
    cache.put(key(2), solution(2))
    assert cache.get(key(1)) == solution(1)   # 1 now most-recent
    cache.put(key(3), solution(3))            # evicts 2
    assert cache.get(key(2)) is None
    assert cache.get(key(1)) is not None
    assert cache.get(key(3)) is not None
    info = cache.info()
    assert info == {
        "enabled": True,
        "hits": 3, "misses": 1, "evictions": 1, "entries": 2, "max_entries": 2,
    }


def test_solution_cache_zero_size_disables_caching():
    cache = SolutionCache(max_entries=0)
    cache.put(key(1), solution(1))
    assert cache.get(key(1)) is None
    assert cache.info()["entries"] == 0
    with pytest.raises(ValueError):
        SolutionCache(max_entries=-1)


def test_disabled_solution_cache_reports_no_misses():
    """Regression: a disabled cache must not count misses — ``/metrics``
    would otherwise show a 0% hit rate that reads as cache failure
    rather than cache-off."""
    cache = SolutionCache(max_entries=0)
    for tag in range(5):
        assert cache.get(key(tag)) is None
        cache.put(key(tag), solution(tag))
    info = cache.info()
    assert info["enabled"] is False
    assert info["hits"] == 0
    assert info["misses"] == 0
    assert info["evictions"] == 0
    # an enabled cache still counts
    enabled = SolutionCache(max_entries=2)
    assert enabled.get(key(1)) is None
    assert enabled.info()["misses"] == 1
    assert enabled.info()["enabled"] is True


def test_admission_controller_bounds_and_peak():
    admission = AdmissionController(limit=2)
    assert admission.try_acquire() and admission.try_acquire()
    assert not admission.try_acquire()     # saturated
    admission.release()
    assert admission.try_acquire()         # a slot freed up
    assert admission.info() == {
        "depth": 2, "peak_depth": 2, "limit": 2, "underflows": 0,
    }
    with pytest.raises(ValueError):
        AdmissionController(limit=0)


def test_admission_release_underflow_clamps_and_counts(caplog):
    """Regression: an unmatched release used to raise RuntimeError —
    inside the server's ``finally`` blocks that masked the original
    handler exception.  It now clamps at zero, logs, and counts."""
    admission = AdmissionController(limit=2)
    assert admission.try_acquire()
    admission.release()
    with caplog.at_level("WARNING", logger="repro.server"):
        admission.release()                # unbalanced: clamped, not raised
        admission.release()
    assert admission.depth == 0
    assert admission.info()["underflows"] == 2
    assert any("without a matching acquire" in r.message for r in caplog.records)
    # the counter still works after an underflow
    assert admission.try_acquire()
    assert admission.info()["depth"] == 1


def make_problem():
    return (
        Problem.builder()
        .add_objects([(0.5, 0.5), (0.2, 0.8)])
        .add_functions([(0.5, 0.5)])
        .build()
    )


def test_job_store_trims_finished_jobs_only():
    store = JobStore(history_limit=3)
    problem = make_problem()
    jobs = [store.create(f"p{i}", problem) for i in range(3)]
    jobs[0].status = DONE
    jobs[1].status = DONE
    live = jobs[2]
    fourth = store.create("p3", problem)
    assert len(store) == 3
    assert store.get(jobs[0].job_id) is None      # oldest finished dropped
    assert store.get(live.job_id) is live         # live job survives
    assert store.get(fourth.job_id) is fourth
    # job ids keep counting monotonically
    assert fourth.job_id > live.job_id


def test_job_to_dict_shapes():
    store = JobStore()
    job = store.create("pid", make_problem())
    payload = job.to_dict()
    assert payload["status"] == "queued"
    assert payload["solution"] is None
    assert "solution" not in job.to_dict(include_solution=False)


def test_job_finish_transitions_publish_atomically():
    """``complete``/``fail`` assign every result field before ``status``
    flips, under the record lock — concurrent ``to_dict`` snapshots can
    never pair a finished status with missing results."""
    import threading

    store = JobStore()
    job = store.create("pid", make_problem())
    job.mark_running()
    assert job.status == "running" and job.started_at is not None

    violations = []
    stop = threading.Event()

    def poll():
        while not stop.is_set():
            record = job.to_dict()
            if record["status"] == DONE and (
                record["solution"] is None
                or record["wall_seconds"] is None
                or record["finished_at"] is None
            ):
                violations.append(record)

    poller = threading.Thread(target=poll)
    poller.start()
    try:
        job.complete(solution(1), cache_hit=False, wall_seconds=0.5)
    finally:
        stop.set()
        poller.join()
    assert not violations
    record = job.to_dict()
    assert record["status"] == DONE
    assert record["solution"] is not None
    assert record["wall_seconds"] == 0.5
    assert record["finished_at"] is not None

    failed = store.create("pid2", make_problem())
    failed.fail("boom")
    assert failed.finished
    assert failed.to_dict()["error"] == "boom"
    assert failed.to_dict()["finished_at"] is not None


def test_job_finished_reads_status_under_the_record_lock():
    """Regression: ``Job.finished`` used to read ``status`` unguarded —
    a poller could observe the DONE flip before the same ``complete()``
    transaction published its result fields."""
    import threading

    store = JobStore()
    job = store.create("pid", make_problem())

    class RecordingGuard:
        def __init__(self):
            self.entries = 0
            self._lock = threading.Lock()

        def __enter__(self):
            self.entries += 1
            self._lock.acquire()
            return self

        def __exit__(self, *exc_info):
            self._lock.release()
            return False

    guard = RecordingGuard()
    job._guard = guard
    assert job.finished is False
    assert guard.entries == 1
    job.complete(solution(1), wall_seconds=0.1, cache_hit=False)
    assert job.finished is True


def test_latency_histogram_quantiles():
    hist = LatencyHistogram()
    for _ in range(99):
        hist.observe(0.002)
    hist.observe(4.0)
    assert hist.count == 100
    assert 0.001 <= hist.quantile(0.5) <= 0.0025
    assert 2.5 <= hist.quantile(0.995) <= 5.0
    assert hist.max_seconds == 4.0
    payload = hist.to_dict()
    assert payload["count"] == 100
    assert payload["buckets"]["+inf"] == 0
    # q=0 estimates the minimum: the occupied bucket's lower bound
    assert hist.quantile(0.0) == pytest.approx(0.001)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_latency_histogram_empty_and_overflow():
    hist = LatencyHistogram()
    assert hist.quantile(0.99) == 0.0
    hist.observe(1e6)  # lands in +inf bucket; quantile reports lower bound
    assert hist.quantile(0.99) == 10.0
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=(0.1, 1.0))  # must end with +inf


def test_server_metrics_engine_accumulation_skips_cache_hits():
    metrics = ServerMetrics()

    class FakeIO:
        physical_reads = 5
        logical_reads = 9
        physical_writes = 2

    class FakeStats:
        io = FakeIO()
        cpu_seconds = 0.25

    class FakeSolution:
        stats = FakeStats()

    metrics.record_solve("sb", 0.1, FakeSolution(), cached=False)
    metrics.record_solve("sb", 0.0001, FakeSolution(), cached=True)
    assert metrics.engine_physical_reads == 5    # hit did not double count
    assert metrics.engine_logical_reads == 9
    assert metrics.solves_total == 2
    assert metrics.solve_cache_hits == 1
    snapshot = metrics.snapshot(
        queue={"depth": 0}, solution_cache={}, index_cache={}
    )
    assert snapshot["latency"]["sb"]["count"] == 2
    assert snapshot["engine"]["cpu_seconds"] == 0.25
    assert snapshot["churn"] == {}  # no live session yet


def test_server_metrics_snapshot_carries_churn_section():
    metrics = ServerMetrics()
    info = {"backend": "vec", "events_applied": 7, "pairs_rematched": 42}
    snapshot = metrics.snapshot(
        queue={"depth": 0}, solution_cache={}, index_cache={}, churn=info
    )
    assert snapshot["churn"] == info
    snapshot["churn"]["events_applied"] = 0  # snapshot holds a copy
    assert info["events_applied"] == 7


def test_latency_histogram_bisect_matches_linear_reference():
    """``observe`` binary-searches the bucket bounds; its placement
    must agree with the first-bound-with-seconds<=bound linear scan it
    replaced, including exactly-on-a-bound values and +inf overflow."""
    from repro.server.metrics import LATENCY_BUCKETS

    def linear_bucket(seconds):
        for i, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                return i
        raise AssertionError("unreachable: buckets end with +inf")

    probes = [0.0, 1e-9, 5e-4, 0.00051, 0.001, 0.0024, 0.25, 9.99, 10.0, 11.0, 1e9]
    probes += [b for b in LATENCY_BUCKETS if b != float("inf")]
    hist = LatencyHistogram()
    expected = [0] * len(LATENCY_BUCKETS)
    for seconds in probes:
        hist.observe(seconds)
        expected[linear_bucket(seconds)] += 1
    assert hist.counts == expected
    assert hist.count == len(probes)


def test_server_metrics_planner_picks_and_estimate_error():
    from repro.planner import Plan

    metrics = ServerMetrics()
    auto_plan = Plan(
        requested="auto",
        method="chain",
        estimated_seconds=0.08,
        planning_seconds=0.0001,
    )

    class FakeSolution:
        stats = None
        plan = auto_plan

    # Fresh auto solve: pick counted, estimate error sampled.
    metrics.record_solve("chain", 0.1, FakeSolution(), cached=False, plan=auto_plan)
    # Cached auto solve: pick counted, no estimate sample.
    metrics.record_solve("chain", 0.001, FakeSolution(), cached=True, plan=auto_plan)
    # Explicit request replaying the same cached entry: no pick.
    metrics.record_solve("chain", 0.001, FakeSolution(), cached=True)
    snapshot = metrics.snapshot(
        queue={"depth": 0}, solution_cache={}, index_cache={}
    )
    planner = snapshot["planner"]
    assert planner["picks"] == {"chain": 2}
    assert planner["auto_solves"] == 2
    assert planner["estimate"]["samples"] == 1
    assert planner["estimate"]["mean_abs_error_seconds"] == pytest.approx(0.02)
    assert planner["estimate"]["mean_abs_relative_error"] == pytest.approx(0.2)
