"""Prioritized assignment — the two-skyline variant (Section 6.2).

With per-function priorities γ the effective coefficients
``α'_i = γ·α_i`` no longer sum to 1, which loosens the plain TA
threshold (``B`` must be initialized to ``max γ``).  The paper's
stronger alternative: also maintain a skyline ``Fsky`` over the
effective coefficient vectors — stable pairs can only join ``Fsky``
with ``Osky`` — and search best pairs *exhaustively* between the two
skylines ("it is faster to exhaustively search ... than to keep the
functions indexed and execute TA", because Fsky is small and sees
frequent updates that would invalidate TA states).

Correctness of restricting to Fsky: if f' dominates f coefficient-wise
then ``f'(o) >= f(o)`` for every non-negative object, and the canonical
function order of :mod:`repro.ordering` breaks score ties toward the
dominator, so the canonical best function for any object is always on
the function skyline.
"""

from __future__ import annotations

import time

from repro.core.capacity import CapacityTracker
from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.core.vectorized import MatrixView
from repro.data.instances import FunctionSet
from repro.ordering import pair_key
from repro.skyline.inmemory import InMemorySkylineManager
from repro.skyline.maintenance import UpdateSkylineManager
from repro.storage.stats import BYTES_PER_PLIST_ENTRY, MemoryTracker


def sb_two_skyline_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    multi_pair: bool = True,
) -> AssignmentResult:
    """SB with both an object skyline and a function skyline."""
    start = time.perf_counter()
    io_before = index.stats.snapshot()
    mem = MemoryTracker()
    matching = Matching()
    caps = CapacityTracker(functions, index.objects)
    objects = index.objects

    if len(functions) == 0 or len(objects) == 0:
        return AssignmentResult(matching, RunStats())

    object_manager = UpdateSkylineManager(index.tree, mem)
    osky = object_manager.compute_initial()
    function_manager = InMemorySkylineManager(
        [(fid, functions.effective_weights(fid)) for fid in range(len(functions))]
    )
    fsky = function_manager.skyline

    loops = 0
    while not caps.exhausted and osky and fsky:
        loops += 1
        mem.set_gauge(
            "fsky", (len(fsky) + function_manager.memory_entries())
            * BYTES_PER_PLIST_ENTRY,
        )

        # Best function of each skyline object, searched within Fsky
        # (exhaustively, as Section 6.2 argues — vectorized here).
        fsky_view = MatrixView.from_dict(fsky)
        fbest: dict[int, tuple[int, float]] = {}
        for oid in sorted(osky):
            fbest[oid] = fsky_view.best_for(objects.points[oid])

        # Best skyline object of each candidate function.
        osky_view = MatrixView.from_dict(osky)
        candidate_fids = sorted({fid for fid, _ in fbest.values()})
        obest: dict[int, int] = {}
        for fid in candidate_fids:
            w = functions.effective_weights(fid)
            obest[fid] = osky_view.best_for(w)[0]

        stable = [
            (fid, obest[fid], fbest[obest[fid]][1])
            for fid in candidate_fids
            if fbest[obest[fid]][0] == fid
        ]
        if not multi_pair:
            stable = [min(
                stable,
                key=lambda t: pair_key(
                    t[2], functions.effective_weights(t[0]), t[0],
                    objects.points[t[1]], t[1],
                ),
            )]

        removed_objects: list[int] = []
        removed_functions: list[int] = []
        for fid, oid, s in stable:
            units, f_died, o_died = caps.assign(fid, oid)
            matching.add(fid, oid, s, units)
            if f_died:
                removed_functions.append(fid)
            if o_died:
                removed_objects.append(oid)

        if caps.exhausted:
            break
        if removed_objects:
            osky = object_manager.remove(removed_objects)
        if removed_functions:
            fsky = function_manager.remove(removed_functions)

    stats = RunStats(
        io=index.stats.delta_since(io_before),
        cpu_seconds=time.perf_counter() - start,
        peak_memory_bytes=mem.peak_bytes,
        loops=loops,
        counters={"fsky_final_size": len(fsky)},
    )
    return AssignmentResult(matching, stats)
