"""CommitPolicy strategy implementations.

The capacitated/prioritized commit itself (consume ``min`` capacity,
record units, detect deaths — Section 6.1's batched Lines 15–17) is
engine-owned; a policy only decides *which* of the round's mutually-
best pairs are handed to it.
"""

from __future__ import annotations

from repro.engine.engine import EngineContext
from repro.engine.protocols import StablePair
from repro.ordering import pair_key


class MultiPairCommit:
    """Commit every mutually-best pair of the round (Section 5.3)."""

    def __init__(self, ctx: EngineContext):
        del ctx

    def select(self, stable: list[StablePair]) -> list[StablePair]:
        return stable


class SinglePairCommit:
    """Commit only the canonically best pair (Algorithm 1's one pair
    per loop; the ``multi_pair=False`` ablation)."""

    def __init__(self, ctx: EngineContext):
        self._functions = ctx.functions
        self._objects = ctx.objects

    def select(self, stable: list[StablePair]) -> list[StablePair]:
        return [min(
            stable,
            key=lambda t: pair_key(
                t[2], self._functions.effective_weights(t[0]), t[0],
                self._objects.points[t[1]], t[1],
            ),
        )]


def build_commit_policy(ctx: EngineContext, multi_pair: bool):
    return MultiPairCommit(ctx) if multi_pair else SinglePairCommit(ctx)
