"""Stability validation must detect broken matchings."""

import pytest

from repro.core.types import Matching
from repro.core.validate import (
    assert_stable,
    assert_valid_matching,
    find_blocking_pair,
)
from repro.core.reference import greedy_assign
from repro.data.instances import FunctionSet, ObjectSet
from repro.scoring import score

from .conftest import random_instance


def test_stable_matching_passes():
    fs, os_ = random_instance(6, 10, 3, seed=1)
    result = greedy_assign(fs, os_)
    assert find_blocking_pair(result.matching, fs, os_) is None
    assert_valid_matching(result.matching, fs, os_)


def test_swapped_partners_detected():
    """Swapping two pairs of a stable matching creates a blocking pair."""
    fs, os_ = random_instance(6, 10, 3, seed=2)
    matching = greedy_assign(fs, os_).matching
    pairs = matching.pairs
    assert len(pairs) >= 2
    a, b = pairs[0], pairs[1]
    corrupted = Matching()
    corrupted.add(a.fid, b.oid, score(fs.effective_weights(a.fid),
                                      os_.points[b.oid]))
    corrupted.add(b.fid, a.oid, score(fs.effective_weights(b.fid),
                                      os_.points[a.oid]))
    for p in pairs[2:]:
        corrupted.add(p.fid, p.oid, p.score, p.count)
    # The first greedy pair (a) was the global best; splitting it up
    # always leaves (a.fid, a.oid) blocking (though the scan may find
    # another blocking pair first).
    assert find_blocking_pair(corrupted, fs, os_) is not None
    with pytest.raises(AssertionError):
        assert_stable(corrupted, fs, os_)


def test_undersized_matching_rejected():
    fs, os_ = random_instance(4, 10, 2, seed=3)
    matching = greedy_assign(fs, os_).matching
    partial = Matching()
    for p in matching.pairs[:-1]:
        partial.add(p.fid, p.oid, p.score, p.count)
    with pytest.raises(AssertionError):
        assert_valid_matching(partial, fs, os_)


def test_over_capacity_rejected():
    fs = FunctionSet([(0.5, 0.5)])
    os_ = ObjectSet([(0.5, 0.5), (0.4, 0.4)])
    over = Matching()
    over.add(0, 0, 0.5)
    over.add(0, 1, 0.4)  # function 0 has capacity 1
    with pytest.raises(ValueError):
        find_blocking_pair(over, fs, os_)


def test_empty_matching_on_empty_side():
    fs = FunctionSet([])
    os_ = ObjectSet([(0.5, 0.5)])
    m = Matching()
    assert find_blocking_pair(m, fs, os_) is None


def test_capacitated_stability():
    fs, os_ = random_instance(5, 8, 3, seed=4, capacities=True)
    matching = greedy_assign(fs, os_).matching
    assert_valid_matching(matching, fs, os_)


def test_unstable_capacitated_detected():
    """Give one of the best object's capacity units to the wrong
    function: the displaced better function forms a blocking pair."""
    fs = FunctionSet([(1.0, 0.0), (0.0, 1.0), (0.5, 0.5)])
    os_ = ObjectSet([(1.0, 0.9), (0.1, 0.1)], capacities=[2, 2])
    # Scores on o0: f0 = 1.0 > f2 = 0.95 > f1 = 0.9.  Canonically o0's
    # two units go to f0 and f2; give one to f1 instead.
    bad = Matching()
    bad.add(0, 0, score((1.0, 0.0), (1.0, 0.9)))
    bad.add(1, 0, score((0.0, 1.0), (1.0, 0.9)))
    bad.add(2, 1, score((0.5, 0.5), (0.1, 0.1)))  # f2 displaced to o1
    # (f2, o0) blocks: f2 prefers o0 to o1, and o0 prefers f2 to its
    # worst partner f1.
    assert find_blocking_pair(bad, fs, os_) == (2, 0)
