"""Figure 17 — disk-resident functions (Section 7.6).

The storage setting is swapped: |F| and |O| trade cardinalities, the
object R-tree fits in memory and the function coefficient lists live
on 4 KB disk pages.  Methods:

- ``sb-alt`` — the batch best-pair search (one list sweep per skyline
  version; each coefficient accessed at most once per sweep);
- ``sb``     — per-object TA over the same paged lists (charged);
- ``brute-force`` — in-memory object searches, charged one sequential
  scan of F;
- ``chain``  — function R-tree on disk pages (2% buffer), charged.

Expected shape: SB-alt saves orders of magnitude of function-list I/O
vs per-object TA; CPU-wise SB-alt beats SB on independent data and
trails it on anti-correlated data (deep scans per skyline version vs
resumed searches).
"""

import math

import pytest

from repro.bench.config import DIMS_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

# Swapped cardinalities (Section 7.6 "we swap the cardinality of
# functions and objects").
NF = D.no
NO = D.nf

METHODS = ["sb-alt", "sb", "brute-force", "chain"]
DISTRIBUTIONS = ["independent", "anti-correlated"]


def _solve_kwargs(method: str, nf: int, dims: int) -> dict:
    if method == "sb-alt":
        return {"page_size": 4096}
    if method == "sb":
        return {"paged_function_lists": 4096}
    if method == "brute-force":
        # One sequential scan of F: 16-byte coefficient entries.
        return {"function_scan_pages": math.ceil(nf * dims * 16 / 4096)}
    if method == "chain":
        return {"disk_function_tree": True}
    raise AssertionError(method)


@pytest.mark.benchmark(group="fig17-disk-functions")
@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("dims", DIMS_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig17(benchmark, method, dims, distribution):
    functions, objects = make_instance(NF, NO, dims, distribution, seed=17)
    matching, stats = bench_cell(
        benchmark, method, functions, objects,
        memory_index=True,
        **_solve_kwargs(method, NF, dims),
    )
    assert matching.num_units == min(len(functions), len(objects))
