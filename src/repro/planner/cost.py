"""Per-config cost models: calibrated power laws over the profile.

Each registered config gets a model of the form::

    log t = b · features(profile)

i.e. a power law in the cardinalities / dimensionality with linear
shape corrections (see :func:`repro.planner.profile.features`).  The
coefficient vectors live in the checked-in calibration table
(:mod:`repro.planner.calibration`), fit from measured wall times by
``benchmarks/bench_planner.py --calibrate`` on a grid of generated
instance shapes.

Absolute estimates are only as good as the calibration host; the
planner never needs them to be — it only ranks candidates, and the
*ratios* between methods are far more stable across hosts than the
raw seconds.  ``estimated_seconds`` is still surfaced through
``explain()`` and the ``/metrics`` estimate-error gauge so drift is
observable, and the table can be re-fit on the deployment host.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import exp, log

from repro.planner.calibration import CALIBRATION, DEFAULT_ROW
from repro.planner.profile import FEATURE_NAMES, InstanceProfile, features


@dataclass(frozen=True)
class CostModel:
    """One config's fitted power-law cost model."""

    method: str
    coefficients: tuple[float, ...]

    def estimate_seconds(self, profile: InstanceProfile) -> float:
        return self.estimate_from_features(features(profile))

    def estimate_from_features(self, x: tuple[float, ...]) -> float:
        """Estimate from a pre-computed feature vector — the planner
        scores every candidate against one shared vector rather than
        re-deriving it per model (planning is on the request path)."""
        return exp(sum(b * f for b, f in zip(self.coefficients, x)))


@lru_cache(maxsize=None)
def cost_model_for(method: str) -> CostModel:
    """The calibrated model for a registered config (memoized).

    Falls back to :data:`~repro.planner.calibration.DEFAULT_ROW` for a
    config the table has no row for (e.g. a freshly registered solver
    before recalibration) — a deliberately pessimistic row, so an
    uncalibrated config is never picked over a calibrated one.
    """
    row = CALIBRATION.get(method, DEFAULT_ROW)
    return CostModel(method=method, coefficients=tuple(row))


def fit_power_law(
    samples: list[tuple[InstanceProfile, float]],
    ridge: float = 0.05,
) -> tuple[float, ...]:
    """Ridge-regularized fit of one method's coefficients.

    ``samples`` are ``(profile, measured_seconds)`` pairs; the fit
    minimizes squared error on ``log(seconds)`` over the feature
    vector plus an L2 penalty on every non-intercept coefficient.  The
    penalty matters: calibration grids are small and the shape
    features (skew, correlation) span narrow ranges there, so plain
    least squares produces huge mutually-cancelling coefficients that
    explode the estimates on out-of-grid instances.  Used by the
    calibration mode of ``benchmarks/bench_planner.py``.
    """
    import numpy as np

    if len(samples) < len(FEATURE_NAMES):
        raise ValueError(
            f"need at least {len(FEATURE_NAMES)} samples to fit "
            f"{len(FEATURE_NAMES)} coefficients, got {len(samples)}"
        )
    x = np.asarray([features(p) for p, _ in samples], dtype=np.float64)
    y = np.asarray(
        [log(max(seconds, 1e-9)) for _, seconds in samples], dtype=np.float64
    )
    penalty = np.eye(x.shape[1]) * ridge
    penalty[0, 0] = 0.0  # the intercept absorbs the host constant
    coeffs = np.linalg.solve(x.T @ x + penalty, x.T @ y)
    return tuple(float(c) for c in coeffs)


__all__ = ["CostModel", "cost_model_for", "fit_power_law"]
