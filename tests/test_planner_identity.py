"""The planner's bit-identical guarantee: for every config the planner
can emit, ``method="auto"`` produces *exactly* what directly invoking
the chosen config produces — pairs bit for bit plus the measured-work
counters (I/O, loops, peak memory, solver counters) — at batch,
session and embedded-server level, on both executors.

Two layers of coverage:

- **natural picks** — real instances routed by the checked-in
  calibration table, compared against a direct invocation of whatever
  the planner picked;
- **forced picks** — the cost model is monkeypatched to favour each
  plannable config in turn, so the guarantee is exercised for every
  config the planner could ever emit, not just the ones this host's
  calibration happens to choose.
"""

import pytest

from repro.api import AssignmentSession, Problem
from repro.planner import REGISTRY, CostModel
from repro.service import BatchSolver, SolveJob

from .conftest import random_instance

PLANNABLE = tuple(spec.name for spec in REGISTRY.plannable())


def make_problem(method="auto", nf=7, no=30, dims=3, seed=11, **kwargs):
    functions, objects = random_instance(nf, no, dims, seed=seed, **kwargs)
    return Problem.from_sets(objects, functions, method=method)


def job_for(problem, method):
    return SolveJob(
        functions=problem.function_set,
        objects=problem.object_set,
        method=method,
    )


def signature(result):
    """Everything that must not differ between auto and direct runs."""
    stats = result.stats
    return (
        [(p.fid, p.oid, p.score, p.count) for p in result.matching.pairs],
        stats.io.physical_reads,
        stats.io.logical_reads,
        stats.io.physical_writes,
        stats.loops,
        stats.peak_memory_bytes,
        dict(stats.counters),
    )


def solution_signature(solution):
    stats = solution.stats
    return (
        [(p.fid, p.oid, p.score, p.count) for p in solution.pairs],
        stats.io.physical_reads,
        stats.io.logical_reads,
        stats.io.physical_writes,
        stats.loops,
        stats.peak_memory_bytes,
        dict(stats.counters),
    )


def favor(monkeypatch, method):
    """Make the planner deterministically pick ``method``."""

    def fake_cost_model(name):
        intercept = -20.0 if name == method else 0.0
        return CostModel(name, (intercept, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0))

    monkeypatch.setattr("repro.planner.plan.cost_model_for", fake_cost_model)


@pytest.fixture(scope="module")
def process_solver():
    with BatchSolver(executor="process", max_workers=2) as solver:
        yield solver


# ---------------------------------------------------------------------------
# Batch level
# ---------------------------------------------------------------------------


def test_auto_matches_natural_pick_on_thread_batch():
    problem = make_problem()
    solver = BatchSolver()
    auto_result = solver.solve_one(job_for(problem, "auto"))
    assert auto_result.plan is not None
    chosen = auto_result.plan.method
    assert auto_result.method == chosen != "auto"
    direct = solver.solve_one(job_for(problem, chosen))
    assert signature(auto_result.result) == signature(direct.result)


@pytest.mark.parametrize("method", PLANNABLE)
def test_auto_matches_every_forced_pick_on_thread_batch(monkeypatch, method):
    favor(monkeypatch, method)
    problem = make_problem(seed=23, capacities=True, priorities=True)
    solver = BatchSolver()
    auto_result = solver.solve_one(job_for(problem, "auto"))
    assert auto_result.method == method
    assert auto_result.plan.method == method
    direct = solver.solve_one(job_for(problem, method))
    assert signature(auto_result.result) == signature(direct.result)


@pytest.mark.parametrize("method", PLANNABLE)
def test_auto_matches_every_forced_pick_on_process_batch(
    monkeypatch, method, process_solver
):
    # Planner resolution happens parent-side (the wire carries the
    # concrete method), so the monkeypatched cost model applies to the
    # process backend too — workers never plan.
    favor(monkeypatch, method)
    problem = make_problem(seed=29)
    auto_result = process_solver.solve_one(job_for(problem, "auto"))
    assert auto_result.method == method
    direct = process_solver.solve_one(job_for(problem, method))
    assert signature(auto_result.result) == signature(direct.result)


def test_auto_plan_resolved_once_per_job(monkeypatch):
    calls = []
    from repro.planner.plan import plan_instance as real_plan

    def counting_plan(functions, objects, *args, **kwargs):
        calls.append(1)
        return real_plan(functions, objects, *args, **kwargs)

    monkeypatch.setattr("repro.service.batch.plan_instance", counting_plan)
    problem = make_problem(seed=31)
    job = job_for(problem, "auto")
    solver = BatchSolver()
    solver.solve_one(job)
    # The resolved plan is memoized on the job: re-running it (or the
    # memory-index probe consulting it) must not re-profile.
    solver.solve_one(job)
    assert sum(calls) == 1


# ---------------------------------------------------------------------------
# Session level
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("executor", ["thread", "process"])
def test_auto_matches_direct_at_session_level(executor):
    problem = make_problem(seed=37)
    with AssignmentSession(problem, executor=executor, max_workers=2) as session:
        auto_solution = session.solve()
        assert auto_solution.plan is not None
        chosen = auto_solution.method
        assert chosen in PLANNABLE
        direct_solution = session.solve(problem.with_method(chosen))
        assert direct_solution.plan is None  # explicit pick: no planning
        assert solution_signature(auto_solution) == (
            solution_signature(direct_solution)
        )
        # The session surfaces the decision artifact.
        plan = session.explain()
        assert plan.method == chosen
        assert plan.auto


@pytest.mark.parametrize("method", PLANNABLE)
def test_session_solve_many_mixed_auto_and_direct(monkeypatch, method):
    favor(monkeypatch, method)
    problem = make_problem(seed=41)
    with AssignmentSession(problem) as session:
        auto_sol, direct_sol = session.solve_many(
            [problem, problem.with_method(method)]
        )
        assert auto_sol.method == method
        assert solution_signature(auto_sol) == solution_signature(direct_sol)


# ---------------------------------------------------------------------------
# Embedded-server level
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_auto_matches_direct_through_embedded_server(executor):
    from repro.server import Client, ServerConfig, running_server

    problem = make_problem(seed=43)
    config = ServerConfig(port=0, executor=executor, workers=2)
    with running_server(config) as handle:
        with Client(f"http://127.0.0.1:{handle.port}") as client:
            auto_solution = client.solve(problem)
            assert auto_solution.plan is not None
            chosen = auto_solution.method
            assert chosen in PLANNABLE
            direct_solution = client.solve(problem.with_method(chosen))
            assert solution_signature(auto_solution) == (
                solution_signature(direct_solution)
            )


def test_server_auto_shares_cache_with_explicit_pick():
    """method="auto" and an explicit pick of the resolved config key
    the solution cache identically (the solve key carries the
    *resolved* method), so the second request is a cache hit."""
    from repro.server import Client, ServerConfig, running_server

    problem = make_problem(seed=47)
    with running_server(ServerConfig(port=0)) as handle:
        with Client(f"http://127.0.0.1:{handle.port}") as client:
            auto_solution = client.solve(problem)
            metrics = client.metrics()
            assert metrics["solution_cache"]["misses"] == 1
            explicit = problem.with_method(auto_solution.method)
            client.solve(explicit)
            metrics = client.metrics()
            # No second engine run: the explicit pick hit the entry
            # the auto solve populated.
            assert metrics["solution_cache"]["hits"] == 1
            assert metrics["solution_cache"]["misses"] == 1
            assert metrics["planner"]["picks"] == {
                auto_solution.method: 1
            }


def test_server_auto_from_explicit_populated_cache_still_reports_plan():
    """Plan attribution is per-request, not per-cache-entry: an auto
    request served from an entry an *explicit* pick populated must
    still carry its plan and count a planner pick (the decision is
    deterministic — same solve key, same plan)."""
    from repro.server import Client, ServerConfig, running_server

    problem = make_problem(seed=61)
    resolved = problem.resolved_method
    with running_server(ServerConfig(port=0)) as handle:
        with Client(f"http://127.0.0.1:{handle.port}") as client:
            explicit_solution = client.solve(problem.with_method(resolved))
            assert explicit_solution.plan is None
            auto_solution = client.solve(problem)  # cache hit
            metrics = client.metrics()
            assert metrics["solution_cache"]["hits"] == 1
            assert auto_solution.plan is not None
            assert auto_solution.plan.requested == "auto"
            assert auto_solution.plan.method == resolved
            assert metrics["planner"]["picks"] == {resolved: 1}


def test_server_explicit_from_auto_populated_cache_carries_no_plan():
    """...and the symmetric case: an explicit request replaying an
    auto-populated entry gets a plan-free solution over the wire."""
    from repro.server import Client, ServerConfig, running_server

    problem = make_problem(seed=67)
    with running_server(ServerConfig(port=0)) as handle:
        with Client(f"http://127.0.0.1:{handle.port}") as client:
            auto_solution = client.solve(problem)
            assert auto_solution.plan is not None
            explicit_solution = client.solve(
                problem.with_method(auto_solution.method)
            )  # cache hit on the auto-populated entry
            metrics = client.metrics()
            assert metrics["solution_cache"]["hits"] == 1
            assert explicit_solution.plan is None
            assert metrics["planner"]["picks"] == {auto_solution.method: 1}


def test_server_metrics_expose_planner_picks_and_estimate_error():
    from repro.server import Client, ServerConfig, running_server

    problem = make_problem(seed=53)
    with running_server(ServerConfig(port=0)) as handle:
        with Client(f"http://127.0.0.1:{handle.port}") as client:
            first = client.solve(problem)
            client.solve(problem)  # cache hit still counts a pick
            metrics = client.metrics()
            planner = metrics["planner"]
            assert planner["picks"] == {first.method: 2}
            assert planner["auto_solves"] == 2
            # One fresh solve fed the estimate-error gauge.
            assert planner["estimate"]["samples"] == 1
            assert planner["estimate"]["mean_abs_relative_error"] >= 0.0
            # Latency histograms key on the resolved method, never on
            # the pseudo-method.
            assert first.method in metrics["latency"]
            assert "auto" not in metrics["latency"]


def test_server_envelope_carries_plan_and_resolved_method():
    import json
    from urllib.request import Request, urlopen

    from repro.server import ServerConfig, running_server

    problem = make_problem(seed=59)
    with running_server(ServerConfig(port=0)) as handle:
        body = json.dumps({"problem": problem.to_dict()}).encode()
        request = Request(
            f"http://127.0.0.1:{handle.port}/v1/solve",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urlopen(request) as response:
            envelope = json.loads(response.read())
    assert envelope["method"] == "auto"
    assert envelope["resolved_method"] in PLANNABLE
    plan = envelope["plan"]
    assert plan["requested"] == "auto"
    assert plan["method"] == envelope["resolved_method"]
    assert {c["method"] for c in plan["candidates"]} == set(PLANNABLE)
    assert plan["profile"]["num_functions"] == problem.num_functions
    # The embedded solution carries the same plan payload.
    assert envelope["solution"]["plan"] == plan
