"""Static skyline algorithms: BNL, D&C, SFS vs the naive reference."""

import pytest
from hypothesis import given, settings

from repro.skyline import bnl_skyline, dc_skyline, naive_skyline, sfs_skyline
from repro.skyline.sfs import sfs_skyline_with_stats

from .conftest import points_strategy, random_points


@pytest.mark.parametrize("dims", [1, 2, 3, 4, 5])
def test_all_algorithms_agree_random(dims, rng):
    items = list(enumerate(random_points(300, dims, rng)))
    ref = naive_skyline(items)
    assert bnl_skyline(items) == ref
    assert dc_skyline(items) == ref
    assert sfs_skyline(items) == ref


@pytest.mark.parametrize("dims", [2, 3])
def test_all_algorithms_agree_tie_heavy(dims, rng):
    items = list(enumerate(random_points(200, dims, rng, tie_heavy=True)))
    ref = naive_skyline(items)
    assert bnl_skyline(items) == ref
    assert dc_skyline(items) == ref
    assert sfs_skyline(items) == ref


@given(points_strategy(3, min_size=0, max_size=40))
@settings(max_examples=60, deadline=None)
def test_property_equivalence_3d(pts):
    items = list(enumerate(pts))
    ref = naive_skyline(items)
    assert bnl_skyline(items) == ref
    assert dc_skyline(items) == ref
    assert sfs_skyline(items) == ref


@given(points_strategy(2, min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_bnl_windows_property(pts):
    items = list(enumerate(pts))
    ref = naive_skyline(items)
    for window in (1, 2, 3, 7):
        assert bnl_skyline(items, window_size=window) == ref


def test_bnl_invalid_window():
    with pytest.raises(ValueError):
        bnl_skyline([(0, (0.5, 0.5))], window_size=0)


def test_empty_input():
    assert naive_skyline([]) == {}
    assert bnl_skyline([]) == {}
    assert dc_skyline([]) == {}
    assert sfs_skyline([]) == {}


def test_duplicates_all_in_skyline():
    # Coincident points do not dominate each other (Section 2.2).
    items = [(0, (0.5, 0.5)), (1, (0.5, 0.5)), (2, (0.1, 0.1))]
    ref = naive_skyline(items)
    assert set(ref) == {0, 1}
    assert bnl_skyline(items) == ref
    assert dc_skyline(items) == ref
    assert sfs_skyline(items) == ref


def test_single_dominating_point():
    items = [(0, (1.0, 1.0))] + [(i, (0.1, 0.1)) for i in range(1, 20)]
    assert set(naive_skyline(items)) == {0}


def test_sfs_early_termination_examines_prefix_only(rng):
    # A clearly dominating point near (1,1) lets SaLSa stop early on
    # a large dominated cloud.
    items = [(0, (0.99, 0.99))] + [
        (i, (rng.random() * 0.4, rng.random() * 0.4)) for i in range(1, 500)
    ]
    result, examined = sfs_skyline_with_stats(items)
    assert set(result) == {0}
    assert examined < len(items)  # did not scan the whole input


def test_sfs_correlated_stops_early(rng):
    # Correlated diagonal data: the stop rule (watermark < best
    # min-coordinate) kicks in once sums drop below the best point's
    # min coordinate — roughly half the input here, never all of it.
    base = [rng.random() for _ in range(400)]
    items = [
        (i, (b, min(1.0, b + 0.01 * rng.random()))) for i, b in enumerate(base)
    ]
    result, examined = sfs_skyline_with_stats(items)
    assert result == naive_skyline(items)
    assert examined <= int(len(items) * 0.7)
