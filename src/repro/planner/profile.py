"""Cheap, deterministic instance profiling for the planner.

An :class:`InstanceProfile` is the feature vector the cost models
consume: cardinalities, dimensionality, capacity totals and the two
shape statistics the paper's experiments show the method ranking
actually hinges on — attribute *correlation* of the object catalogue
(anti-correlated catalogues have huge skylines; correlated ones tiny,
Figures 9–12) and the *skew* of the preference weights (clustered
cohorts concentrate the reverse top-1 searches, Figure 12).

Profiling must cost a vanishing fraction of any real solve, so both
statistics are computed over a deterministic stride sample of at most
:data:`SAMPLE_LIMIT` rows — no RNG, so the same instance profiles
identically in every process (the bit-identical ``auto`` guarantee
rests on this).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass

import numpy as np

from repro.data.instances import FunctionSet, ObjectSet

#: Rows sampled per side; O(SAMPLE_LIMIT · dims²) work bounds the cost
#: of a profile regardless of instance size.  96 rows keep the two
#: shape statistics stable to a couple of decimals while holding a
#: full profile well under a hundred microseconds — planning must
#: stay below 1% of even a ~10 ms solve.
SAMPLE_LIMIT = 96


@dataclass(frozen=True)
class InstanceProfile:
    """The measurable shape of one assignment instance."""

    num_functions: int
    num_objects: int
    dims: int
    #: Total units demanded / supplied (Section 6.1 capacities).
    function_capacity_total: int
    object_capacity_total: int
    #: Object supply per unit of function demand; > 1 means objects
    #: are plentiful, << 1 means functions compete for scarce objects.
    capacity_ratio: float
    has_priorities: bool
    max_priority: float
    #: Mean per-function standard deviation of the weight vector —
    #: 0 for uniform cohorts, large for concentrated/clustered ones.
    weight_skew: float
    #: Mean pairwise Pearson correlation of sampled object attributes
    #: in [-1, 1]: negative → anti-correlated (big skylines), positive
    #: → correlated (small skylines).
    object_correlation: float
    sampled_objects: int
    sampled_functions: int

    @property
    def cardinality_ratio(self) -> float:
        """``|F| / |O|`` — the Figure 10/11 sweep axis."""
        return self.num_functions / max(1, self.num_objects)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "InstanceProfile":
        return cls(**{f: payload[f] for f in cls.__dataclass_fields__})


def _stride_sample(rows: Sequence, limit: int) -> np.ndarray:
    """At most ``limit`` rows at a fixed stride — deterministic."""
    n = len(rows)
    if n <= limit:
        return np.asarray(rows, dtype=np.float64)
    idx = [(i * n) // limit for i in range(limit)]
    return np.asarray([rows[i] for i in idx], dtype=np.float64)


def _mean_pairwise_correlation(points: np.ndarray) -> float:
    """Mean off-diagonal Pearson correlation of the attribute columns;
    degenerate columns (zero variance) contribute nothing.

    Hand-rolled rather than ``np.corrcoef``: planning sits on the
    request path and the library version spends ~5x this in setup for
    a 128-row sample.
    """
    n, dims = points.shape
    if n < 3 or dims < 2:
        return 0.0
    centered = points - points.mean(axis=0)
    stds = centered.std(axis=0)
    live = stds > 1e-12
    k = int(live.sum())
    if k < 2:
        return 0.0
    z = centered[:, live] / stds[live]
    corr = (z.T @ z) / n
    off_sum = float(corr.sum()) - float(np.trace(corr))
    return off_sum / (k * (k - 1))


def profile_instance(
    functions: FunctionSet,
    objects: ObjectSet,
    sample_limit: int = SAMPLE_LIMIT,
) -> InstanceProfile:
    """Profile one instance in O(sample) time."""
    nf, no = len(functions.weights), len(objects.points)
    dims = len(objects.points[0]) if no else 0
    f_total = functions.total_capacity if nf else 0
    o_total = objects.total_capacity if no else 0

    weights = _stride_sample(functions.weights, sample_limit) if nf else None
    skew = float(weights.std(axis=1).mean()) if weights is not None else 0.0

    points = _stride_sample(objects.points, sample_limit) if no else None
    correlation = _mean_pairwise_correlation(points) if points is not None else 0.0

    gammas = functions.gammas
    max_priority = float(max(gammas)) if gammas else 1.0

    return InstanceProfile(
        num_functions=nf,
        num_objects=no,
        dims=dims,
        function_capacity_total=f_total,
        object_capacity_total=o_total,
        capacity_ratio=o_total / max(1, f_total),
        has_priorities=bool(gammas) and any(g != 1.0 for g in gammas),
        max_priority=max_priority,
        weight_skew=skew,
        object_correlation=correlation,
        sampled_objects=0 if points is None else int(points.shape[0]),
        sampled_functions=0 if weights is None else int(weights.shape[0]),
    )


def features(profile: InstanceProfile) -> tuple[float, ...]:
    """The cost-model feature vector (see :data:`FEATURE_NAMES`).

    Log-scaled cardinalities make a linear model in these features a
    *power law* in the raw sizes — the right family for algorithms
    whose cost is a product of polynomial terms — while the shape
    statistics enter linearly (they modulate the constant factor).
    """
    return (
        1.0,
        math.log(profile.num_functions + 1.0),
        math.log(profile.num_objects + 1.0),
        math.log(max(profile.dims, 1)),
        profile.object_correlation,
        profile.weight_skew,
        math.log(max(profile.capacity_ratio, 1e-6)),
    )


FEATURE_NAMES = (
    "intercept",
    "log_num_functions",
    "log_num_objects",
    "log_dims",
    "object_correlation",
    "weight_skew",
    "log_capacity_ratio",
)


__all__ = [
    "FEATURE_NAMES",
    "InstanceProfile",
    "SAMPLE_LIMIT",
    "features",
    "profile_instance",
]
