"""k-skyband (Section 2.3 substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.store import DiskNodeStore
from repro.rtree.tree import RTree
from repro.skyline.kskyband import (
    bbs_kskyband,
    naive_kskyband,
    topk_within_kskyband,
)
from repro.skyline.reference import naive_skyline

from .conftest import points_strategy, random_points, random_weights


def build_tree(items, dims):
    store = DiskNodeStore(dims, page_size=256, buffer_capacity=10**6)
    return RTree.bulk_load(store, dims, items)


def test_one_skyband_is_skyline(rng):
    items = list(enumerate(random_points(150, 3, rng)))
    assert naive_kskyband(items, 1) == naive_skyline(items)


def test_band_is_monotone_in_k(rng):
    items = list(enumerate(random_points(150, 3, rng)))
    previous: set = set()
    for k in (1, 2, 4, 8):
        band = set(naive_kskyband(items, k))
        assert previous <= band
        previous = band
    assert set(naive_kskyband(items, len(items))) == {o for o, _ in items}


@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_bbs_kskyband_matches_naive(k, rng):
    items = list(enumerate(random_points(400, 3, rng)))
    tree = build_tree(items, 3)
    assert bbs_kskyband(tree, k) == naive_kskyband(items, k)


def test_bbs_kskyband_tie_heavy(rng):
    items = list(enumerate(random_points(120, 2, rng, tie_heavy=True)))
    tree = build_tree(items, 2)
    for k in (1, 2, 4):
        assert bbs_kskyband(tree, k) == naive_kskyband(items, k)


def test_invalid_k():
    with pytest.raises(ValueError):
        naive_kskyband([(0, (0.5,))], 0)
    with pytest.raises(ValueError):
        bbs_kskyband(build_tree([(0, (0.5, 0.5))], 2), 0)


def test_empty_tree():
    assert bbs_kskyband(build_tree([], 2), 3) == {}


@pytest.mark.parametrize("k", [1, 3, 7])
def test_topk_containment_property(k, rng):
    """Section 2.3: for any monotone function the top-k is inside the
    k-skyband."""
    items = list(enumerate(random_points(80, 3, rng)))
    for _ in range(5):
        w = tuple(random_weights(1, 3, rng)[0])
        assert topk_within_kskyband(items, w, k)


@given(points_strategy(2, min_size=1, max_size=30), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_property_bbs_matches_naive(pts, k):
    items = list(enumerate(pts))
    tree = build_tree(items, 2)
    assert bbs_kskyband(tree, k) == naive_kskyband(items, k)
