"""Console-path smoke for the cluster: boot two ``python -m
repro.server`` backends and a ``python -m repro.cluster`` gateway as
real subprocesses, solve through the gateway, kill one backend, and
verify service continues — the CI cluster-smoke job runs exactly
this test."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.api import Problem
from repro.server import Client

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _spawn(module, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", module, "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _read_port(process, prefix, timeout=30.0) -> int:
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    line = ""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            stderr = process.stderr.read() if process.stderr else ""
            raise AssertionError(
                f"process exited early (rc={process.returncode}): {stderr}"
            )
        line = process.stdout.readline()
        if line:
            break
    assert line.startswith(prefix), line
    authority = line[len(prefix) :].split()[0]
    return int(authority.rstrip("/").rsplit(":", 1)[1])


def _terminate(process):
    if process.poll() is None:
        process.terminate()
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


def _problem(seed_shift: float) -> Problem:
    return (
        Problem.builder()
        .add_objects(
            [
                (0.5 + seed_shift, 0.6),
                (0.2, 0.7 - seed_shift),
                (0.8, 0.2 + seed_shift),
                (0.4, 0.4),
            ]
        )
        .add_functions([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
        .solver("sb")
        .build()
    )


def test_gateway_console_smoke_survives_backend_kill():
    backends = [_spawn("repro.server") for _ in range(2)]
    gateway = None
    try:
        ports = [
            _read_port(p, "repro-server listening on http://")
            for p in backends
        ]
        gateway = _spawn(
            "repro.cluster",
            "--backend", f"127.0.0.1:{ports[0]}",
            "--backend", f"127.0.0.1:{ports[1]}",
            "--probe-interval", "0.2",
            "--retry-after", "0.05",
        )
        gateway_port = _read_port(
            gateway, "repro-gateway listening on http://"
        )
        problems = [_problem(i * 0.01) for i in range(6)]
        with Client(host="127.0.0.1", port=gateway_port) as client:
            health = client.health()
            assert health["role"] == "gateway"
            assert health["ring"]["alive"] == 2
            expected = {}
            for problem in problems:
                pid = client.register(problem)
                solution = client.solve(pid)
                solution.verify()
                expected[pid] = solution.to_dict()["pairs"]
            # Async round trip through the console gateway too.
            job_id = client.submit(problems[0].digest())
            assert "@" in job_id
            client.result(job_id)

            backends[0].send_signal(signal.SIGKILL)
            backends[0].wait(timeout=10)

            # Every catalogue—including those owned by the dead
            # backend—still solves, re-sharded, with identical pairs.
            for problem in problems:
                replayed = client.solve(problem.digest())
                assert replayed.to_dict()["pairs"] == expected[problem.digest()]
            metrics = client.metrics()
            assert metrics["gateway"]["backends_alive"] == 1
            assert metrics["gateway"]["reshards_total"] >= 1
            assert client.health()["status"] == "degraded"
    finally:
        if gateway is not None:
            _terminate(gateway)
        for process in backends:
            _terminate(process)
