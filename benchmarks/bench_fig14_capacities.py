"""Figure 14 — functions and objects with capacities (Section 6.1).

(a, b): function capacity k in {2, 4, 8, 16} — the problem grows to
k·|F| stable units, so every method's costs increase with k.
(c, d): object capacity k — costs *decrease* slightly, because a
popular object serves several functions before leaving the problem
(fewer top-1 searches / skyline updates).
"""

import pytest

from repro.bench.config import CAPACITY_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]


@pytest.mark.benchmark(group="fig14ab-function-capacity")
@pytest.mark.parametrize("k", CAPACITY_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig14_function_capacity(benchmark, method, k):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=14, function_capacity=k
    )
    matching, stats = bench_cell(benchmark, method, functions, objects)
    expected = min(functions.total_capacity, objects.total_capacity)
    assert matching.num_units == expected


@pytest.mark.benchmark(group="fig14cd-object-capacity")
@pytest.mark.parametrize("k", CAPACITY_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig14_object_capacity(benchmark, method, k):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=14, object_capacity=k
    )
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == len(functions)
