"""Reverse top-1 search: exactness, resuming, Ω behaviour (Sec 5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.instances import FunctionSet
from repro.ordering import function_key
from repro.scoring import score
from repro.topk.reverse import ReverseBestSearch, SearchCounters
from repro.topk.sorted_lists import CoefficientLists

from .conftest import random_weights, weights_strategy


def exhaustive_best(weights, point, alive=None):
    fids = range(len(weights)) if alive is None else sorted(alive)
    best = min(
        (function_key(score(weights[f], point), weights[f], f), f) for f in fids
    )
    return best[1], -best[0][0]


@pytest.mark.parametrize("omega", [None, 1, 2, 5])
@pytest.mark.parametrize("biased", [True, False])
def test_best_matches_exhaustive(omega, biased, rng):
    for _ in range(20):
        ws = random_weights(rng.randint(1, 30), 3, rng)
        point = tuple(rng.random() for _ in range(3))
        lists = CoefficientLists(FunctionSet(ws))
        search = ReverseBestSearch(lists, point, omega=omega, biased=biased)
        assert search.best() == exhaustive_best(ws, point)


@pytest.mark.parametrize("omega", [None, 2])
def test_kill_and_resume_full_drain(omega, rng):
    """Killing the incumbent repeatedly must always surface the next
    canonical best among the survivors."""
    for trial in range(15):
        ws = random_weights(rng.randint(1, 25), 3, rng, tie_heavy=(trial % 2 == 0))
        point = tuple(rng.random() for _ in range(3))
        lists = CoefficientLists(FunctionSet(ws))
        search = ReverseBestSearch(lists, point, omega=omega)
        alive = set(range(len(ws)))
        while alive:
            got = search.best()
            assert got == exhaustive_best(ws, point, alive)
            lists.kill(got[0])
            alive.discard(got[0])
        assert search.best() is None


def test_omega_restart_counted(rng):
    """With Ω=1, every kill empties the bounded heap and forces a
    from-scratch restart (the paper's ω trade-off)."""
    ws = random_weights(20, 3, rng)
    point = (0.7, 0.2, 0.9)
    lists = CoefficientLists(FunctionSet(ws))
    counters = SearchCounters()
    search = ReverseBestSearch(lists, point, omega=1, counters=counters)
    for _ in range(5):
        fid, _ = search.best()
        lists.kill(fid)
    assert counters.restarts >= 4


def test_unbounded_never_restarts(rng):
    ws = random_weights(20, 3, rng)
    point = (0.7, 0.2, 0.9)
    lists = CoefficientLists(FunctionSet(ws))
    counters = SearchCounters()
    search = ReverseBestSearch(lists, point, omega=None, counters=counters)
    for _ in range(10):
        fid, _ = search.best()
        lists.kill(fid)
    assert counters.restarts == 0


def test_biased_probing_not_more_accesses_on_average(rng):
    """Biased probing should not scan more than round-robin overall
    (it greedily shrinks the threshold; Section 5.1)."""
    total_biased = total_rr = 0
    for trial in range(30):
        ws = random_weights(60, 4, rng)
        point = tuple(rng.random() for _ in range(4))
        for biased in (True, False):
            lists = CoefficientLists(FunctionSet(ws))
            counters = SearchCounters()
            ReverseBestSearch(
                lists, point, biased=biased, counters=counters
            ).best()
            if biased:
                total_biased += counters.sorted_accesses
            else:
                total_rr += counters.sorted_accesses
    assert total_biased <= total_rr


def test_priorities_use_max_gamma_budget(rng):
    """With priorities, the best function must still be exact —
    including when the top-priority function dies and the budget
    shrinks."""
    ws = random_weights(15, 3, rng)
    gammas = [float(rng.randint(1, 4)) for _ in range(15)]
    fs = FunctionSet(ws, gammas=gammas)
    eff = fs.all_effective_weights()
    point = tuple(rng.random() for _ in range(3))
    lists = CoefficientLists(fs)
    search = ReverseBestSearch(lists, point, omega=3)
    alive = set(range(15))
    while alive:
        got = search.best()
        want = min(
            (function_key(score(eff[f], point), eff[f], f), f) for f in alive
        )
        assert got[0] == want[1]
        lists.kill(got[0])
        alive.discard(got[0])


def test_memory_reporting(rng):
    ws = random_weights(30, 3, rng)
    lists = CoefficientLists(FunctionSet(ws))
    search = ReverseBestSearch(lists, (0.5, 0.5, 0.5), omega=5)
    before = search.memory_bytes()
    search.best()
    assert search.memory_bytes() >= before


def test_invalid_omega():
    lists = CoefficientLists(FunctionSet([(1.0,)]))
    with pytest.raises(ValueError):
        ReverseBestSearch(lists, (0.5,), omega=0)


@given(weights_strategy(3, min_size=1, max_size=12), st.data())
@settings(max_examples=50, deadline=None)
def test_property_exactness(ws, data):
    point = tuple(
        data.draw(st.floats(0, 1, allow_nan=False)) for _ in range(3)
    )
    omega = data.draw(st.sampled_from([None, 1, 3]))
    lists = CoefficientLists(FunctionSet(ws))
    search = ReverseBestSearch(lists, point, omega=omega)
    got = search.best()
    assert got == exhaustive_best(ws, point)
