#!/usr/bin/env python3
"""Public-housing allocation on Zillow-like real-estate data.

The paper's house-allocation motivation (and its Zillow experiment,
Section 7.5): a government releases housing units; applicants weight
bedrooms, bathrooms, living area, price-value and lot size; identical
units in one block form a capacitated object.  Skewed, correlated
real-estate data is exactly where the top-1-search baselines suffer
and SB's skyline processing shines.

Run:  python examples/housing_allocation.py
"""

import numpy as np

from repro import FunctionSet, ObjectSet
from repro.api import AssignmentSession, Problem
from repro.data.real import zillow_like

RNG = np.random.default_rng(1054)

N_LISTINGS = 20_000
N_APPLICANTS = 400
ATTRS = ["bedrooms", "bathrooms", "living area", "price value", "lot size"]


def make_housing_stock() -> ObjectSet:
    base = zillow_like(N_LISTINGS, seed=65)
    # Blocks of identical flats: capacity 1-8 per listing.
    capacities = RNG.integers(1, 9, N_LISTINGS).tolist()
    return ObjectSet(base.points, capacities=capacities)


def make_applicants() -> FunctionSet:
    """Applicant archetypes: families want space, singles want value."""
    archetypes = np.array([
        [0.30, 0.15, 0.30, 0.10, 0.15],  # family
        [0.05, 0.05, 0.25, 0.55, 0.10],  # value hunter
        [0.15, 0.25, 0.35, 0.15, 0.10],  # comfort seeker
    ])
    choice = RNG.integers(0, len(archetypes), N_APPLICANTS)
    raw = np.clip(archetypes[choice] + RNG.normal(0, 0.04, (N_APPLICANTS, 5)),
                  1e-6, None)
    weights = raw / raw.sum(axis=1, keepdims=True)
    return FunctionSet([tuple(w) for w in weights])


def main() -> None:
    stock = make_housing_stock()
    applicants = make_applicants()
    print(f"{N_APPLICANTS} applicants, {N_LISTINGS} listings "
          f"({stock.total_capacity} units total).")

    problem = Problem.from_sets(stock, applicants, buffer_fraction=0.02)
    with AssignmentSession(problem) as session:
        solution = session.solve()
    stats = solution.stats

    print(f"\nAll {solution.num_units} applicants housed via "
          f"{len(solution.pairs)} (applicant, listing) pairs.")

    scores = sorted(
        (p.score for p in solution.pairs for _ in range(p.count)), reverse=True
    )
    print(f"Satisfaction: best {scores[0]:.3f}, "
          f"median {scores[len(scores) // 2]:.3f}, worst {scores[-1]:.3f}.")

    # Which attributes did the best-served applicants care about?
    top = solution.pairs[0]
    w = applicants.weights[top.fid]
    fav = max(range(5), key=lambda i: w[i])
    print(f"First assignment: applicant {top.fid} "
          f"(cares most about {ATTRS[fav]}) -> listing {top.oid}.")

    print(f"\nSolver cost on this skewed real-estate workload: "
          f"{stats.io_accesses} page reads, {stats.loops} loops, "
          f"{stats.cpu_seconds:.2f}s CPU.")
    print("(Compare with Figure 16: Brute Force/Chain pay ~100x more "
          "I/O here; run examples/classroom_allocation.py for a "
          "side-by-side.)")


if __name__ == "__main__":
    main()
