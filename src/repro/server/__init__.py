"""repro.server — the network-facing front of the assignment stack.

A stdlib-only asyncio JSON-over-HTTP server that makes the ROADMAP's
"heavy traffic" story executable end to end::

    api (Problem/Session/Solution)  ←  this layer serves it over HTTP
      └─ service (BatchSolver + shared ObjectIndex cache)
           └─ engine / core

Run it standalone::

    python -m repro.server --port 8000        # or the repro-server script

or embed it (tests, examples, benchmarks)::

    from repro.server import Client, ServerConfig, running_server

    with running_server(ServerConfig(port=0)) as handle:
        with Client(handle.base_url) as client:
            problem_id = client.register(problem)
            solution = client.solve(problem_id)

Endpoints: problem registration (deduplicated by content digest),
synchronous solve, async job submission + polling, solution
retrieval/diff, ``/metrics`` and ``/healthz``.  Overload answers
HTTP 429 with ``Retry-After`` (see
:class:`~repro.server.jobs.AdmissionController`).
"""

from repro.server.app import (
    ReproServer,
    ServerConfig,
    ServerHandle,
    running_server,
    serve_in_thread,
)
from repro.server.cache import SolutionCache
from repro.server.client import Client
from repro.server.jobs import AdmissionController, Job, JobStore
from repro.server.metrics import LatencyHistogram, ServerMetrics

__all__ = [
    "AdmissionController",
    "Client",
    "Job",
    "JobStore",
    "LatencyHistogram",
    "ReproServer",
    "ServerConfig",
    "ServerHandle",
    "ServerMetrics",
    "SolutionCache",
    "running_server",
    "serve_in_thread",
]
