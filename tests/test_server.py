"""End-to-end tests of the serving layer over real sockets.

Each test boots a thread-hosted server on an ephemeral port and talks
to it through the blocking :class:`repro.server.Client` — the same
path examples, CI smoke, and the throughput benchmark use.
"""

import asyncio
import concurrent.futures
import random
import threading

import pytest

from repro.api import AssignmentSession, Problem
from repro.errors import ServerBusyError, ServerError
from repro.server import Client, ReproServer, ServerConfig, running_server

from .conftest import random_instance

ENGINE_CONFIGS = ("sb", "sb-update", "sb-deltasky", "sb-alt", "sb-two-skylines", "chain")


def make_problem(nf=6, no=24, dims=3, seed=5, method="sb", **options):
    functions, objects = random_instance(nf, no, dims, seed=seed)
    return Problem.from_sets(objects, functions, method=method, options=options)


@pytest.fixture()
def server():
    with running_server(
        ServerConfig(port=0, queue_limit=32, solution_cache_size=64)
    ) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with Client(server.base_url) as c:
        yield c


def test_health_and_metrics_shape(client):
    assert client.health()["status"] == "ok"
    metrics = client.metrics()
    assert metrics["queue"]["limit"] == 32
    assert metrics["solution_cache"]["entries"] == 0
    assert metrics["http"]["requests_total"] >= 1
    # The planner section exists even before any auto traffic.
    assert metrics["planner"]["picks"] == {}
    assert metrics["planner"]["estimate"]["samples"] == 0


def test_auto_method_served_end_to_end_with_planner_metrics(client):
    """The CI smoke contract: a method="auto" solve over the wire
    resolves to a concrete config, is bit-identical to requesting that
    config explicitly, and shows up in /metrics planner counters."""
    problem = make_problem(method="auto")
    auto_solution = client.solve(problem)
    assert auto_solution.method != "auto"
    assert auto_solution.plan is not None
    assert auto_solution.plan.requested == "auto"
    direct = client.solve(problem.with_method(auto_solution.method))
    assert direct.pairs == auto_solution.pairs
    metrics = client.metrics()
    assert metrics["planner"]["picks"] == {auto_solution.method: 1}
    assert metrics["planner"]["auto_solves"] == 1
    assert "auto" not in metrics["latency"]


def test_registration_dedupes_by_digest(client):
    problem = make_problem()
    first = client.register(problem)
    second = client.register(make_problem())  # structurally identical
    assert first == second == problem.digest()
    assert client.problem(first) == problem
    # a different solver selection is a different registration
    other = client.register(problem.with_method("chain"))
    assert other != first


def test_wire_solutions_bit_identical_to_direct_session_for_all_configs(client):
    """Acceptance: for every engine config, the solution returned over
    the wire equals a direct AssignmentSession.solve() bit for bit."""
    base = make_problem(nf=7, no=30, dims=3, seed=11)
    for method in ENGINE_CONFIGS:
        problem = base.with_method(method)
        with AssignmentSession(problem) as session:
            direct = session.solve()
        remote = client.solve(problem)
        assert remote == direct, method
        # bit-identical floats: canonical JSON pairs match exactly
        assert remote.to_dict()["pairs"] == direct.to_dict()["pairs"], method
        remote.verify()


def test_solve_by_problem_id_with_method_override(client):
    problem = make_problem()
    pid = client.register(problem)
    plain = client.solve(pid)
    overridden = client.solve(pid, method="chain")
    assert plain.as_dict() == overridden.as_dict()  # same stable matching
    assert overridden.method == "chain"


def test_solution_cache_serves_repeat_queries(client):
    problem = make_problem(seed=23)
    first = client.solve(problem)
    second = client.solve(problem)
    assert first == second
    metrics = client.metrics()
    assert metrics["solution_cache"]["hits"] >= 1
    assert metrics["solves"]["cache_hits"] >= 1
    # options change the key: a fresh solve, not a hit
    client.solve(problem, options={"omega_fraction": 0.1})
    assert client.metrics()["solution_cache"]["misses"] >= 2


def test_async_job_lifecycle_and_diff(client):
    problem = make_problem(seed=31)
    pid = client.register(problem)
    job_a = client.submit(pid)
    job_b = client.submit(pid, method="chain")
    sol_a = client.result(job_a)
    sol_b = client.result(job_b)
    assert sol_a.as_dict() == sol_b.as_dict()
    record = client.job(job_a)
    assert record["status"] == "done"
    assert record["wall_seconds"] >= 0
    assert record["solution"]["pairs"] == sol_a.to_dict()["pairs"]
    diff = client.diff(job_a, job_b)
    assert diff["identical"] is True and diff["units_changed"] == 0
    # a different cohort genuinely moves units
    other = problem.with_functions([(0.9, 0.05, 0.05), (0.1, 0.1, 0.8)])
    job_c = client.submit(other)
    client.result(job_c)
    assert client.diff(job_a, job_c)["identical"] is False


def test_error_mapping(client):
    problem = make_problem()
    pid = client.register(problem)
    with pytest.raises(ServerError) as not_found:
        client.solve("no-such-problem")
    assert not_found.value.status == 404
    with pytest.raises(ServerError) as bad_method:
        client.solve(pid, method="not-a-solver")
    assert bad_method.value.status == 400
    with pytest.raises(ServerError) as bad_option:
        client.solve(pid, options={"bogus_option": 1})
    assert bad_option.value.status == 400
    with pytest.raises(ServerError) as bad_payload:
        client._request("POST", "/v1/problems", {"schema": "wrong/v9"})
    assert bad_payload.value.status == 400
    with pytest.raises(ServerError) as missing_job:
        client.job("job-99999999")
    assert missing_job.value.status == 404
    with pytest.raises(ServerError) as wrong_verb:
        client._request("GET", "/v1/solve")
    assert wrong_verb.value.status == 405
    with pytest.raises(ServerError) as unfinished_diff:
        client.diff("job-99999999", "job-99999999")
    assert unfinished_diff.value.status == 404


def test_inline_one_shot_solve_registers_as_side_effect(client):
    problem = make_problem(seed=41)
    _, body = client._request(
        "POST", "/v1/solve", {"problem": problem.to_dict()}
    )
    assert body["problem_id"] == problem.digest()
    assert client.problem(body["problem_id"]) == problem


def test_backpressure_returns_429_with_retry_after():
    """With an admission limit of 1, a slow in-flight solve forces the
    next submission to be turned away with 429 + Retry-After."""
    slow = make_problem(nf=40, no=2500, dims=4, seed=47)
    quick = make_problem(seed=48)
    with running_server(
        ServerConfig(port=0, queue_limit=1, solution_cache_size=8)
    ) as handle:
        with Client(handle.base_url) as client:
            pid_slow = client.register(slow)
            pid_quick = client.register(quick)
            job = client.submit(pid_slow)
            rejected = 0
            try:
                client.submit(pid_quick)
            except ServerBusyError as busy:
                rejected += 1
                assert busy.retry_after > 0
                assert busy.payload["queue_limit"] == 1
            client.result(job, timeout=120)
            # the queue drained: the same submission is admitted now,
            # and the client-side Retry-After loop also gets through.
            done = client.submit(pid_quick, timeout=60)
            client.result(done, timeout=60)
            if rejected:
                assert client.metrics()["queue"]["rejected_total"] >= 1


def test_bad_server_config_fails_at_startup():
    """Regression: a zero pump pool or worker pool must fail loudly at
    construction, not as a silently wedged queue at runtime."""
    for bad in (
        dict(pump_tasks=0),
        dict(workers=0),
        dict(executor="fibers"),
        dict(problem_registry_size=0),
        dict(retry_after_seconds=-1.0),
        dict(read_timeout_seconds=0.0),
        dict(max_body_bytes=0),
        dict(queue_limit=0),
        dict(job_history=0),
    ):
        with pytest.raises(ValueError):
            ReproServer(ServerConfig(**bad))


def test_stalled_connection_is_dropped_by_read_timeout():
    """Regression: a peer that opens a connection and never finishes a
    request must be dropped, not pin its connection task forever."""
    import socket

    with running_server(
        ServerConfig(port=0, read_timeout_seconds=0.2)
    ) as handle:
        stalled = socket.create_connection(("127.0.0.1", handle.port), timeout=10)
        stalled.sendall(b"POST /v1/solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
        stalled.settimeout(10)
        assert stalled.recv(1024) == b""  # server closed on us
        stalled.close()
        # the server is still serving normal clients afterwards
        with Client(handle.base_url) as client:
            assert client.health()["status"] == "ok"


def test_problem_registry_is_lru_bounded():
    """Regression: registrations must not retain catalogues without
    bound — the registry evicts least-recently-used entries, and an
    evicted id simply 404s (re-registration is idempotent)."""
    server = ReproServer(ServerConfig(problem_registry_size=2))
    problems = [make_problem(seed=60 + i) for i in range(3)]
    ids = [server._register(p)[0] for p in problems]
    assert len(server._problems) == 2
    assert ids[0] not in server._problems          # oldest evicted
    assert ids[1] in server._problems and ids[2] in server._problems
    # re-registering the evicted problem readmits it under the same id
    again, created = server._register(problems[0])
    assert again == ids[0] and created
    assert again in server._problems


def test_override_solutions_stay_detached_from_the_base_problem(client):
    """Regression: a solve with method/options overrides must not come
    back carrying the registered base Problem — its options would
    misreport what produced the result."""
    problem = make_problem()
    pid = client.register(problem)
    plain = client.solve(pid)
    assert plain.problem == problem                # attach on exact match
    assert client.solve(pid, method="chain").problem is None
    assert client.solve(pid, options={"omega_fraction": 0.1}).problem is None
    job_plain = client.submit(pid)
    assert client.result(job_plain).problem == problem
    job_override = client.submit(pid, options={"omega_fraction": 0.1})
    assert client.result(job_override).problem is None


def test_saturated_admission_deterministically_yields_429():
    """Unit-level certainty for the backpressure contract: with the
    only admission slot held, both the sync-solve and job-submit paths
    answer 429 with a Retry-After header."""

    async def run():
        server = ReproServer(
            ServerConfig(port=0, queue_limit=1, retry_after_seconds=2.5)
        )
        await server.start()
        try:
            problem = make_problem()
            problem_id, _ = server._register(problem)
            assert server._admission.try_acquire()  # hold the only slot
            try:
                response = await server._admitted_solve(
                    lambda: (problem_id, problem)
                )
                assert response.status == 429
                assert response.headers["Retry-After"] == "2.5"
                from repro.server.http import Request

                submit = await server._submit_job(
                    Request(
                        "POST", "/v1/jobs", {}, {},
                        b'{"problem_id": "%s"}' % problem_id.encode(), True,
                    )
                )
                assert submit.status == 429
                # admission runs before the body is parsed: a saturated
                # queue rejects even malformed payloads with 429, and
                # a post-admission parse failure releases the slot.
                garbage = await server._submit_job(
                    Request("POST", "/v1/jobs", {}, {}, b"not json", True)
                )
                assert garbage.status == 429
            finally:
                server._admission.release()
            assert server._metrics.rejected_total == 3
            # with the slot free, a malformed body now fails cleanly
            # and does not leak its admission slot
            from repro.errors import SerdeError as _SerdeError
            from repro.server.http import Request as _Request

            try:
                await server._submit_job(
                    _Request("POST", "/v1/jobs", {}, {}, b"not json", True)
                )
            except _SerdeError:
                pass
            else:  # pragma: no cover - the parse must fail
                raise AssertionError("malformed body should raise")
            assert server._admission.depth == 0
        finally:
            await server.stop()

    asyncio.run(run())


def test_sixteen_concurrent_clients_share_one_index_build(server):
    """Acceptance: ≥16 simultaneous clients solving distinct cohorts
    over one shared catalogue leave exactly one ObjectIndex build in
    cache_info()."""
    _, objects = random_instance(1, 40, 3, seed=53)
    base = make_problem(nf=4, no=40, dims=3, seed=53)
    rng = random.Random(7)

    def cohort(k):
        weights = []
        for _ in range(3 + k % 3):
            raw = [rng.random() + 1e-9 for _ in range(3)]
            total = sum(raw)
            weights.append(tuple(x / total for x in raw))
        return base.with_functions(weights)

    problems = [cohort(k) for k in range(16)]

    def solve_one(problem):
        with Client(server.base_url) as worker:
            return worker.solve(problem).verify()

    with concurrent.futures.ThreadPoolExecutor(max_workers=16) as pool:
        solutions = list(pool.map(solve_one, problems))

    assert len(solutions) == 16
    for problem, solution in zip(problems, solutions):
        with AssignmentSession(problem) as session:
            assert solution == session.solve()
    metrics = Client(server.base_url).metrics()
    index_cache = metrics["index_cache"]
    assert index_cache["misses"] == 1        # exactly one index build
    assert index_cache["hits"] == 15         # everyone else reused it
    assert metrics["queue"]["rejected_total"] == 0


def test_process_executor_server_bit_identical_for_all_configs():
    """Acceptance: a server on the process backend returns, for every
    engine config, the same wire solution bit for bit as a direct
    thread-backend AssignmentSession."""
    base = make_problem(nf=7, no=30, dims=3, seed=11)
    with running_server(
        ServerConfig(
            port=0, executor="process", workers=2, solution_cache_size=0
        )
    ) as handle:
        with Client(handle.base_url) as client:
            assert client.health()["executor"] == "process"
            for method in ENGINE_CONFIGS:
                problem = base.with_method(method)
                with AssignmentSession(problem) as session:
                    direct = session.solve()
                remote = client.solve(problem)
                assert remote.to_dict()["pairs"] == (
                    direct.to_dict()["pairs"]
                ), method
                remote.verify()
            index_cache = client.metrics()["index_cache"]
            # per-worker replicas: at most one build per worker per
            # (catalogue, memory-mode) — sb-alt uses a memory index,
            # so two key variants exist for the shared catalogue
            assert index_cache["misses"] <= 2 * index_cache["workers"]
            assert index_cache["hits"] >= 1


def test_job_finish_is_never_observed_without_its_solution():
    """Regression for the finish race: threads polling job records
    while the pump completes them must never observe ``done`` with a
    missing solution / wall_seconds / finished_at."""
    base = make_problem(nf=16, no=400, dims=3, seed=71)
    with running_server(
        ServerConfig(port=0, queue_limit=32, solution_cache_size=0)
    ) as handle:
        with Client(handle.base_url) as client:
            job_ids = [
                client.submit(
                    base.with_options(omega_fraction=0.02 + 0.005 * i)
                )
                for i in range(6)
            ]
            jobs = [handle.server._jobs.get(jid) for jid in job_ids]
            assert all(job is not None for job in jobs)
            violations = []
            done = threading.Event()

            def poll():
                while not done.is_set():
                    for job in jobs:
                        record = job.to_dict()
                        if record["status"] == "done" and (
                            record["solution"] is None
                            or record["wall_seconds"] is None
                            or record["finished_at"] is None
                        ):
                            violations.append(record["job_id"])

            pollers = [threading.Thread(target=poll) for _ in range(3)]
            for poller in pollers:
                poller.start()
            try:
                for jid in job_ids:
                    client.result(jid, timeout=120.0)
            finally:
                done.set()
                for poller in pollers:
                    poller.join()
            assert not violations
            for jid in job_ids:
                record = client.job(jid)
                assert record["status"] == "done"
                assert record["solution"] is not None
                assert record["wall_seconds"] is not None
                assert record["finished_at"] is not None


def test_identical_concurrent_requests_coalesce_to_one_engine_run(server):
    """Single-flight: N identical in-flight solves run the engine once."""
    problem = make_problem(nf=10, no=400, dims=3, seed=59)

    def solve_one(_):
        with Client(server.base_url) as worker:
            return worker.solve(problem)

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        solutions = list(pool.map(solve_one, range(8)))
    assert len({s.to_json() for s in solutions}) == 1
    metrics = Client(server.base_url).metrics()
    assert metrics["solution_cache"]["misses"] == 1
    assert metrics["index_cache"]["misses"] == 1
    assert metrics["solves"]["total"] == 8


def test_healthz_reports_load_and_version(client):
    """The enriched /healthz contract the cluster gateway probes rely
    on: version, uptime and load signals alongside the legacy keys."""
    import repro

    health = client.health()
    assert health["status"] == "ok"
    assert health["problems"] == 0            # legacy key, still present
    assert health["executor"] == "thread"     # legacy key, still present
    assert health["version"] == repro.__version__
    assert health["uptime_seconds"] >= 0
    assert health["queue_depth"] == 0
    assert health["jobs_inflight"] == 0

    problem = make_problem(seed=91)
    client.solve(problem)
    assert client.health()["problems"] == 1


def test_shared_client_is_thread_safe(server):
    """One Client shared by many threads: each thread gets its own
    keep-alive connection, so concurrent calls cannot interleave on a
    single HTTP stream (the cluster gateway forwards every in-flight
    request for a backend through one shared Client)."""
    problems = [make_problem(seed=s) for s in (101, 102, 103)]
    with AssignmentSession(problems[0]) as session:
        references = {
            p.digest(): session.solve(p).to_dict()["pairs"] for p in problems
        }

    with Client(server.base_url) as shared:
        ids = [shared.register(p) for p in problems]

        def hammer(i):
            pid = ids[i % len(ids)]
            if i % 5 == 4:
                assert shared.health()["status"] == "ok"
            return pid, shared.solve(pid).to_dict()["pairs"]

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            for pid, pairs in pool.map(hammer, range(24)):
                assert pairs == references[pid]

        # close() drops every thread's connection; the client remains
        # usable afterwards (threads transparently reconnect).
        shared.close()
        assert shared.health()["status"] == "ok"
