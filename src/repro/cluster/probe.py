"""Backend records and periodic health probing.

Each backend the gateway fronts is one :class:`Backend` record: its
address and stable ``node_id``, a shared forwarding
:class:`~repro.server.client.Client` (thread-safe — every in-flight
request for this backend multiplexes over it), a separate short-timeout
probe client, and the liveness state machine.

Liveness changes through exactly two doors, both under the record's
lock:

- the **probe loop** (:class:`HealthProber`) GETs ``/healthz`` every
  ``interval`` seconds; ``down_after`` consecutive failures mark the
  backend down, one success marks it up again (and stores the health
  payload, so the gateway's own ``/healthz`` can report fleet
  ``queue_depth`` / ``jobs_inflight`` / ``version`` per node);
- the **forward path** calls :meth:`Backend.mark_down` the moment a
  request hits a transport failure — failover must not wait out a
  probe interval.

A backend is never removed from the hash ring: down nodes are skipped
via the ring's successor list, so a recovered backend rejoins with its
ring positions (and key ownership) intact.
"""

from __future__ import annotations

import hashlib
import threading
import time

from repro.obs.log import get_logger
from repro.server.client import Client

log = get_logger("repro.cluster")


def node_id_for(address: str) -> str:
    """Stable 8-hex id for a backend address — the job-id prefix
    (``{node_id}@{job_id}``), so polls route without gateway state."""
    return hashlib.sha256(address.encode("utf-8")).hexdigest()[:8]


class Backend:
    """One fronted ``repro-server``: clients + liveness state."""

    def __init__(
        self,
        address: str,
        *,
        forward_timeout: float = 120.0,
        probe_timeout: float = 2.0,
        down_after: int = 2,
    ):
        if down_after < 1:
            raise ValueError("down_after must be >= 1")
        self.address = address
        self.node_id = node_id_for(address)
        self.client = Client(f"http://{address}", timeout=forward_timeout)
        self.probe_client = Client(f"http://{address}", timeout=probe_timeout)
        self.down_after = down_after
        self._guard = threading.Lock()
        self.alive = True
        self.consecutive_failures = 0
        self.last_probe_at: float | None = None
        self.last_error: str | None = None
        #: Last successful ``/healthz`` payload (queue_depth, ...).
        self.health: dict = {}
        # Counters (under the lock; read by /metrics).
        self.forwards = 0
        self.transport_failures = 0
        self.marks_down = 0
        self.recoveries = 0

    # -- state transitions ---------------------------------------------

    def mark_down(self, reason: str) -> bool:
        """Request-path death notice; returns True on an up→down flip."""
        with self._guard:
            self.transport_failures += 1
            self.consecutive_failures = max(
                self.consecutive_failures, self.down_after
            )
            self.last_error = reason
            if not self.alive:
                return False
            self.alive = False
            self.marks_down += 1
        log.warning("backend marked down", backend=self.address, reason=reason)
        return True

    def record_probe_success(self, payload: dict) -> bool:
        """Probe success; returns True on a down→up recovery."""
        with self._guard:
            self.last_probe_at = time.time()
            self.consecutive_failures = 0
            self.last_error = None
            self.health = payload
            if self.alive:
                return False
            self.alive = True
            self.recoveries += 1
        log.info(
            "backend recovered; rejoining its ring positions",
            backend=self.address,
        )
        return True

    def record_probe_failure(self, reason: str) -> bool:
        """Probe failure; returns True on an up→down flip."""
        with self._guard:
            self.last_probe_at = time.time()
            self.consecutive_failures += 1
            self.last_error = reason
            if not self.alive or self.consecutive_failures < self.down_after:
                return False
            self.alive = False
            self.marks_down += 1
        log.warning(
            "backend failed consecutive probes; marked down",
            backend=self.address,
            probes=self.down_after,
            reason=reason,
        )
        return True

    def count_forward(self) -> None:
        with self._guard:
            self.forwards += 1

    # -- views ---------------------------------------------------------

    # lint: never-traced
    def probe(self) -> bool:
        """One synchronous health check (runs on a worker thread)."""
        try:
            payload = self.probe_client.health()
        except Exception as exc:  # any failure is a failed probe
            return self.record_probe_failure(f"{type(exc).__name__}: {exc}")
        return self.record_probe_success(payload)

    def snapshot(self) -> dict:
        with self._guard:
            health = self.health
            return {
                "node_id": self.node_id,
                "alive": self.alive,
                "consecutive_failures": self.consecutive_failures,
                "last_probe_at": self.last_probe_at,
                "last_error": self.last_error,
                "forwards": self.forwards,
                "transport_failures": self.transport_failures,
                "marks_down": self.marks_down,
                "recoveries": self.recoveries,
                # Load signals lifted from the backend's own /healthz.
                "queue_depth": health.get("queue_depth"),
                "jobs_inflight": health.get("jobs_inflight"),
                "executor": health.get("executor"),
                "version": health.get("version"),
                "uptime_seconds": health.get("uptime_seconds"),
            }

    def close(self) -> None:
        self.client.close()
        self.probe_client.close()


class HealthProber:
    """Background thread sweeping every backend's ``/healthz``.

    A plain daemon thread, not an asyncio task: probes are blocking
    HTTP calls, and running them off-loop means a wedged backend can
    never stall the gateway's event loop.  ``close()`` wakes and joins
    the thread.
    """

    def __init__(self, backends: list[Backend], interval: float = 2.0):
        if interval <= 0:
            raise ValueError("probe interval must be > 0")
        self.backends = backends
        self.interval = interval
        self.cycles = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway-prober", daemon=True
        )
        self._thread.start()

    # lint: never-traced
    def _run(self) -> None:
        while not self._stop.is_set():
            self.probe_all()
            self._stop.wait(self.interval)

    # lint: never-traced
    def probe_all(self) -> None:
        """One sweep over all backends (also callable synchronously —
        tests and gateway startup use it to settle liveness now)."""
        for backend in self.backends:
            if self._stop.is_set():
                return
            backend.probe()
        self.cycles += 1

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


__all__ = ["Backend", "HealthProber", "node_id_for"]
