"""The checked-in baseline: accepted findings that must not grow.

``repro-lint`` compares the current findings against a baseline file
(JSON, checked in at the repo root).  A finding whose fingerprint is
in the baseline is *accepted* — pre-existing, reviewed, justified —
and does not fail CI; any finding not in the baseline is *new* and
does.  Baseline entries carry a mandatory written justification: the
baseline is a reviewed ledger of deliberate exceptions, not a mute
button.  Entries whose finding no longer fires are reported as *stale*
so the ledger shrinks as code improves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "repro-lint.baseline.json"


@dataclass
class Baseline:
    """Fingerprint → justification ledger of accepted findings."""

    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable baseline file {path}: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("findings"), list)
        ):
            raise ValueError(
                f"baseline file {path} is not a version-{BASELINE_VERSION} "
                "repro-lint baseline"
            )
        entries: dict[str, dict[str, str]] = {}
        for item in payload["findings"]:
            if not isinstance(item, dict) or "fingerprint" not in item:
                raise ValueError(
                    f"baseline file {path} has an entry without a fingerprint"
                )
            entries[str(item["fingerprint"])] = {
                "rule": str(item.get("rule", "")),
                "path": str(item.get("path", "")),
                "scope": str(item.get("scope", "")),
                "message": str(item.get("message", "")),
                "justification": str(item.get("justification", "")),
            }
        return cls(entries=entries)

    def save(self, path: Path, findings: list[Finding]) -> None:
        """Write ``findings`` as the new baseline (existing
        justifications are preserved per fingerprint; new entries get a
        TODO placeholder a reviewer must replace)."""
        items = []
        for finding in findings:
            previous = self.entries.get(finding.fingerprint, {})
            items.append(
                {
                    "fingerprint": finding.fingerprint,
                    "rule": finding.rule,
                    "path": finding.path,
                    "scope": finding.scope,
                    "message": finding.message,
                    "justification": (
                        finding.justification
                        or previous.get("justification")
                        or "TODO: justify or fix"
                    ),
                }
            )
        items.sort(key=lambda i: (i["path"], i["rule"], i["fingerprint"]))
        payload = {"version": BASELINE_VERSION, "findings": items}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict[str, str]]]:
        """``(new, accepted, stale_entries)`` for the current run.

        Accepted findings come back annotated with their baseline
        justification; stale entries are baseline rows whose finding
        no longer fires.
        """
        new: list[Finding] = []
        accepted: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            entry = self.entries.get(finding.fingerprint)
            if entry is None:
                new.append(finding)
            else:
                seen.add(finding.fingerprint)
                accepted.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        column=finding.column,
                        scope=finding.scope,
                        severity=finding.severity,
                        message=finding.message,
                        justification=entry.get("justification", ""),
                    )
                )
        stale = [
            {**entry, "fingerprint": fingerprint}
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in seen
        ]
        return new, accepted, stale


__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]
