"""Sort-Tile-Recursive (STR) bulk loading.

STR packs points into fully-filled leaves by recursively sorting and
slicing the space one dimension at a time, then builds upper levels
the same way over node centers.  It produces the compact, well-shaped
trees the paper's experiments assume (|O| up to 400k objects are
loaded once, then only queried).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.rtree.geometry import Point, mbr_of_rects
from repro.rtree.node import Node
from repro.rtree.store import NodeStore


def _balanced_split(items: list, n_parts: int) -> list[list]:
    """Split into ``n_parts`` contiguous parts whose sizes differ by at
    most one — so no part is smaller than half the average, which keeps
    every bulk-loaded node above the R-tree minimum fill."""
    n = len(items)
    base, extra = divmod(n, n_parts)
    out = []
    start = 0
    for i in range(n_parts):
        size = base + (1 if i < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out


def _tile(
    items: list,
    key_of: callable,
    capacity: int,
    dim: int,
    dims: int,
) -> list[list]:
    """Recursively partition ``items`` into chunks of <= capacity."""
    if len(items) <= capacity:
        return [items]
    n_chunks = math.ceil(len(items) / capacity)
    items = sorted(items, key=lambda it: (key_of(it)[dim], key_of(it)))
    if dim == dims - 1:
        return _balanced_split(items, n_chunks)
    n_slabs = math.ceil(n_chunks ** (1.0 / (dims - dim)))
    out: list[list] = []
    for slab in _balanced_split(items, n_slabs):
        out.extend(_tile(slab, key_of, capacity, dim + 1, dims))
    return out


def str_bulk_load(
    store: NodeStore, dims: int, items: Sequence[tuple[int, Point]]
) -> tuple[int | None, int]:
    """Bulk-load ``(object_id, point)`` pairs; returns ``(root_id, height)``.

    Height counts levels (1 = the root is a leaf).  An empty input
    yields ``(None, 0)``.
    """
    items = list(items)
    if not items:
        return None, 0

    # Leaf level.
    chunks = _tile(items, lambda it: it[1], store.leaf_capacity, 0, dims)
    level: list[tuple[int, object]] = []  # (page_id, mbr) entries
    for chunk in chunks:
        node = Node(store.allocate(), True, list(chunk))
        store.write_node(node)
        level.append((node.page_id, node.mbr()))
    height = 1

    # Upper levels over child MBR centers.
    while len(level) > 1:
        chunks = _tile(
            level, lambda it: it[1].center(), store.internal_capacity, 0, dims
        )
        next_level: list[tuple[int, object]] = []
        for chunk in chunks:
            node = Node(store.allocate(), False, list(chunk))
            store.write_node(node)
            next_level.append((node.page_id, mbr_of_rects(r for _, r in chunk)))
        level = next_level
        height += 1

    return level[0][0], height
