#!/usr/bin/env python3
"""Classroom allocation: comparing SB against the baselines.

The paper's second motivating scenario: before each semester,
instructors declare preferences over classroom capacity, location,
equipment and acoustics, and a central system computes a fair
assignment.  This example runs the same instance through SB, Brute
Force and Chain via one :class:`repro.api.AssignmentSession` — the
room catalogue's R-tree is built once and shared across all three
solves through the instance-hash index cache — verifies they agree,
and prints the cost comparison that motivates the paper (orders of
magnitude of I/O).

Run:  python examples/classroom_allocation.py
"""

import numpy as np

from repro import FunctionSet, ObjectSet
from repro.api import AssignmentSession, Problem

RNG = np.random.default_rng(7)

N_ROOMS = 5000
N_INSTRUCTORS = 150


def make_rooms() -> ObjectSet:
    """Rooms: big rooms are central but poorly equipped (the
    anti-correlated reality of campus estates)."""
    capacity = RNG.random(N_ROOMS)
    location = np.clip(1 - capacity + RNG.normal(0, 0.2, N_ROOMS), 0, 1)
    equipment = np.clip(1 - capacity + RNG.normal(0, 0.25, N_ROOMS), 0, 1)
    acoustics = RNG.random(N_ROOMS)
    pts = np.stack([capacity, location, equipment, acoustics], axis=1)
    return ObjectSet([tuple(p) for p in pts])


def make_instructors() -> FunctionSet:
    raw = RNG.random((N_INSTRUCTORS, 4))
    weights = raw / raw.sum(axis=1, keepdims=True)
    return FunctionSet([tuple(w) for w in weights])


def main() -> None:
    rooms = make_rooms()
    instructors = make_instructors()

    methods = ("sb", "brute-force", "chain")
    base = Problem.from_sets(rooms, instructors, method="sb")
    with AssignmentSession(base, max_workers=3) as session:
        solutions = session.solve_many(
            [base.with_method(method) for method in methods]
        )
        cache = session.cache_info()
    results = dict(zip(methods, solutions))

    reference = results["sb"].as_dict()
    for method, solution in results.items():
        assert solution.as_dict() == reference, method
    print(f"All three algorithms agree on the same stable assignment "
          f"of {len(reference)} rooms.")
    print(f"The room R-tree was built once and reused: "
          f"{cache['misses']} build(s), {cache['hits']} cache hit(s).\n")

    print(f"{'method':14s} {'page reads':>12s} {'CPU (s)':>9s} "
          f"{'peak mem (KiB)':>15s} {'loops':>7s}")
    for method, solution in results.items():
        s = solution.stats
        print(f"{method:14s} {s.io_accesses:12d} {s.cpu_seconds:9.2f} "
              f"{s.peak_memory_bytes / 1024:15.0f} {s.loops:7d}")

    sb_io = results["sb"].stats.io_accesses
    bf_io = results["brute-force"].stats.io_accesses
    ch_io = results["chain"].stats.io_accesses
    print(f"\nSB reads {bf_io / max(sb_io, 1):.0f}x fewer pages than "
          f"Brute Force and {ch_io / max(sb_io, 1):.0f}x fewer than Chain "
          f"— the paper's headline result.")


if __name__ == "__main__":
    main()
