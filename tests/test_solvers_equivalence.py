"""The central cross-validation: seven solver implementations must
produce the identical canonical stable matching on every instance.

Under the strict canonical orders the stable matching is unique, so
greedy oracle == Gale-Shapley == Brute Force == Chain == SB (all
variants) == SB-alt, pair for pair, unit for unit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import build_object_index, solve
from repro.core import (
    assert_valid_matching,
    gale_shapley_assign,
    greedy_assign,
)
from repro.data.instances import FunctionSet, ObjectSet

from .conftest import random_instance

ALL_METHODS = [
    "sb",
    "sb-update",
    "sb-deltasky",
    "sb-two-skylines",
    "sb-alt",
    "brute-force",
    "chain",
]


def run_all(fs, os_, methods=ALL_METHODS):
    ref = greedy_assign(fs, os_).matching
    ref_dict = ref.as_dict()
    assert gale_shapley_assign(fs, os_).matching.as_dict() == ref_dict
    for m in methods:
        idx = build_object_index(os_, page_size=512, memory=(m == "sb-alt"))
        got = solve(fs, idx, method=m).matching
        assert got.as_dict() == ref_dict, f"{m} diverged from the oracle"
    assert_valid_matching(ref, fs, os_)
    return ref


@pytest.mark.parametrize("dims", [2, 3, 4, 5])
def test_plain_instances(dims):
    fs, os_ = random_instance(12, 30, dims, seed=dims)
    run_all(fs, os_)


@pytest.mark.parametrize("seed", range(4))
def test_tie_heavy_instances(seed):
    fs, os_ = random_instance(10, 25, 3, seed=seed, tie_heavy=True)
    run_all(fs, os_)


@pytest.mark.parametrize("seed", range(4))
def test_capacitated_instances(seed):
    fs, os_ = random_instance(8, 20, 3, seed=seed, capacities=True)
    run_all(fs, os_)


@pytest.mark.parametrize("seed", range(4))
def test_prioritized_instances(seed):
    fs, os_ = random_instance(10, 25, 3, seed=seed, priorities=True)
    run_all(fs, os_)


@pytest.mark.parametrize("seed", range(3))
def test_capacitated_and_prioritized(seed):
    fs, os_ = random_instance(
        8, 16, 3, seed=seed, capacities=True, priorities=True, tie_heavy=True
    )
    run_all(fs, os_)


class TestEdgeCases:
    def test_one_function_one_object(self):
        fs = FunctionSet([(0.5, 0.5)])
        os_ = ObjectSet([(0.3, 0.7)])
        m = run_all(fs, os_)
        assert m.as_dict() == {(0, 0): 1}

    def test_more_functions_than_objects(self):
        fs, os_ = random_instance(20, 5, 3, seed=7)
        m = run_all(fs, os_)
        assert m.num_units == 5  # only |O| functions can be served

    def test_more_objects_than_functions(self):
        fs, os_ = random_instance(3, 40, 3, seed=8)
        m = run_all(fs, os_)
        assert m.num_units == 3

    def test_all_objects_identical(self):
        fs, _ = random_instance(4, 1, 2, seed=9)
        os_ = ObjectSet([(0.5, 0.5)] * 6)
        run_all(fs, os_)

    def test_all_functions_identical(self):
        _, os_ = random_instance(1, 10, 2, seed=10)
        fs = FunctionSet([(0.4, 0.6)] * 5)
        run_all(fs, os_)

    def test_everything_identical(self):
        fs = FunctionSet([(0.5, 0.5)] * 3)
        os_ = ObjectSet([(0.2, 0.2)] * 4)
        m = run_all(fs, os_)
        assert m.num_units == 3

    def test_single_dominating_object(self):
        fs, _ = random_instance(5, 1, 2, seed=11)
        os_ = ObjectSet([(1.0, 1.0)] + [(0.1, 0.1)] * 9)
        m = run_all(fs, os_)
        # The dominating object goes to exactly one function.
        assert sum(c for (f, o), c in m.as_dict().items() if o == 0) == 1

    def test_large_capacities(self):
        fs = FunctionSet([(0.7, 0.3), (0.2, 0.8)], capacities=[10, 10])
        os_ = ObjectSet([(0.9, 0.1), (0.1, 0.9)], capacities=[10, 10])
        m = run_all(fs, os_)
        assert m.num_units == 20

    def test_capacity_asymmetry(self):
        # |F| capacity >> |O| capacity: objects are the scarce side.
        fs = FunctionSet([(0.5, 0.5)] * 3, capacities=[5, 5, 5])
        os_ = ObjectSet([(0.8, 0.8), (0.2, 0.2)])
        m = run_all(fs, os_)
        assert m.num_units == 2


@pytest.mark.parametrize("dims", [2, 3])
def test_engine_configs_match_pre_refactor_oracles(dims):
    """The engine-backed named configs reproduce the pre-refactor
    oracle results (greedy + Gale-Shapley) — the refactor's
    bit-identical-output guarantee, asserted per config."""
    from repro.engine import ENGINE_CONFIGS, engine_config

    fs, os_ = random_instance(
        10, 24, dims, seed=dims + 50, capacities=True, priorities=True
    )
    ref = greedy_assign(fs, os_).matching.as_dict()
    assert gale_shapley_assign(fs, os_).matching.as_dict() == ref
    for name in sorted(ENGINE_CONFIGS):
        idx = build_object_index(os_, page_size=512, memory=(name == "sb-alt"))
        got = solve(fs, idx, method=engine_config(name)).matching
        assert got.as_dict() == ref, f"engine config {name} diverged"


# Hypothesis: full random instances, all solvers, moderate sizes.
inst = st.builds(
    random_instance,
    nf=st.integers(1, 12),
    no=st.integers(1, 20),
    dims=st.integers(2, 4),
    seed=st.integers(0, 10**6),
    capacities=st.booleans(),
    priorities=st.booleans(),
    tie_heavy=st.booleans(),
)


@given(inst)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_all_solvers_agree(pair):
    fs, os_ = pair
    run_all(fs, os_)
