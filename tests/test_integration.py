"""End-to-end integration: the paper's headline cost shapes, at test
scale, plus determinism and the priority/two-skyline relationships."""

import pytest

from repro import build_object_index, solve
from repro.core import assert_valid_matching
from repro.data.generators import make_functions, make_objects, random_priorities


@pytest.fixture(scope="module")
def medium_instance():
    objects = make_objects(4000, 3, "anti-correlated", seed=21)
    functions = make_functions(120, 3, seed=22)
    return functions, objects


def run(functions, objects, method, **kw):
    idx = build_object_index(objects, buffer_fraction=0.02)
    return solve(functions, idx, method=method, **kw)


class TestHeadlineShapes:
    """The paper's Section 7 claims, as order relations."""

    @pytest.fixture(scope="class")
    def results(self, medium_instance):
        functions, objects = medium_instance
        return {
            m: run(functions, objects, m)
            for m in ("sb", "brute-force", "chain")
        }

    def test_all_agree(self, results, medium_instance):
        functions, objects = medium_instance
        ref = results["sb"].matching.as_dict()
        for m, r in results.items():
            assert r.matching.as_dict() == ref
        assert_valid_matching(results["sb"].matching, functions, objects)

    def test_sb_io_beats_brute_force_by_an_order(self, results):
        assert results["sb"].stats.io_accesses * 10 < (
            results["brute-force"].stats.io_accesses
        )

    def test_brute_force_io_beats_chain(self, results):
        """Brute Force resumes searches; Chain cannot (Section 7.2)."""
        assert (
            results["brute-force"].stats.io_accesses
            < results["chain"].stats.io_accesses
        )

    def test_brute_force_memory_is_largest(self, results):
        """One retained search heap per function (Figure 9(g-i))."""
        bf = results["brute-force"].stats.peak_memory_bytes
        assert bf > results["sb"].stats.peak_memory_bytes
        assert bf > results["chain"].stats.peak_memory_bytes


class TestBufferBehaviour:
    """Figure 13: buffers help BF/Chain, never SB (read-once)."""

    def test_sb_flat_buffer_curve(self, medium_instance):
        functions, objects = medium_instance
        io = []
        for frac in (0.0, 0.10):
            idx = build_object_index(objects, buffer_fraction=frac)
            io.append(solve(functions, idx, method="sb").stats.io_accesses)
        assert io[0] == io[1]

    def test_brute_force_benefits_from_buffer(self, medium_instance):
        functions, objects = medium_instance
        io = []
        for frac in (0.0, 0.10):
            idx = build_object_index(objects, buffer_fraction=frac)
            io.append(
                solve(functions, idx, method="brute-force").stats.io_accesses
            )
        assert io[1] < io[0]


class TestDeterminism:
    def test_same_seed_same_everything(self, medium_instance):
        functions, objects = medium_instance
        a = run(functions, objects, "sb")
        b = run(functions, objects, "sb")
        assert a.matching.as_dict() == b.matching.as_dict()
        assert a.stats.io_accesses == b.stats.io_accesses
        assert a.stats.loops == b.stats.loops


class TestPriorities:
    def test_two_skylines_matches_sb_under_priorities(self):
        objects = make_objects(1500, 3, "anti-correlated", seed=31)
        functions = make_functions(
            60, 3, seed=32, gammas=random_priorities(60, 4, seed=33)
        )
        a = run(functions, objects, "sb")
        b = run(functions, objects, "sb-two-skylines")
        assert a.matching.as_dict() == b.matching.as_dict()
        # Identical I/O: both maintain the object skyline identically
        # (Figure 15(a): "the disk accesses of the two SB versions are
        # identical").
        assert a.stats.io_accesses == b.stats.io_accesses

    def test_priority_changes_winners(self):
        """A high-priority function displaces an equal-weight rival."""
        from repro.data.instances import FunctionSet, ObjectSet

        fs_flat = FunctionSet([(0.5, 0.5), (0.5, 0.5)])
        fs_prio = FunctionSet([(0.5, 0.5), (0.5, 0.5)], gammas=[1.0, 3.0])
        os_ = ObjectSet([(0.9, 0.9), (0.1, 0.1)])
        idx = build_object_index(os_)
        flat = solve(fs_flat, idx, method="sb").matching.as_dict()
        idx = build_object_index(os_)
        prio = solve(fs_prio, idx, method="sb").matching.as_dict()
        assert flat == {(0, 0): 1, (1, 1): 1}  # fid tie-break
        assert prio == {(1, 0): 1, (0, 1): 1}  # γ=3 wins the good object


class TestScaleSanity:
    def test_more_functions_needs_no_more_object_io(self):
        """Figure 10's key trend at test scale: SB's I/O grows only
        marginally with |F| (skyline work dominates)."""
        objects = make_objects(3000, 3, "anti-correlated", seed=41)
        io = {}
        for nf in (50, 200):
            functions = make_functions(nf, 3, seed=42)
            io[nf] = run(functions, objects, "sb").stats.io_accesses
        assert io[200] < io[50] * 4  # sub-linear growth in |F|
