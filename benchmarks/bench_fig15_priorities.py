"""Figure 15 — preference queries with priorities (Section 6.2).

Priorities drawn uniformly from [1..γ], γ in {2, 4, 8, 16}.  Expected
shapes: I/O practically independent of γ, with plain SB and the
two-skyline SB identical in I/O; plain SB's CPU grows with γ (the
knapsack threshold loosens as B = max γ); the two-skyline variant is
several times faster in CPU and uses the least memory.
"""

import pytest

from repro.bench.config import PRIORITY_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "sb-two-skylines", "brute-force", "chain"]

_io: dict[tuple[str, int], int] = {}


@pytest.mark.benchmark(group="fig15-priorities")
@pytest.mark.parametrize("gamma", PRIORITY_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig15(benchmark, method, gamma):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=15, max_priority=gamma
    )
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
    _io[(method, gamma)] = stats.io_accesses
    # "The disk accesses of the two SB versions are identical."
    if method == "sb-two-skylines" and ("sb", gamma) in _io:
        assert stats.io_accesses == _io[("sb", gamma)]
