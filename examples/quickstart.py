#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 internship example.

Three students express preferences over salary (X) and company
standing (Y); four internship positions are on offer.  The fair
assignment is the stable matching: the (student, position) pair with
the highest score is fixed first, then the next, and so on.

Run:  python examples/quickstart.py
"""

from repro import FunctionSet, ObjectSet, build_object_index, solve

POSITIONS = {
    "a": (0.5, 0.6),
    "b": (0.2, 0.7),
    "c": (0.8, 0.2),
    "d": (0.4, 0.4),
}

STUDENTS = {
    "f1 (salary hunter)": (0.8, 0.2),
    "f2 (prestige hunter)": (0.2, 0.8),
    "f3 (balanced)": (0.5, 0.5),
}


def main() -> None:
    position_names = list(POSITIONS)
    student_names = list(STUDENTS)

    objects = ObjectSet(list(POSITIONS.values()))
    functions = FunctionSet(list(STUDENTS.values()))

    index = build_object_index(objects)
    matching, stats = solve(functions, index, method="sb")

    print("Stable internship assignment (paper Figure 1):")
    for pair in matching.pairs:
        student = student_names[pair.fid]
        position = position_names[pair.oid]
        print(f"  {student:22s} -> position {position}   score {pair.score:.2f}")

    print(f"\nPairs found over {stats.loops} loop(s), "
          f"{stats.io_accesses} page read(s).")

    # The paper's walk-through: c goes to f1 (score 0.68), then b to
    # f2, then a to f3.
    expected = {(0, 2), (1, 1), (2, 0)}
    assert {(p.fid, p.oid) for p in matching.pairs} == expected
    print("Matches the paper's worked example: "
          "(f1, c), (f2, b), (f3, a).")


if __name__ == "__main__":
    main()
