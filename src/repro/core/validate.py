"""Stability verification (Definition 1 / Property 2).

``find_blocking_pair`` performs the textbook check: a pair ``(f, o)``
blocks a matching if both would strictly (canonically) rather be
matched to each other than to their currently worst partner — where a
side with unused capacity is trivially willing.  A matching is stable
iff no blocking pair exists.  O(|F|·|O|), test-scale only.
"""

from __future__ import annotations

from repro.core.types import Matching
from repro.data.instances import FunctionSet, ObjectSet
from repro.ordering import function_key, object_key
from repro.scoring import score


def find_blocking_pair(
    matching: Matching, functions: FunctionSet, objects: ObjectSet
) -> tuple[int, int] | None:
    """Return a blocking ``(fid, oid)`` pair, or ``None`` if stable."""
    f_partners: dict[int, list[int]] = {fid: [] for fid in range(len(functions))}
    o_partners: dict[int, list[int]] = {oid: [] for oid in range(len(objects))}
    for p in matching.pairs:
        f_partners[p.fid].extend([p.oid] * p.count)
        o_partners[p.oid].extend([p.fid] * p.count)

    for fid in range(len(functions)):
        if len(f_partners[fid]) > functions.capacity(fid):
            raise ValueError(f"function {fid} over capacity in matching")
    for oid in range(len(objects)):
        if len(o_partners[oid]) > objects.capacity(oid):
            raise ValueError(f"object {oid} over capacity in matching")

    # Worst current partner of each side, by the canonical orders
    # (None means spare capacity: anything is an improvement).
    def f_worst_key(fid: int):
        if len(f_partners[fid]) < functions.capacity(fid):
            return None
        w = functions.effective_weights(fid)
        return max(
            object_key(score(w, objects.points[oid]), objects.points[oid], oid)
            for oid in f_partners[fid]
        )

    def o_worst_key(oid: int):
        if len(o_partners[oid]) < objects.capacity(oid):
            return None
        p = objects.points[oid]
        return max(
            function_key(
                score(functions.effective_weights(fid), p),
                functions.effective_weights(fid),
                fid,
            )
            for fid in o_partners[oid]
        )

    f_worst = {fid: f_worst_key(fid) for fid in range(len(functions))}
    o_worst = {oid: o_worst_key(oid) for oid in range(len(objects))}

    for fid in range(len(functions)):
        w = functions.effective_weights(fid)
        for oid, p in enumerate(objects.points):
            s = score(w, p)
            fk = function_key(s, w, fid)
            ok = object_key(s, p, oid)
            f_wants = f_worst[fid] is None or ok < f_worst[fid]
            o_wants = o_worst[oid] is None or fk < o_worst[oid]
            if f_wants and o_wants:
                # Matched units of (f, o) itself don't block; but a pair
                # with *both* sides preferring more of each other than
                # their worst alternatives still blocks unless one side
                # is saturated by the other.
                return fid, oid
    return None


def assert_stable(
    matching: Matching, functions: FunctionSet, objects: ObjectSet
) -> None:
    pair = find_blocking_pair(matching, functions, objects)
    if pair is not None:
        raise AssertionError(f"matching is unstable: blocking pair {pair}")


def assert_valid_matching(
    matching: Matching, functions: FunctionSet, objects: ObjectSet
) -> None:
    """Capacity feasibility + saturation: the matched unit count must be
    ``min(total F capacity, total O capacity)`` (stable matchings in
    this model leave no mutually-free capacity behind)."""
    expected = min(functions.total_capacity, objects.total_capacity)
    if matching.num_units != expected:
        raise AssertionError(
            f"matching has {matching.num_units} units, expected {expected}"
        )
    assert_stable(matching, functions, objects)
