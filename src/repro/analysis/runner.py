"""The lint driver: file discovery, rule dispatch, baseline, output.

:func:`run_lint` is the library entry point (the CLI in
``__main__.py`` is a thin argparse shell over it).  Per file it parses
once, builds the suppression index, and runs the applicable rule
families; the project-level registry rules run once per invocation
when the scanned tree contains the live registry.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.baseline import Baseline
from repro.analysis.determinism import (
    DETERMINISTIC_MARKER,
    check_determinism,
    is_deterministic_path,
)
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.hotpath import check_hotpath
from repro.analysis.locks import check_locks
from repro.analysis.registry_rules import RegistryView, check_registry
from repro.analysis.suppress import SuppressionIndex

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Everything one ``repro-lint`` run produced."""

    new: list[Finding] = field(default_factory=list)
    accepted: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def summary(self) -> dict[str, int]:
        return {
            "files_checked": self.files_checked,
            "new": len(self.new),
            "accepted": len(self.accepted),
            "suppressed": self.suppressed,
            "stale_baseline": len(self.stale_baseline),
        }

    def to_dict(self) -> dict:
        return {
            "summary": self.summary(),
            "findings": [f.to_dict() for f in self.new],
            "accepted": [f.to_dict() for f in self.accepted],
            "stale_baseline": self.stale_baseline,
        }

    def render_text(self) -> str:
        lines: list[str] = []
        for finding in self.new:
            lines.append(finding.render())
        if self.accepted:
            lines.append(f"{len(self.accepted)} accepted finding(s) in baseline:")
            for finding in self.accepted:
                lines.append(
                    f"  {finding.location}: {finding.rule} "
                    f"(baselined: {finding.justification})"
                )
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry {entry['fingerprint']} "
                f"({entry.get('rule', '?')} at {entry.get('path', '?')}): "
                "finding no longer fires — remove it from the baseline"
            )
        summary = self.summary()
        lines.append(
            f"repro-lint: {summary['files_checked']} file(s), "
            f"{summary['new']} new, {summary['accepted']} accepted, "
            f"{summary['suppressed']} suppressed, "
            f"{summary['stale_baseline']} stale baseline entr"
            f"{'y' if summary['stale_baseline'] == 1 else 'ies'}"
        )
        return "\n".join(lines)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.append(candidate)
    return files


def lint_file(
    path: Path, rel_path: str, *, rules: frozenset[str] | None = None
) -> tuple[list[Finding], int]:
    """``(findings, suppressed_count)`` for one source file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule="REP000",
                    path=rel_path,
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    raw: list[Finding] = []
    raw.extend(check_locks(tree, rel_path))
    if is_deterministic_path(rel_path) or DETERMINISTIC_MARKER in source:
        raw.extend(check_determinism(tree, rel_path))
    raw.extend(check_hotpath(tree, rel_path, source))

    suppressions = SuppressionIndex(source)
    for malformed in suppressions.malformed:
        raw.append(
            Finding(
                rule=malformed.rule,
                path=rel_path,
                line=malformed.line,
                column=malformed.column,
                severity=malformed.severity,
                message=malformed.message,
            )
        )

    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        if rules is not None and finding.rule not in rules:
            continue
        if suppressions.lookup(finding.rule, finding.line) is not None:
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


def run_lint(
    paths: list[Path],
    *,
    root: Path | None = None,
    baseline: Baseline | None = None,
    rules: frozenset[str] | None = None,
    registry_checks: bool = True,
) -> LintResult:
    """Lint ``paths`` (files or directories) and fold in the baseline.

    ``root`` anchors the relative paths findings report (defaults to
    the current directory); the registry rules run when the scanned
    tree contains the live registry module.
    """
    root = (root or Path.cwd()).resolve()
    result = LintResult()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = resolved.as_posix()
        file_findings, suppressed = lint_file(resolved, rel, rules=rules)
        findings.extend(file_findings)
        result.suppressed += suppressed
        result.files_checked += 1

    if registry_checks and (root / "src/repro/planner/registry.py").exists():
        registry_findings = check_registry(RegistryView.live(root))
        if rules is not None:
            registry_findings = [f for f in registry_findings if f.rule in rules]
        findings.extend(registry_findings)

    findings = sort_findings(findings)
    if baseline is None:
        result.new = findings
    else:
        result.new, result.accepted, result.stale_baseline = baseline.split(findings)
    return result


def render_json(result: LintResult) -> str:
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


__all__ = [
    "LintResult",
    "iter_python_files",
    "lint_file",
    "render_json",
    "run_lint",
]
