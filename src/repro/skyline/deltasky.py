"""DeltaSky-style skyline maintenance [Wu et al., ICDE 2007].

The maintenance baseline of the paper's Figure 8.  For every removed
skyline point, DeltaSky re-traverses the R-tree from the root and
visits the nodes that (a) can intersect the removed point's dominance
region and (b) are not dominated by the surviving skyline — the
implicit-EDR intersection test that avoids materializing the
exclusive dominance region (the check is O(|skyline| · D) per node,
matching the paper's description).  Because each removal triggers a
fresh root-to-leaf traversal, the same pages are read again and again
across removals — exactly the I/O behaviour UpdateSkyline eliminates.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.rtree.geometry import Point, dominates, sky_key_point
from repro.rtree.tree import RTree
from repro.skyline.bbs import bbs_skyline
from repro.skyline.dominance import DominanceIndex
from repro.storage.stats import BYTES_PER_HEAP_ENTRY, MemoryTracker


class DeltaSkyManager:
    """Skyline maintenance with DeltaSky; same interface as
    :class:`~repro.skyline.maintenance.UpdateSkylineManager`."""

    def __init__(self, tree: RTree, mem: MemoryTracker | None = None):
        self.tree = tree
        self.mem = mem
        self.skyline: dict[int, Point] = {}
        self._dom = DominanceIndex(tree.dims)
        self._removed: set[int] = set()
        self._computed = False

    def compute_initial(self) -> dict[int, Point]:
        if self._computed:
            raise RuntimeError("initial skyline already computed")
        self._computed = True
        self.skyline = bbs_skyline(self.tree, mem=self.mem)
        for oid, p in self.skyline.items():
            self._dom.add(oid, p)
        return self.skyline

    def remove(self, oids: Iterable[int]) -> dict[int, Point]:
        """Remove skyline members and repair the skyline, one
        constrained traversal per removed point (DeltaSky's cost model).

        Candidates from all traversals are gathered first and inserted
        in BBS (sky-distance) order so that candidates dominated by
        other candidates are culled correctly even for simultaneous
        multi-point removals.
        """
        if not self._computed:
            raise RuntimeError("call compute_initial() first")
        removed_points: list[tuple[int, Point]] = []
        for oid in oids:
            if oid not in self.skyline:
                raise KeyError(f"object {oid} is not a current skyline member")
            removed_points.append((oid, self.skyline[oid]))
            del self.skyline[oid]
            self._dom.remove(oid)
            self._removed.add(oid)

        candidates: dict[int, Point] = {}
        for _, point_removed in removed_points:
            self._constrained_search(point_removed, candidates)

        for oid, p in sorted(
            candidates.items(), key=lambda it: (sky_key_point(it[1]), it[0])
        ):
            if self._dom.find_dominator(p) is None:
                self.skyline[oid] = p
                self._dom.add(oid, p)
        return self.skyline

    # -- internals ---------------------------------------------------------

    def _constrained_search(
        self, removed_point: Point, candidates: dict[int, Point]
    ) -> None:
        """Collect surviving points exclusively dominated by
        ``removed_point`` via a root-down constrained traversal."""
        if self.tree.root_id is None:
            return
        removed_arr = np.asarray(removed_point)
        stack = [self.tree.root_id]
        max_depth = 0
        while stack:
            if self.mem is not None and len(stack) > max_depth:
                max_depth = len(stack)
                self.mem.set_gauge(
                    "deltasky_stack", max_depth * BYTES_PER_HEAP_ENTRY
                )
            node = self.tree.store.read_node(stack.pop())  # page access
            if node.is_leaf:
                for oid, p in node.entries:
                    if oid in self._removed or oid in candidates:
                        continue
                    if not dominates(removed_point, p):
                        continue  # outside the dominance region
                    if self._dom.find_dominator(p) is None:
                        candidates[oid] = p
                continue
            for cid, mbr in node.entries:
                # Implicit EDR test: the child can contain points of the
                # removed point's dominance region iff its lower corner
                # is <= the removed point everywhere ...
                if not all(lo <= r for lo, r in zip(mbr.lo, removed_arr)):
                    continue
                # ... and it is not wholly dominated by a survivor.
                if self._dom.find_dominator(mbr.hi) is not None:
                    continue
                stack.append(cid)
