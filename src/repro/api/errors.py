"""Re-export of the typed exception hierarchy at the API surface.

The classes live in :mod:`repro.errors` (a dependency-free module any
layer may import without cycles); this alias makes them reachable
where users expect them: ``from repro.api.errors import ReproError``.
"""

from repro.errors import (
    FrozenInstanceError,
    InvalidProblemError,
    InvalidSolverOptionError,
    ReproError,
    SerdeError,
    SessionClosedError,
    UnknownSolverError,
)

__all__ = [
    "FrozenInstanceError",
    "InvalidProblemError",
    "InvalidSolverOptionError",
    "ReproError",
    "SerdeError",
    "SessionClosedError",
    "UnknownSolverError",
]
