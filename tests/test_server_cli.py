"""Console-path smoke: boot ``python -m repro.server`` as a real
subprocess on an ephemeral port, register a problem, solve it via the
blocking Client, and certify the solution — the CI server-smoke job
runs exactly this test."""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.api import Problem
from repro.server import Client

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _read_port(process, timeout=30.0) -> int:
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    line = ""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            stderr = process.stderr.read() if process.stderr else ""
            raise AssertionError(
                f"server exited early (rc={process.returncode}): {stderr}"
            )
        line = process.stdout.readline()
        if line:
            break
    assert line.startswith("repro-server listening on http://"), line
    return int(line.rstrip().rsplit(":", 1)[1])


@pytest.fixture()
def server_process():
    process = _spawn_server()
    try:
        yield process
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def test_console_entry_point_serves_solves(server_process):
    port = _read_port(server_process)
    problem = (
        Problem.builder()
        .add_objects([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
        .add_functions([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
        .solver("sb")
        .build()
    )
    with Client(host="127.0.0.1", port=port) as client:
        assert client.health()["status"] == "ok"
        problem_id = client.register(problem)
        solution = client.solve(problem_id)
        solution.verify()                      # certified stable
        job_id = client.submit(problem_id, method="chain")
        assert client.result(job_id).as_dict() == solution.as_dict()
        assert client.metrics()["solves"]["total"] >= 2


def test_console_entry_point_process_executor():
    """The CI server-smoke job runs this with ``--executor process``:
    the console path must boot worker processes and serve solutions
    identical to the thread backend."""
    process = _spawn_server("--executor", "process", "--workers", "2")
    try:
        port = _read_port(process)
        problem = (
            Problem.builder()
            .add_objects([(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)])
            .add_functions([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
            .solver("sb")
            .build()
        )
        with Client(host="127.0.0.1", port=port) as client:
            assert client.health()["executor"] == "process"
            remote = client.solve(client.register(problem))
            remote.verify()
            from repro.api import AssignmentSession

            with AssignmentSession(problem) as session:
                direct = session.solve()
            assert remote.to_dict()["pairs"] == direct.to_dict()["pairs"]
            assert client.metrics()["index_cache"]["workers"] == 2
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
