"""Table 2 defaults: all methods at the default parameter point.

The reference configuration every figure varies around: |F|=5k,
|O|=100k (scaled), D=4, anti-correlated objects, capacity 1, γ=1,
2% LRU buffer.  Also asserts the paper's headline ordering — SB's
I/O is orders of magnitude below Brute Force and Chain — so the
benchmark suite fails loudly if the reproduction ever regresses.
"""

import pytest

from repro.bench.config import defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "sb-update", "sb-deltasky", "brute-force", "chain"]

_io_results: dict[str, int] = {}


@pytest.mark.benchmark(group="table2-defaults")
@pytest.mark.parametrize("method", METHODS)
def test_table2_defaults(benchmark, method):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=2
    )
    matching, stats = bench_cell(benchmark, method, functions, objects)
    assert matching.num_units == min(len(functions), len(objects))
    _io_results[method] = stats.io_accesses


def test_headline_io_ordering():
    """SB << Brute Force < Chain (Figures 9-13)."""
    if len(_io_results) < len(METHODS):  # pragma: no cover
        pytest.skip("run with --benchmark-only to populate results")
    assert _io_results["sb"] * 10 < _io_results["brute-force"]
    assert _io_results["brute-force"] < _io_results["chain"]
    assert _io_results["sb"] == _io_results["sb-update"]
    assert _io_results["sb-update"] < _io_results["sb-deltasky"]
