"""The vectorized mutual-best round.

One matmul per round scores every alive function against every
skyline object and answers *both* directions of Property 2 from the
same matrix: ``fbest`` (per skyline object, the canonically best
alive function — column argmax) and ``obest`` (per candidate
function, the canonically best skyline object — row argmax).  Their
intersection, emitted in ascending function-id order, is exactly what
:class:`repro.engine.rounds.MutualBestRound` produces from per-object
TA searches plus the MatrixView scan.

Exactness: numpy argmaxes are only trusted when a single row/column
sits inside the rounding-error tolerance band (scaled by the summed
term magnitudes, the PR 4 ``MatrixView`` discipline).  Bands with
more than one member are resolved with :func:`repro.scoring.score`
and the canonical tuple orders — so emitted pairs and their float
scores are bit-identical to the interpreted twin's.
"""

from __future__ import annotations

import numpy as np

from repro.engine.engine import EngineContext
from repro.engine.protocols import RoundStrategy, SkylineState, StablePair
from repro.kernels.skyline import VectorizedSkylineMaintenance
from repro.ordering import neg
from repro.scoring import SCORE_EPS, score


class VectorizedMutualRound(RoundStrategy):
    """fbest ∩ obest from one score matrix per round."""

    def __init__(self, ctx: EngineContext, maintenance: VectorizedSkylineMaintenance):
        self.ctx = ctx
        self.maint = maintenance
        self.col = maintenance.columnar
        # Capacities are >= 1 by construction, so every function
        # starts alive; commits flip entries off.
        self.f_alive = self.col.function_capacities > 0
        self.score_cells = 0
        self.tie_resolutions = 0

    def propose(self, skyline: SkylineState) -> list[StablePair] | None:
        col = self.col
        alive = np.nonzero(self.f_alive)[0]
        if alive.size == 0:
            return None  # no alive function left anywhere
        sky = self.maint.sky_indices()
        weights = col.weights[alive]
        points = col.points[sky]
        scores = weights @ points.T  # |alive| × |sky|
        self.score_cells += scores.size
        self.ctx.mem.set_gauge("score_matrix", scores.nbytes)

        # -- fbest: canonically best alive function per skyline object.
        col_tol = SCORE_EPS * np.maximum(
            1.0, col.max_abs_weight * np.abs(points).sum(axis=1)
        )
        col_band = scores >= (scores.max(axis=0) - col_tol)[None, :]
        fbest_fid = alive[scores.argmax(axis=0)]
        fbest_exact: dict[int, float] = {}
        for j in np.nonzero(col_band.sum(axis=0) > 1)[0]:
            j = int(j)
            fid, exact = self._resolve_function(
                alive[np.nonzero(col_band[:, j])[0]], int(sky[j])
            )
            fbest_fid[j] = fid
            fbest_exact[j] = exact

        # -- obest: canonically best skyline object per candidate.
        candidate_fids = np.unique(fbest_fid)
        cand_rows = scores[np.searchsorted(alive, candidate_fids)]
        row_tol = SCORE_EPS * np.maximum(
            1.0,
            col.max_abs_point * np.abs(col.weights[candidate_fids]).sum(axis=1),
        )
        row_band = cand_rows >= (cand_rows.max(axis=1) - row_tol)[:, None]
        obest_oid = sky[cand_rows.argmax(axis=1)]
        for t in np.nonzero(row_band.sum(axis=1) > 1)[0]:
            t = int(t)
            obest_oid[t] = self._resolve_object(
                sky[np.nonzero(row_band[t])[0]], int(candidate_fids[t])
            )

        # -- mutually-best pairs (Property 2), ascending fid order.
        pairs: list[StablePair] = []
        for t in range(len(candidate_fids)):
            fid = int(candidate_fids[t])
            oid = int(obest_oid[t])
            j = int(np.searchsorted(sky, oid))
            if int(fbest_fid[j]) != fid:
                continue
            exact = fbest_exact.get(j)
            if exact is None:
                exact = score(
                    self.ctx.functions.effective_weights(fid),
                    self.ctx.objects.points[oid],
                )
            pairs.append(StablePair(fid, oid, exact))
        return pairs

    # -- exact canonical tie resolution -------------------------------------

    def _resolve_function(self, band_fids: np.ndarray, oid: int) -> tuple[int, float]:
        """Canonical winner of a fbest tolerance band (function_key)."""
        self.tie_resolutions += 1
        point = self.ctx.objects.points[oid]
        best_key = None
        for fid in band_fids:
            fid = int(fid)
            w = self.ctx.functions.effective_weights(fid)
            key = (-score(w, point), neg(w), fid)
            if best_key is None or key < best_key:
                best_key = key
        return best_key[2], -best_key[0]

    def _resolve_object(self, band_oids: np.ndarray, fid: int) -> int:
        """Canonical winner of an obest tolerance band (object_key)."""
        self.tie_resolutions += 1
        w = self.ctx.functions.effective_weights(fid)
        best_key = None
        for oid in band_oids:
            oid = int(oid)
            p = self.ctx.objects.points[oid]
            key = (-score(p, w), neg(p), oid)
            if best_key is None or key < best_key:
                best_key = key
        return best_key[2]

    # -- engine hooks --------------------------------------------------------

    def on_pair_committed(
        self, fid: int, oid: int, units: int, f_died: bool, o_died: bool
    ) -> None:
        if f_died:
            self.f_alive[fid] = False

    def finalize(self, stats, skyline) -> None:
        stats.counters["skyline_final_size"] = len(skyline)
        stats.counters["kernel_score_cells"] = self.score_cells
        stats.counters["kernel_tie_resolutions"] = self.tie_resolutions
