"""The checked-in cost-model calibration table.

Coefficient rows are ordered like
:data:`repro.planner.profile.FEATURE_NAMES`::

    (intercept, log|F|, log|O|, log dims,
     object_correlation, weight_skew, log capacity_ratio)

and parameterize ``log(seconds)``; see :mod:`repro.planner.cost`.

Fit by ``benchmarks/bench_planner.py --calibrate`` over a grid of
generated instance shapes (cardinality sweep × dimensionality ×
distribution × capacity skew); the grid, host and date are recorded in
``BENCH_planner.json`` next to the regret numbers measured against
this very table.  Re-run calibration after touching any engine hot
path, or on a deployment host whose constant factors differ wildly.
"""

from __future__ import annotations

#: Identifies which fit produced the table (surfaced in ``explain()``).
CALIBRATION_VERSION = "2026-08-07"

#: Per-config power-law coefficients (see module docstring for order).
#: Fit on the 12-cell BASE_GRID of ``benchmarks/bench_planner.py``
#: (ridge-regularized; see the ``pr6_vectorized`` row of
#: ``BENCH_planner.json`` for the regret this table achieves).
CALIBRATION: dict[str, tuple[float, ...]] = {
    "sb": (
        -10.063131,
        0.376324,
        0.927641,
        0.655316,
        -1.105363,
        -0.277872,
        -0.419298,
    ),
    "sb-update": (
        -13.533466,
        0.014496,
        2.134646,
        2.553650,
        -1.697230,
        -0.355290,
        -1.825919,
    ),
    "sb-deltasky": (
        -12.909816,
        0.767813,
        1.522235,
        1.619222,
        -1.513530,
        -0.306141,
        -1.129819,
    ),
    "sb-vec": (
        -9.772043,
        -1.016999,
        1.880904,
        0.484288,
        0.134541,
        -0.427810,
        -1.356181,
    ),
    "sb-deltasky-vec": (
        -9.513580,
        -0.664572,
        1.668363,
        1.094969,
        -0.067335,
        -0.362357,
        -1.504886,
    ),
    "sb-two-skylines": (
        -9.191738,
        -0.136625,
        1.302008,
        0.225897,
        -0.917943,
        -0.266889,
        -0.856239,
    ),
    "chain": (
        -12.987448,
        0.983729,
        1.033351,
        0.968316,
        -1.132400,
        -0.125111,
        -0.699639,
    ),
    # Churn backends: per-EVENT seconds of the dynamic maintainer's
    # suffix rematch (not one-shot solve time).  Fit on the shape grid
    # of ``benchmarks/bench_churn.py --calibrate``; consumed by
    # ``plan_churn`` to resolve ``AssignmentSession(churn_backend="auto")``.
    "dynamic-interp": (
        -13.630786,
        1.341735,
        0.841602,
        -0.467424,
        0.052014,
        0.416984,
        -0.014564,
    ),
    "dynamic-vec": (
        -9.573688,
        0.339949,
        0.427869,
        -0.032011,
        -0.329634,
        0.067722,
        0.012599,
    ),
}

#: Pessimistic fallback for configs without a calibrated row: a large
#: intercept keeps an uncalibrated config from outranking measured
#: ones while still producing a finite, explainable estimate.
DEFAULT_ROW: tuple[float, ...] = (0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0)

__all__ = ["CALIBRATION", "CALIBRATION_VERSION", "DEFAULT_ROW"]
