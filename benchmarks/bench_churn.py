"""Churn throughput: events/s of the three `apply(events)` paths.

Seeds a population, generates one deterministic Zipf-skewed
arrival/departure stream (``repro.data.generators.churn_stream``) and
drives it through

- ``interp`` — incremental :class:`DynamicStableMatching` with the
  interpreted suffix-rematch backend;
- ``vec`` — the same maintainer with the columnar kernel backend
  (``repro.kernels.dynamic``);
- ``naive`` — a from-scratch re-solve of the full surviving
  population after every event (the no-maintenance baseline).

Each path is timed separately over the identical stream; an untimed
lockstep pass then asserts the three emitted pair logs (handles,
float scores, units, order) are byte-equal after *every* event — the
throughput numbers are only comparable because the outputs are
identical.  Results land in the ``BENCH_engine.json`` perf trajectory
(row ``pr10_churn``; the vectorized/naive events-per-second ratio is
the headline).

``--calibrate`` instead measures per-event seconds for both
incremental backends over a shape grid and prints fitted
``dynamic-interp`` / ``dynamic-vec`` power-law rows for
``repro.planner.calibration`` (the ``plan_churn`` cost models).

Usage::

    PYTHONPATH=src python benchmarks/bench_churn.py
    PYTHONPATH=src python benchmarks/bench_churn.py --smoke
    PYTHONPATH=src python benchmarks/bench_churn.py --calibrate
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.api.events import (
    Event,
    FunctionArrived,
    FunctionDeparted,
    ObjectArrived,
    ObjectDeparted,
)
from repro.core.dynamic import DynamicStableMatching
from repro.data.generators import churn_stream, make_functions, make_objects
from repro.planner import fit_power_law, profile_instance

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def apply_event(dyn: DynamicStableMatching, event: Event) -> None:
    """One stream event against the maintainer, with the session's
    priority semantics (γ-scaled effective weights)."""
    if isinstance(event, ObjectArrived):
        dyn.add_object(event.point, capacity=event.capacity)
    elif isinstance(event, ObjectDeparted):
        dyn.remove_object(event.oid)
    elif isinstance(event, FunctionArrived):
        effective = tuple(x * event.priority for x in event.weights)
        dyn.add_function(effective, capacity=event.capacity)
    elif isinstance(event, FunctionDeparted):
        dyn.remove_function(event.fid)
    else:
        raise TypeError(f"unknown event type {type(event).__name__}")


def seeded(functions, objects, backend: str) -> DynamicStableMatching:
    return DynamicStableMatching.from_instance(functions, objects, backend=backend)


def fresh_resolve(source: DynamicStableMatching) -> DynamicStableMatching:
    """A from-scratch interpreted solve of ``source``'s population."""
    dyn = DynamicStableMatching()
    for fid in sorted(source._weights):
        dyn._register_function(fid, source._weights[fid], source._f_caps[fid])
    for oid in sorted(source._points):
        dyn._register_object(oid, source._points[oid], source._o_caps[oid])
    dyn._rematch_from(0)
    return dyn


def time_incremental(functions, objects, events, backend: str) -> float:
    dyn = seeded(functions, objects, backend)
    start = time.perf_counter()
    for event in events:
        apply_event(dyn, event)
    return time.perf_counter() - start


def time_naive(functions, objects, events) -> float:
    """Re-solve from scratch after every event (population tracking —
    the dict updates — is untimed-equivalent across paths)."""
    tracker = seeded(functions, objects, "interp")
    elapsed = 0.0
    for event in events:
        apply_event(tracker, event)
        start = time.perf_counter()
        fresh_resolve(tracker)
        elapsed += time.perf_counter() - start
    return elapsed


def verify_identity(functions, objects, events) -> dict:
    """Lockstep pass: after every event, interp == vec == from-scratch
    byte-for-byte.  Returns the vec path's cost counters."""
    interp = seeded(functions, objects, "interp")
    vec = seeded(functions, objects, "vec")
    assert interp._pairs == vec._pairs, "seed matchings diverge"
    for i, event in enumerate(events):
        apply_event(interp, event)
        apply_event(vec, event)
        if interp._pairs != vec._pairs:
            raise AssertionError(f"vec != interp after event {i}: {event}")
        if interp.suffix_rematch_count != vec.suffix_rematch_count:
            raise AssertionError(f"suffix cut diverges at event {i}: {event}")
        scratch = fresh_resolve(interp)
        if interp._pairs != scratch._pairs:
            raise AssertionError(f"incremental != from-scratch after event {i}")
    return vec.churn_info()


def run(args) -> dict:
    functions = make_functions(args.nf, args.dims, seed=2)
    objects = make_objects(args.no_, args.dims, args.distribution, seed=3)
    events = list(
        churn_stream(
            args.events,
            functions,
            objects,
            max_capacity=args.max_capacity,
            max_priority=args.max_priority,
            distribution=args.distribution,
            seed=4,
        )
    )
    info = verify_identity(functions, objects, events)
    interp_s = time_incremental(functions, objects, events, "interp")
    vec_s = time_incremental(functions, objects, events, "vec")
    naive_s = time_naive(functions, objects, events)
    n = len(events)
    return {
        "nf": args.nf,
        "no": args.no_,
        "dims": args.dims,
        "events": n,
        "distribution": args.distribution,
        "max_capacity": args.max_capacity,
        "max_priority": args.max_priority,
        "bit_identical": True,  # verify_identity raised otherwise
        "interp_events_per_s": n / interp_s,
        "vec_events_per_s": n / vec_s,
        "naive_events_per_s": n / naive_s,
        "vec_over_naive": naive_s / vec_s,
        "vec_over_interp": interp_s / vec_s,
        "pairs_rematched": info["pairs_rematched"],
        "full_rematches": info["full_rematches"],
        "kernel_score_cells": info["kernel_score_cells"],
        "kernel_tie_resolutions": info["kernel_tie_resolutions"],
        "python": platform.python_version(),
    }


#: Calibration grid: (nf, no, dims) shapes straddling the crossover
#: between the interpreted and columnar backends.
CALIBRATION_GRID = [
    (5, 40, 2),
    (5, 40, 4),
    (10, 100, 3),
    (20, 150, 2),
    (20, 400, 4),
    (40, 300, 3),
    (60, 600, 2),
    (60, 600, 4),
    (100, 1000, 3),
    (150, 1500, 3),
]


def calibrate(events_per_cell: int) -> None:
    samples: dict[str, list] = {"dynamic-interp": [], "dynamic-vec": []}
    for nf, no, dims in CALIBRATION_GRID:
        functions = make_functions(nf, dims, seed=2)
        objects = make_objects(no, dims, "anti-correlated", seed=3)
        profile = profile_instance(functions, objects)
        events = list(churn_stream(events_per_cell, functions, objects, seed=4))
        for key, backend in (("dynamic-interp", "interp"), ("dynamic-vec", "vec")):
            elapsed = time_incremental(functions, objects, events, backend)
            per_event = elapsed / len(events)
            samples[key].append((profile, per_event))
            print(f"{nf}x{no} d={dims} {backend}: {per_event * 1e6:.1f} us/event")
    for key, rows in samples.items():
        coeffs = fit_power_law(rows)
        body = ",\n        ".join(f"{c:.6f}" for c in coeffs)
        print(f'    "{key}": (\n        {body},\n    ),')


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default=None, help="BENCH_engine.json row name")
    parser.add_argument("--nf", type=int, default=100)
    parser.add_argument("--no", type=int, dest="no_", default=1000)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--max-capacity", type=int, default=2)
    parser.add_argument("--max-priority", type=int, default=2)
    parser.add_argument("--distribution", default="anti-correlated")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI shape; labeled pr10_churn_smoke, result not persisted",
    )
    parser.add_argument(
        "--calibrate", action="store_true",
        help="fit dynamic-interp/dynamic-vec planner cost rows instead",
    )
    args = parser.parse_args()

    if args.calibrate:
        calibrate(max(20, args.events // 4))
        return

    if args.smoke:
        args.nf, args.no_, args.events = 20, 150, 40
    label = args.label or ("pr10_churn_smoke" if args.smoke else "pr10_churn")
    row = run(args)

    if not args.smoke:
        results = {}
        if RESULT_PATH.exists():
            results = json.loads(RESULT_PATH.read_text())
        results[label] = row
        RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        f"{label} {row['nf']}x{row['no']} d={row['dims']} "
        f"({row['events']} events, bit-identical): "
        f"interp {row['interp_events_per_s']:.1f} ev/s, "
        f"vec {row['vec_events_per_s']:.1f} ev/s, "
        f"naive {row['naive_events_per_s']:.1f} ev/s "
        f"-> vec/naive {row['vec_over_naive']:.1f}x, "
        f"vec/interp {row['vec_over_interp']:.1f}x"
    )


if __name__ == "__main__":
    main()
