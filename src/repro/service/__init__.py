"""Batched solve service — many assignment workloads, one harness.

The first serving layer on the road to the ROADMAP's heavy-traffic
story: :class:`~repro.service.batch.BatchSolver` accepts many
(FunctionSet, ObjectSet) jobs, reuses built object R-trees across
jobs through an instance-hash cache, runs the jobs on a worker pool
and returns per-job :class:`~repro.core.types.AssignmentResult`\\ s.
"""

from repro.service.batch import (
    BatchSolver,
    JobResult,
    ObjectIndexCache,
    SolveJob,
    object_set_fingerprint,
)

__all__ = [
    "BatchSolver",
    "JobResult",
    "ObjectIndexCache",
    "SolveJob",
    "object_set_fingerprint",
]
