"""Process-pool execution backend: per-worker object-index replicas.

The thread backend (:class:`~repro.service.batch.BatchSolver`'s
default) serializes same-catalogue jobs twice over: jobs sharing one
cached :class:`~repro.core.index.ObjectIndex` queue on that entry's
``run_lock`` (the R-tree's LRU buffer and I/O counters are mutable,
measured state), and pure-python engine runs are GIL-bound anyway.
For the many-cohorts-over-one-catalogue shape that real deployments
of this workload class take, that collapses a whole worker pool into
a queue of length one.

:class:`ProcessPoolSolver` removes both limits.  Jobs cross the
process boundary as the canonical JSON-compatible instance payload
(the same ``objects`` / ``functions`` / ``solver`` / ``index``
sections :meth:`repro.api.problem.Problem.to_dict` serves over the
wire), each worker process rebuilds the instance and keeps a private
:class:`~repro.service.batch.ObjectIndexCache` replica — so W workers
hold W independent R-trees for a shared catalogue and run W engine
loops truly in parallel, with no cross-worker ``run_lock`` at all.
Within a worker, runs are sequential, so per-run I/O counters stay
exact; the whole :class:`~repro.core.types.RunStats` ships back with
the matching, making process-backend results bit-identical to the
thread backend (the engine is deterministic and float arithmetic does
not change across local processes).

The trade-offs, stated plainly: a shared catalogue is built once
*per worker* instead of once per host (the index build is the cheap,
unmeasured part, and it amortizes across every subsequent job on that
worker), and each job pays one pickle round trip.  Single-solve wall
time is therefore unchanged on the thread backend and slightly
IPC-taxed on the process backend — the win is fresh-solve
*throughput* on multi-core hosts.

Workers start via the ``spawn`` context by default: ``fork`` from a
multi-threaded parent (the serving layer always is one) is unsafe and
deprecated on Python 3.12+.  ``spawn`` re-imports the package in the
child, which multiprocessing seeds with the parent's ``sys.path``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core import solve
from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet, ObjectSet
from repro.obs.log import get_logger
from repro.obs.trace import (
    SpanCollector,
    TraceContext,
    attach_engine_spans,
    collecting,
    current_context,
    span,
)
from repro.service.batch import (
    JobResult,
    ObjectIndexCache,
    ResolvedJob,
    SolveJob,
    object_set_fingerprint,
)

log = get_logger("repro.service")

EXECUTORS = ("thread", "process")


def check_executor(executor: str) -> str:
    """Validate an executor selector (shared by every layer above)."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    return executor


# ---------------------------------------------------------------------------
# canonical job payload (what actually crosses the process boundary)


def require_named_method(job: SolveJob) -> None:
    """Process-backend jobs must use a named (string) method.

    Custom :class:`~repro.engine.engine.EngineConfig` methods carry
    strategy closures that have no canonical form — they stay on the
    thread backend.
    """
    if not isinstance(job.method, str):
        raise ValueError(
            "the process executor ships jobs via the canonical problem "
            f"serde; a custom EngineConfig ({job.method_name!r}) cannot "
            "cross the process boundary — use executor='thread' for "
            "custom engine configs"
        )


def job_to_payload(job: SolveJob, resolved: ResolvedJob | None = None) -> dict:
    """The job as the canonical JSON-compatible instance payload.

    Mirrors the ``objects`` / ``functions`` / ``solver`` / ``index``
    sections of :meth:`repro.api.problem.Problem.to_dict`, so the same
    schema that crosses the HTTP boundary crosses the process boundary.

    ``method="auto"`` jobs are planner-resolved *parent-side* (once,
    see :meth:`SolveJob.resolve`) — the wire carries the concrete
    method, so a worker executes exactly what a direct invocation of
    the chosen config would, and workers need no planner at all.
    """
    require_named_method(job)
    if resolved is None:
        resolved = job.resolve()
    objects, functions = job.objects, job.functions
    payload = {
        "objects": {
            "points": [list(p) for p in objects.points],
            "capacities": (
                list(objects.capacities)
                if objects.capacities is not None
                else None
            ),
        },
        "functions": {
            "weights": [list(w) for w in functions.weights],
            "priorities": (
                list(functions.gammas) if functions.gammas is not None else None
            ),
            "capacities": (
                list(functions.capacities)
                if functions.capacities is not None
                else None
            ),
        },
        "solver": {
            "method": resolved.method,
            "options": dict(resolved.solve_kwargs),
        },
        "index": {
            "page_size": job.page_size,
            "memory": job.wants_memory_index,
            "buffer_fraction": job.buffer_fraction,
        },
    }
    # The active trace context (ids only) crosses with the job, so
    # worker-side log records correlate with the parent's trace.
    context = current_context()
    if context is not None:
        payload["trace"] = {
            "trace_id": context.trace_id,
            "span_id": context.span_id,
        }
    return payload


# ---------------------------------------------------------------------------
# worker side — everything below the line runs inside a worker process

_WORKER_CACHE: ObjectIndexCache | None = None


def _init_worker(index_cache_size: int) -> None:
    """Pool initializer: give this worker its private index replica."""
    global _WORKER_CACHE
    _WORKER_CACHE = ObjectIndexCache(max_entries=index_cache_size)


def solve_payload(payload: dict) -> tuple[AssignmentResult, bool]:
    """Worker-side entry: rebuild the instance, solve on the replica.

    Returns ``(result, index_was_cached)``.  The rebuilt
    :class:`ObjectSet` re-fingerprints per job (the memoized digest
    lives on the parent's instance), which is cheap next to any engine
    run; the replica cache then reuses the built R-tree exactly as the
    thread backend's shared cache does.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:  # direct call outside a pool (tests)
        _WORKER_CACHE = ObjectIndexCache()
    trace_section = payload.get("trace")
    if trace_section is not None:
        # Adopt the parent's trace ids so worker-side log records
        # correlate; worker spans stay local (the result's RunStats
        # phases carry the timings back instead).
        with collecting(
            SpanCollector(),
            parent=TraceContext(
                trace_section["trace_id"], trace_section["span_id"]
            ),
        ):
            return _solve_payload_inner(payload)
    return _solve_payload_inner(payload)


def _solve_payload_inner(payload: dict) -> tuple[AssignmentResult, bool]:
    objects_section = payload["objects"]
    functions_section = payload["functions"]
    index_section = payload["index"]
    objects = ObjectSet(
        [tuple(p) for p in objects_section["points"]],
        capacities=objects_section["capacities"],
    )
    functions = FunctionSet(
        [tuple(w) for w in functions_section["weights"]],
        gammas=functions_section["priorities"],
        capacities=functions_section["capacities"],
    )
    index, run_lock, hit = _WORKER_CACHE.get(
        objects, index_section["page_size"], index_section["memory"]
    )
    with run_lock:  # workers are single-threaded; kept for invariance
        index.reset_for_run(buffer_fraction=index_section["buffer_fraction"])
        result = solve(
            functions,
            index,
            method=payload["solver"]["method"],
            **payload["solver"]["options"],
        )
    return result, hit


# ---------------------------------------------------------------------------
# parent side


@dataclass
class _JobHandle:
    """One dispatched job: the executor future plus its bookkeeping."""

    position: int
    job: SolveJob
    resolved: ResolvedJob
    started: float
    future: Future


class ProcessPoolSolver:
    """Solves :class:`SolveJob`\\ s on a persistent process pool.

    Mirrors the :class:`~repro.service.batch.BatchSolver` result shape
    (:class:`JobResult`), so the batch layer can route jobs to either
    backend transparently.  The pool (and each worker's index replica)
    persists across calls; :meth:`close` releases it.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        index_cache_size: int = 32,
        mp_context: str = "spawn",
    ):
        # Validate eagerly: ``max_workers or cpu_count()`` would turn a
        # falsy 0 into a full-CPU pool, where the thread backend raises.
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1 (or None), got {max_workers}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.index_cache_size = index_cache_size
        self.mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._guard = threading.Lock()
        self._in_flight = 0
        #: High-water mark of jobs simultaneously dispatched to workers.
        self.peak_concurrency = 0
        #: Times a broken pool (dead worker) was discarded and rebuilt.
        self.pool_restarts = 0
        #: Aggregated per-worker replica counters: a shared catalogue
        #: counts one miss (= one build) per worker that touches it.
        self.hits = 0
        self.misses = 0
        # LRU-bounded like each worker's replica: the parent must not
        # grow without bound on a long-lived server fed ever-new
        # catalogues (the replicas themselves evict past this size).
        self._catalogues_seen: OrderedDict[tuple, None] = OrderedDict()

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._guard:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context(self.mp_context),
                    initializer=_init_worker,
                    initargs=(self.index_cache_size,),
                )
            return self._executor

    def close(self) -> None:
        with self._guard:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def _discard_broken(self, executor: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next submit builds a fresh one.

        A worker killed mid-solve (OOM, segfault) marks the whole
        ``ProcessPoolExecutor`` broken; without this, every later job
        on a long-running server would fail until restart.  The job
        that hit the breakage still fails (its result is gone) — only
        the *backend* recovers.
        """
        with self._guard:
            if self._executor is executor:
                self._executor = None
                self.pool_restarts += 1
            restarts = self.pool_restarts
        log.warning(
            "process pool broke (worker died); discarding it — the next "
            "solve starts a fresh pool",
            restarts=restarts,
        )
        executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ProcessPoolSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- solving -------------------------------------------------------

    def _on_job_done(self, future: Future) -> None:
        # Done-callback, not collect-side bookkeeping: a caller that
        # aborts mid-batch (one job's worker raised) never collects the
        # remaining handles, and a collect-side decrement would leak
        # ``_in_flight`` — inflating ``peak_concurrency`` forever.
        with self._guard:
            self._in_flight -= 1
        if future.cancelled():
            return
        if isinstance(future.exception(), BrokenProcessPool):
            with self._guard:
                executor = self._executor
            if executor is not None and getattr(executor, "_broken", False):
                self._discard_broken(executor)

    def submit_job(self, position: int, job: SolveJob) -> _JobHandle:
        """Dispatch one job; pair with :meth:`collect`."""
        started = time.perf_counter()
        require_named_method(job)  # raises before planning or pooling
        resolved = job.resolve()  # plans "auto" once, parent-side
        payload = job_to_payload(job, resolved)
        key = (
            object_set_fingerprint(job.objects),
            job.page_size,
            job.wants_memory_index,
        )
        executor = self._ensure_executor()
        try:
            future = executor.submit(solve_payload, payload)
        except BrokenProcessPool:
            self._discard_broken(executor)
            # One transparent retry on a fresh pool: the breakage
            # happened before this job was dispatched, so nothing about
            # it is lost or ambiguous.
            future = self._ensure_executor().submit(solve_payload, payload)
        with self._guard:
            self._catalogues_seen[key] = None
            self._catalogues_seen.move_to_end(key)
            while len(self._catalogues_seen) > self.index_cache_size:
                self._catalogues_seen.popitem(last=False)
            self._in_flight += 1
            # "Executing" concurrency, matching the thread backend's
            # semantics: jobs queued behind busy workers don't count.
            self.peak_concurrency = max(
                self.peak_concurrency, min(self._in_flight, self.max_workers)
            )
        future.add_done_callback(self._on_job_done)
        return _JobHandle(position, job, resolved, started, future)

    def collect(self, handle: _JobHandle) -> JobResult:
        """Await one dispatched job and fold its counters back in.

        The worker's spans stay in its process; the parent re-emits an
        ``engine.solve`` span from the returned :class:`RunStats` (its
        duration includes queue wait — phase children are exact)."""
        with span(
            "engine.solve",
            method=handle.resolved.method_name,
            executor="process",
        ) as solve_span:
            result, hit = handle.future.result()
            solve_span.attributes["index_cache_hit"] = hit
            attach_engine_spans(solve_span, result.stats)
        with self._guard:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        job = handle.job
        return JobResult(
            job_id=(
                job.job_id
                if job.job_id is not None
                else f"job-{handle.position}"
            ),
            method=handle.resolved.method_name,
            result=result,
            index_cache_hit=hit,
            wall_seconds=time.perf_counter() - handle.started,
            plan=handle.resolved.plan,
        )

    def solve_one(self, job: SolveJob, position: int = 0) -> JobResult:
        return self.collect(self.submit_job(position, job))

    def solve_many(self, jobs: list[SolveJob]) -> list[JobResult]:
        """Solve all jobs; results are returned in submission order."""
        # Fail fast before dispatching anything: an invalid job in the
        # middle of the batch must not orphan already-submitted work.
        for job in jobs:
            require_named_method(job)
        handles = [self.submit_job(i, job) for i, job in enumerate(jobs)]
        return [self.collect(handle) for handle in handles]

    # -- observability -------------------------------------------------

    def info(self) -> dict[str, int]:
        """Replica-cache counters in the shared ``cache_info`` shape.

        ``misses`` counts index *builds across all workers* (a shared
        catalogue builds once per worker it lands on); ``entries`` is
        the number of recently dispatched distinct catalogues,
        LRU-bounded by ``index_cache_size`` like each replica.
        """
        with self._guard:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._catalogues_seen),
                "workers": self.max_workers,
                "pool_restarts": self.pool_restarts,
            }


__all__ = [
    "EXECUTORS",
    "ProcessPoolSolver",
    "check_executor",
    "job_to_payload",
    "require_named_method",
    "solve_payload",
]
