"""Result types shared by all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.stats import IOStats


@dataclass(frozen=True)
class AssignedPair:
    """One stable (function, object) pair.

    ``count`` > 1 aggregates the capacitated case: it is the number of
    units matched between the two (Section 6.1's repeated Line 15–17
    decrements, batched into one pair).
    """

    fid: int
    oid: int
    score: float
    count: int = 1


@dataclass
class Matching:
    """A stable assignment: the ordered list of emitted pairs.

    ``object_of`` / ``function_of`` lookups go through lazily built
    per-side index maps instead of scanning ``pairs``; the maps are
    extended incrementally as pairs are appended (via :meth:`add` or
    directly on ``pairs``) and rebuilt from scratch when ``pairs``
    shrinks or its first/last element is replaced.  The one mutation
    the heuristic cannot see is an in-place replacement of a *middle*
    element with both ends left intact — call :meth:`invalidate_index`
    after such surgery (every solver in this package only appends).
    """

    pairs: list[AssignedPair] = field(default_factory=list)
    _by_fid: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _by_oid: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _indexed: int = field(default=0, init=False, repr=False, compare=False)
    _first_indexed_pair: AssignedPair | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _last_indexed_pair: AssignedPair | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.pairs)

    def add(self, fid: int, oid: int, score: float, count: int = 1) -> None:
        self.pairs.append(AssignedPair(fid, oid, score, count))

    def invalidate_index(self) -> None:
        """Force a rebuild of the lookup maps on next access (needed
        only after replacing a middle element of ``pairs`` in place)."""
        self._by_fid.clear()
        self._by_oid.clear()
        self._indexed = 0
        self._first_indexed_pair = None
        self._last_indexed_pair = None

    def _refresh_index(self) -> None:
        stale = self._indexed > len(self.pairs) or (
            self._indexed > 0
            and (
                self.pairs[self._indexed - 1] is not self._last_indexed_pair
                or self.pairs[0] is not self._first_indexed_pair
            )
        )
        if stale:
            self.invalidate_index()
        for p in self.pairs[self._indexed :]:
            self._by_fid.setdefault(p.fid, []).append((p.oid, p.count))
            self._by_oid.setdefault(p.oid, []).append((p.fid, p.count))
        self._indexed = len(self.pairs)
        self._first_indexed_pair = self.pairs[0] if self.pairs else None
        self._last_indexed_pair = self.pairs[-1] if self.pairs else None

    def as_dict(self) -> dict[tuple[int, int], int]:
        """``{(fid, oid): units}`` — order-independent comparison form."""
        out: dict[tuple[int, int], int] = {}
        for p in self.pairs:
            out[(p.fid, p.oid)] = out.get((p.fid, p.oid), 0) + p.count
        return out

    @property
    def num_units(self) -> int:
        return sum(p.count for p in self.pairs)

    def total_score(self) -> float:
        return sum(p.score * p.count for p in self.pairs)

    def object_of(self, fid: int) -> list[tuple[int, int]]:
        """``(oid, units)`` partners of a function (O(1) map lookup)."""
        self._refresh_index()
        return list(self._by_fid.get(fid, ()))

    def function_of(self, oid: int) -> list[tuple[int, int]]:
        """``(fid, units)`` partners of an object (O(1) map lookup)."""
        self._refresh_index()
        return list(self._by_oid.get(oid, ()))


@dataclass
class RunStats:
    """The paper's three metrics plus algorithm-specific work counters."""

    io: IOStats = field(default_factory=IOStats)
    cpu_seconds: float = 0.0
    peak_memory_bytes: int = 0
    loops: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds per engine round-loop phase (skyline_initial,
    #: search, commit, skyline_repair).  Timing data, so excluded from
    #: equality: bit-identity checks compare results across executors,
    #: and wall clocks never agree.
    phases: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def io_accesses(self) -> int:
        """The paper's "I/O accesses": physical page reads."""
        return self.io.physical_reads


@dataclass
class AssignmentResult:
    """A matching together with the cost of computing it."""

    matching: Matching
    stats: RunStats

    def __iter__(self):
        # Allows ``matching, stats = solve(...)`` unpacking.
        yield self.matching
        yield self.stats
