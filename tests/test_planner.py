"""Unit coverage of :mod:`repro.planner`: registry, profiler, cost
models, plans, and the Problem-level auto surface."""

import math

import pytest

from repro.api import Problem
from repro.core import SOLVER_OPTIONS, SOLVERS
from repro.data.instances import FunctionSet, ObjectSet
from repro.errors import InvalidSolverOptionError, UnknownSolverError
from repro.planner import (
    AUTO_METHOD,
    REGISTRY,
    CostModel,
    InstanceProfile,
    Plan,
    cost_model_for,
    explicit_plan,
    fit_power_law,
    plan_instance,
    profile_instance,
)
from repro.planner.calibration import CALIBRATION

from .conftest import random_instance

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_legacy_tables_are_registry_views(self):
        assert set(SOLVERS) == set(REGISTRY.names())
        assert SOLVER_OPTIONS == REGISTRY.option_schema()

    def test_plannable_excludes_special_storage_models(self):
        plannable = {s.name for s in REGISTRY.plannable()}
        assert plannable == {
            "sb", "sb-update", "sb-deltasky", "sb-two-skylines", "chain",
            "sb-vec", "sb-deltasky-vec",
        }
        assert "sb-alt" not in plannable  # memory-resident object tree
        assert "brute-force" not in plannable  # quadratic baseline

    def test_every_plannable_config_is_calibrated(self):
        for spec in REGISTRY.plannable():
            assert spec.cost_key in CALIBRATION, spec.name

    def test_calibration_table_round_trips_through_the_fitter(self):
        """The ``--calibrate`` printer emits a table covering every
        plannable spec that parses back into the checked-in shape."""
        import contextlib
        import io
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        try:
            from bench_planner import print_calibration
        finally:
            sys.path.pop(0)

        fs, os_ = random_instance(6, 40, 3, seed=77)
        profile = profile_instance(fs, os_)
        # Synthetic measured rows: enough shape variation for the fit.
        rows = []
        shapes = [
            (10, 100), (10, 1000), (30, 300), (30, 3000),
            (100, 1000), (100, 10000), (300, 3000), (300, 30000),
        ]
        for i, (nf, no) in enumerate(shapes):
            fake = InstanceProfile.from_dict(
                {**profile.to_dict(), "num_functions": nf, "num_objects": no}
            )
            rows.append({
                "profile": fake.to_dict(),
                "timings": {
                    s.name: 1e-4 * nf * no * (1 + 0.1 * j)
                    for j, s in enumerate(REGISTRY.plannable())
                },
            })
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            print_calibration(rows)
        printed = buf.getvalue()
        # The printed table must execute and cover every plannable spec
        # with full-width coefficient rows (the calibration.py shape).
        namespace: dict = {}
        exec(printed.split("# Paste into")[1].split(":\n", 1)[1], namespace)
        table = namespace["CALIBRATION"]
        assert isinstance(namespace["CALIBRATION_VERSION"], str)
        for spec in REGISTRY.plannable():
            assert spec.cost_key in table, spec.name
            assert len(table[spec.cost_key]) == len(CALIBRATION["sb"])

    def test_auto_picks_a_vectorized_config_on_a_grid_shape(self):
        """The recalibrated table must route at least the default
        Table 2 cell (anti-correlated 100x2000, dims=4) to a columnar
        config — the point of registering the kernels as plannable."""
        from repro.bench.harness import make_instance

        fs, os_ = make_instance(100, 2000, 4, "anti-correlated", seed=17)
        plan = plan_instance(fs, os_)
        assert plan.method in {"sb-vec", "sb-deltasky-vec"}

    def test_unknown_method_lists_auto(self):
        with pytest.raises(UnknownSolverError) as exc:
            REGISTRY.get("nope")
        assert "auto" in exc.value.known

    def test_auto_accepts_no_options(self):
        REGISTRY.validate(AUTO_METHOD, None)
        REGISTRY.validate(AUTO_METHOD, {})
        with pytest.raises(InvalidSolverOptionError):
            REGISTRY.validate(AUTO_METHOD, {"omega_fraction": 0.1})

    def test_validate_matches_legacy_semantics(self):
        REGISTRY.validate("sb", {"omega_fraction": 0.1})
        with pytest.raises(UnknownSolverError):
            REGISTRY.validate("nope", None)
        with pytest.raises(InvalidSolverOptionError):
            REGISTRY.validate("chain", {"omega_fraction": 0.1})

    def test_engine_config_factories(self):
        for spec in REGISTRY:
            if spec.engine_backed:
                config = spec.engine_config()
                assert config.name == spec.name
        with pytest.raises(UnknownSolverError):
            REGISTRY.get("brute-force").engine_config()

    def test_spec_solve_entry_points_run(self):
        from repro.core import build_object_index

        fs, os_ = random_instance(4, 8, 2, seed=1)
        reference = None
        for spec in REGISTRY:
            index = build_object_index(
                os_, page_size=512, memory=(spec.name == "sb-alt")
            )
            result = spec.solve(fs, index)
            pairs = result.matching.as_dict()
            if reference is None:
                reference = pairs
            assert pairs == reference, spec.name


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_profile_is_deterministic(self):
        fs, os_ = random_instance(20, 50, 3, seed=2, capacities=True)
        assert profile_instance(fs, os_) == profile_instance(fs, os_)

    def test_basic_shape_fields(self):
        fs, os_ = random_instance(5, 12, 3, seed=3)
        p = profile_instance(fs, os_)
        assert (p.num_functions, p.num_objects, p.dims) == (5, 12, 3)
        assert p.function_capacity_total == 5
        assert p.object_capacity_total == 12
        assert p.capacity_ratio == pytest.approx(12 / 5)
        assert not p.has_priorities

    def test_priorities_and_capacities_flow_through(self):
        fs, os_ = random_instance(6, 9, 3, seed=4, capacities=True, priorities=True)
        p = profile_instance(fs, os_)
        assert p.has_priorities
        assert p.max_priority == max(fs.gammas)
        assert p.function_capacity_total == sum(fs.capacities)
        assert p.object_capacity_total == sum(os_.capacities)

    def test_correlation_sign_tracks_distribution(self):
        from repro.data.generators import make_objects

        anti = make_objects(300, 3, "anti-correlated", seed=5)
        corr = make_objects(300, 3, "correlated", seed=5)
        fs, _ = random_instance(4, 1, 3, seed=5)
        assert profile_instance(fs, anti).object_correlation < -0.1
        assert profile_instance(fs, corr).object_correlation > 0.1

    def test_sampling_is_bounded(self):
        from repro.planner.profile import SAMPLE_LIMIT

        fs, os_ = random_instance(5, 4 * SAMPLE_LIMIT, 2, seed=6)
        p = profile_instance(fs, os_)
        assert p.sampled_objects == SAMPLE_LIMIT
        assert p.sampled_functions == 5

    def test_profile_serde_round_trip(self):
        fs, os_ = random_instance(7, 11, 4, seed=7, priorities=True)
        p = profile_instance(fs, os_)
        assert InstanceProfile.from_dict(p.to_dict()) == p

    def test_degenerate_instances_profile_cleanly(self):
        fs = FunctionSet([(0.5, 0.5)])
        os_ = ObjectSet([(0.3, 0.3)])
        p = profile_instance(fs, os_)
        assert p.object_correlation == 0.0  # too few rows to correlate
        # Identical coordinates: zero-variance columns contribute 0.
        os_flat = ObjectSet([(0.5, 0.5)] * 10)
        assert profile_instance(fs, os_flat).object_correlation == 0.0


# ---------------------------------------------------------------------------
# Cost models
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_estimates_are_positive_and_monotone_in_size(self):
        fs_small, os_small = random_instance(5, 50, 3, seed=8)
        fs_big, os_big = random_instance(50, 2000, 3, seed=8)
        for spec in REGISTRY.plannable():
            model = cost_model_for(spec.cost_key)
            small = model.estimate_seconds(profile_instance(fs_small, os_small))
            big = model.estimate_seconds(profile_instance(fs_big, os_big))
            assert small > 0
            assert big > small, spec.name

    def test_uncalibrated_config_falls_back_pessimistically(self):
        fs, os_ = random_instance(20, 200, 3, seed=9)
        profile = profile_instance(fs, os_)
        fallback = cost_model_for("not-in-the-table")
        calibrated = [
            cost_model_for(s.cost_key).estimate_seconds(profile)
            for s in REGISTRY.plannable()
        ]
        assert fallback.estimate_seconds(profile) > max(calibrated)

    def test_fit_power_law_recovers_synthetic_law(self):
        # t = 1e-6 * |F|^1.0 * |O|^0.5 exactly; the fit must recover
        # the generating exponents to fitting precision.
        samples = []
        for nf in (10, 30, 100, 300):
            for no in (100, 1000, 10000):
                fs, os_ = random_instance(2, 3, 2, seed=nf + no)
                profile = profile_instance(fs, os_)
                profile = InstanceProfile.from_dict(
                    {**profile.to_dict(), "num_functions": nf, "num_objects": no}
                )
                t = 1e-6 * (nf + 1) ** 1.0 * (no + 1) ** 0.5
                samples.append((profile, t))
        coeffs = fit_power_law(samples, ridge=1e-9)
        assert coeffs[1] == pytest.approx(1.0, abs=0.05)
        assert coeffs[2] == pytest.approx(0.5, abs=0.05)

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_power_law([])

    def test_estimate_from_features_matches_profile_path(self):
        from repro.planner import features

        fs, os_ = random_instance(9, 40, 3, seed=10)
        profile = profile_instance(fs, os_)
        model = CostModel("sb", CALIBRATION["sb"])
        assert model.estimate_seconds(profile) == model.estimate_from_features(
            features(profile)
        )


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class TestPlan:
    def test_plan_is_deterministic(self):
        fs, os_ = random_instance(15, 60, 3, seed=11)
        a, b = plan_instance(fs, os_), plan_instance(fs, os_)
        assert a.method == b.method
        assert a.candidates == b.candidates

    def test_plan_covers_every_plannable_config(self):
        fs, os_ = random_instance(10, 30, 3, seed=12)
        plan = plan_instance(fs, os_)
        assert plan.auto
        assert {c.method for c in plan.candidates} == {
            s.name for s in REGISTRY.plannable()
        }
        # Cheapest first, and the pick is the head of the ranking.
        estimates = [c.estimated_seconds for c in plan.candidates]
        assert estimates == sorted(estimates)
        assert plan.method == plan.candidates[0].method
        assert plan.estimated_seconds == plan.candidates[0].estimated_seconds

    def test_explicit_plan_is_trivial(self):
        plan = explicit_plan("chain", {"disk_function_tree": True})
        assert not plan.auto
        assert plan.method == "chain"
        assert plan.candidates == ()
        assert plan.profile is None
        assert "explicitly" in plan.explain()

    def test_plan_serde_round_trip(self):
        fs, os_ = random_instance(8, 25, 3, seed=13, priorities=True)
        plan = plan_instance(fs, os_)
        restored = Plan.from_dict(plan.to_dict())
        assert restored == plan

    def test_plan_explain_mentions_decision(self):
        fs, os_ = random_instance(8, 25, 3, seed=14)
        plan = plan_instance(fs, os_)
        text = plan.explain(actual_seconds=0.5)
        assert "method='auto'" in text
        assert plan.method in text
        assert "actual" in text
        for candidate in plan.candidates:
            assert candidate.method in text

    def test_plan_is_picklable(self):
        import pickle

        fs, os_ = random_instance(8, 25, 3, seed=15)
        plan = plan_instance(fs, os_)
        assert pickle.loads(pickle.dumps(plan)) == plan


# ---------------------------------------------------------------------------
# Problem-level auto surface
# ---------------------------------------------------------------------------


class TestProblemAuto:
    def _problem(self, method="auto", seed=16):
        fs, os_ = random_instance(6, 20, 3, seed=seed)
        return Problem.from_sets(os_, fs, method=method)

    def test_auto_validates_and_rejects_options(self):
        assert self._problem().method == "auto"
        with pytest.raises(InvalidSolverOptionError):
            fs, os_ = random_instance(3, 5, 2, seed=17)
            Problem.from_sets(os_, fs, method="auto", options={"multi_pair": True})

    def test_resolved_method_and_plan_memo(self):
        problem = self._problem()
        plan = problem.plan()
        assert problem.plan() is plan  # memoized
        assert problem.resolved_method == plan.method
        assert problem.resolved_method != "auto"
        assert plan.method in {s.name for s in REGISTRY.plannable()}

    def test_solve_key_shared_with_explicit_pick(self):
        problem = self._problem()
        explicit = problem.with_method(problem.resolved_method)
        assert problem.solve_key() == explicit.solve_key()

    def test_explicit_problem_plan_is_trivial(self):
        problem = self._problem(method="sb")
        assert problem.resolved_method == "sb"
        assert not problem.plan().auto
        assert "explicitly" in problem.explain()

    def test_auto_estimates_are_finite_on_tiny_instances(self):
        # Out-of-grid extrapolation must stay sane (the ridge fit's
        # job): tiny instances get small positive finite estimates.
        problem = self._problem(seed=18)
        for candidate in problem.plan().candidates:
            assert math.isfinite(candidate.estimated_seconds)
            assert candidate.estimated_seconds > 0
