"""UpdateSkyline — the paper's I/O-optimal skyline maintenance (Alg. 2).

During the initial BBS run every pruned entry (point or node MBR) is
stored in the plist of exactly one skyline point that dominates it.
When skyline members are removed (because they were assigned), their
plist entries are either re-homed to another dominating skyline member
or — if exclusively dominated by the removed points — pushed into the
candidate set ``Scand`` and processed by resuming BBS.

Theorem 1 of the paper: a node page is expanded at most once over the
*entire* assignment run, because once expanded it is neither in any
plist nor in the heap again.  Tests assert this read-once property.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.rtree.geometry import Point
from repro.rtree.tree import RTree
from repro.skyline.bbs import BBSEngine, Entry, entry_corner
from repro.storage.stats import MemoryTracker


class UpdateSkylineManager:
    """Maintains the skyline of a (logically shrinking) object set.

    Usage::

        mgr = UpdateSkylineManager(tree)
        sky = mgr.compute_initial()        # BBS with plist tracking
        mgr.remove([oid, ...])             # assigned objects leave O
        sky = mgr.skyline                  # maintained incrementally
    """

    def __init__(self, tree: RTree, mem: MemoryTracker | None = None):
        self._engine = BBSEngine(tree, track_plists=True, mem=mem)
        self._computed = False

    @property
    def skyline(self) -> dict[int, Point]:
        return self._engine.skyline

    @property
    def plists(self) -> dict[int, list[Entry]]:
        return self._engine.plists

    def compute_initial(self) -> dict[int, Point]:
        if self._computed:
            raise RuntimeError("initial skyline already computed")
        self._computed = True
        self._engine.run(self._engine.seed_from_root())
        return self._engine.skyline

    def remove(self, oids: Iterable[int]) -> dict[int, Point]:
        """Remove skyline members (Algorithm 2, generalized to the
        multi-removal case of Section 5.3) and repair the skyline."""
        if not self._computed:
            raise RuntimeError("call compute_initial() first")
        oids = list(oids)
        for oid in oids:
            if oid not in self._engine.skyline:
                raise KeyError(f"object {oid} is not a current skyline member")

        orphaned: list[Entry] = []
        for oid in oids:
            orphaned.extend(self._engine.detach(oid))

        # Re-home entries still dominated by a surviving skyline member;
        # the rest are exclusively dominated by the removed points.
        scand: list[Entry] = []
        for entry in orphaned:
            dominator = self._engine.dom.find_dominator(entry_corner(entry))
            if dominator is not None:
                self._engine.append_plist(dominator, entry)
            else:
                scand.append(entry)

        self._engine.run(self._engine.make_heap(scand))
        return self._engine.skyline
