"""Chain stable assignment — adaptation of Wong et al. [25] (Section 7).

As in the paper's experimental setup: the functions are indexed by a
*main-memory* R-tree built on their (effective) weights, and the
nearest-neighbor module of the original spatial Chain is replaced by
top-1 search (BRS) in the corresponding R-tree — objects answer "best
function" queries through the function tree, functions answer "best
object" queries through the object tree.

Chain repeatedly takes an item ``x`` (from its queue, else the lowest
alive function id), finds its top-1 partner ``y``, and checks whether
``x`` is also ``y``'s top-1; if so ``(x, y)`` is stable (Property 1),
otherwise ``y`` is enqueued and the chase continues.  Every top-1
query starts from scratch — Chain cannot resume searches, which is
precisely why the paper measures it as the most expensive method.

Since the engine refactor the chase lives in
:class:`repro.engine.rounds.ChainRound` (one chase step per engine
round, sharing the engine's commit/instrumentation machinery); this
module is the thin ``chain`` strategy configuration.
"""

from __future__ import annotations

from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet
from repro.engine.configs import chain_config
from repro.engine.engine import AssignmentEngine


def chain_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    disk_function_tree: bool = False,
) -> AssignmentResult:
    """Compute the stable matching by mutual-top-1 chasing.

    ``disk_function_tree`` puts the function R-tree on simulated disk
    pages (with a 2% LRU buffer) instead of in memory — the Section
    7.6 setting where ``F`` does not fit in memory; its page reads are
    then included in the reported I/O.
    """
    config = chain_config(disk_function_tree=disk_function_tree)
    return AssignmentEngine(config).run(functions, index)
