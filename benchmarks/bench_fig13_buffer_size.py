"""Figure 13 — effect of the LRU buffer size.

Buffer in {0, 1, 2, 5, 10}% of the object-tree size.  Expected shape:
Brute Force and Chain benefit from larger buffers (they re-read pages
across their many top-1 searches); SB's I/O is *identical* at every
buffer size because UpdateSkyline never reads a page twice (Theorem
1) — even at 10% buffer SB stays orders of magnitude ahead.
"""

import pytest

from repro.bench.config import BUFFER_SWEEP, defaults
from repro.bench.harness import make_instance

from repro.bench.pytest_support import bench_cell

D = defaults()

METHODS = ["sb", "brute-force", "chain"]

_sb_io: dict[float, int] = {}


@pytest.mark.benchmark(group="fig13-buffer-size")
@pytest.mark.parametrize("buffer_fraction", BUFFER_SWEEP)
@pytest.mark.parametrize("method", METHODS)
def test_fig13(benchmark, method, buffer_fraction):
    functions, objects = make_instance(
        D.nf, D.no, D.dims, D.distribution, seed=13
    )
    matching, stats = bench_cell(
        benchmark, method, functions, objects, buffer_fraction=buffer_fraction
    )
    assert matching.num_units == min(len(functions), len(objects))
    if method == "sb":
        _sb_io[buffer_fraction] = stats.io_accesses
        # Theorem 1, observable: identical I/O at every buffer size.
        assert len(set(_sb_io.values())) == 1
