"""Section 7.6 solver modes: paged lists in SB, disk function tree in
Chain, scan charging in Brute Force — correctness and accounting."""

import pytest

from repro import build_object_index
from repro.core.brute_force import brute_force_assign
from repro.core.chain import chain_assign
from repro.core.reference import greedy_assign
from repro.core.sb import sb_assign

from .conftest import random_instance


@pytest.fixture
def swapped_instance():
    # |F| >> |O|, the 7.6 storage setting.
    return random_instance(80, 12, 3, seed=76)


def test_sb_paged_lists_correct_and_charged(swapped_instance):
    fs, os_ = swapped_instance
    ref = greedy_assign(fs, os_).matching.as_dict()
    idx = build_object_index(os_, memory=True)
    result = sb_assign(fs, idx, paged_function_lists=128)
    assert result.matching.as_dict() == ref
    assert result.stats.counters["function_list_reads"] > 0
    # Object tree is in memory: all reported I/O is list traffic.
    assert result.stats.counters["object_reads"] == 0
    assert result.stats.io_accesses == result.stats.counters[
        "function_list_reads"
    ]


def test_sb_paged_lists_more_io_than_sb_alt(swapped_instance):
    """The point of SB-alt (Figure 17): per-object TA over disk lists
    re-reads pages; the batch sweep does not."""
    from repro.core.sb_alt import sb_alt_assign

    fs, os_ = swapped_instance
    idx = build_object_index(os_, memory=True)
    per_object = sb_assign(fs, idx, paged_function_lists=128)
    idx2 = build_object_index(os_, memory=True)
    batch = sb_alt_assign(fs, idx2, page_size=128)
    assert batch.matching.as_dict() == per_object.matching.as_dict()
    assert batch.stats.io_accesses < per_object.stats.io_accesses


def test_chain_disk_function_tree(swapped_instance):
    fs, os_ = swapped_instance
    ref = greedy_assign(fs, os_).matching.as_dict()
    idx = build_object_index(os_, memory=True)
    result = chain_assign(fs, idx, disk_function_tree=True)
    assert result.matching.as_dict() == ref
    assert result.stats.counters["function_tree_reads"] > 0
    assert result.stats.io_accesses >= result.stats.counters[
        "function_tree_reads"
    ]


def test_brute_force_scan_charge(swapped_instance):
    fs, os_ = swapped_instance
    idx = build_object_index(os_, memory=True)
    plain = brute_force_assign(fs, idx)
    idx.reset_for_run()
    charged = brute_force_assign(fs, idx, function_scan_pages=7)
    assert charged.matching.as_dict() == plain.matching.as_dict()
    assert charged.stats.io_accesses == plain.stats.io_accesses + 7
