"""The :class:`AssignmentSession` facade: bit-identity against direct
``solve``, batching, futures, lifecycle, and churn against the
from-scratch oracle."""

import random

import pytest

from repro.api import (
    AssignmentSession,
    FunctionArrived,
    FunctionDeparted,
    InvalidProblemError,
    ObjectArrived,
    ObjectDeparted,
    Problem,
    SessionClosedError,
)
from repro.core import SOLVERS, solve
from repro.core.index import build_object_index
from repro.core.reference import greedy_assign
from repro.data.instances import FunctionSet, ObjectSet

from .conftest import random_instance, random_points, random_weights


@pytest.mark.parametrize("method", sorted(SOLVERS))
def test_session_solve_bit_identical_to_direct_solve(method):
    fs, os_ = random_instance(6, 14, 3, seed=11, capacities=True)
    problem = Problem.from_sets(os_, fs, method=method)
    direct = solve(
        fs,
        build_object_index(os_, memory=(method == "sb-alt")),
        method=method,
    )
    with AssignmentSession(problem) as session:
        solution = session.solve()
    direct_pairs = [(p.fid, p.oid, p.score, p.count) for p in direct.matching.pairs]
    got_pairs = [(p.fid, p.oid, p.score, p.count) for p in solution.pairs]
    assert got_pairs == direct_pairs, method
    solution.verify()


def test_solver_options_flow_through_the_session():
    fs, os_ = random_instance(20, 12, 3, seed=4)
    problem = Problem.from_sets(
        os_, fs, method="sb", options={"paged_function_lists": 128},
        memory_index=True,
    )
    with AssignmentSession(problem) as session:
        solution = session.solve()
    assert "function_list_reads" in solution.stats.counters


def test_solve_many_shares_one_cached_index():
    fs, os_ = random_instance(8, 30, 2, seed=5)
    base = Problem.from_sets(os_, fs, method="sb")
    variants = [base, base.with_method("brute-force"), base.with_method("chain")]
    with AssignmentSession(base, max_workers=3) as session:
        solutions = session.solve_many(variants)
        info = session.cache_info()
    reference = solutions[0].as_dict()
    assert all(s.as_dict() == reference for s in solutions)
    assert info["misses"] == 1 and info["hits"] == 2


def test_submit_returns_future_solutions():
    fs, os_ = random_instance(5, 12, 2, seed=6)
    problem = Problem.from_sets(os_, fs)
    with AssignmentSession(problem) as session:
        futures = [session.submit() for _ in range(3)]
        expected = session.solve().as_dict()
        assert all(f.result().as_dict() == expected for f in futures)


def test_closed_session_raises_everywhere():
    fs, os_ = random_instance(3, 5, 2, seed=7)
    session = AssignmentSession(Problem.from_sets(os_, fs))
    session.close()
    for op in (
        session.solve,
        lambda: session.solve_many([]),
        session.submit,
        session.current,
        lambda: session.apply([]),
        session.warm,
    ):
        with pytest.raises(SessionClosedError):
            op()
    session.close()  # idempotent


# ---------------------------------------------------------------------------
# Churn: session.apply against the from-scratch oracle
# ---------------------------------------------------------------------------


class OracleMirror:
    """Mirror of the session's churned population, by handle."""

    def __init__(self, problem: Problem):
        self.functions = {
            fid: (w, problem.function_set.gamma(fid),
                  problem.function_set.capacity(fid))
            for fid, w in enumerate(problem.functions)
        }
        self.objects = {
            oid: (p, problem.object_set.capacity(oid))
            for oid, p in enumerate(problem.objects)
        }

    def expected(self):
        fids = sorted(self.functions)
        oids = sorted(self.objects)
        if not fids or not oids:
            return {}
        fs = FunctionSet(
            [self.functions[f][0] for f in fids],
            gammas=[self.functions[f][1] for f in fids],
            capacities=[self.functions[f][2] for f in fids],
        )
        os_ = ObjectSet(
            [self.objects[o][0] for o in oids],
            capacities=[self.objects[o][1] for o in oids],
        )
        raw = greedy_assign(fs, os_).matching.as_dict()
        return {(fids[f], oids[o]): u for (f, o), u in raw.items()}


def test_apply_single_departure_matches_oracle_and_diff():
    fs, os_ = random_instance(4, 8, 2, seed=12)
    problem = Problem.from_sets(os_, fs)
    with AssignmentSession(problem) as session:
        before = session.current()
        mirror = OracleMirror(problem)
        victim = before.pairs[0].oid
        after = session.apply(ObjectDeparted(victim))
        del mirror.objects[victim]
        assert after.as_dict() == mirror.expected()
        assert session.last_diff is not None and session.last_diff
        assert any(o == victim for _, o, _ in session.last_diff.removed)
        session.verify_current()


def test_apply_churn_workload_matches_oracle(seed=29):
    rng = random.Random(seed)
    fs, os_ = random_instance(5, 9, 2, seed=seed, capacities=True)
    problem = Problem.from_sets(os_, fs)
    mirror = OracleMirror(problem)
    with AssignmentSession(problem) as session:
        assert session.current().as_dict() == mirror.expected()
        for step in range(30):
            kind = rng.choice(["+o", "-o", "+f", "-f"])
            if kind == "-o" and len(mirror.objects) <= 1:
                kind = "+o"
            if kind == "-f" and len(mirror.functions) <= 1:
                kind = "+f"
            if kind == "+o":
                point = random_points(1, 2, rng)[0]
                cap = rng.randint(1, 3)
                session.apply(ObjectArrived(point, capacity=cap))
                (handle,) = session.last_arrival_handles
                mirror.objects[handle] = (point, cap)
            elif kind == "-o":
                oid = rng.choice(sorted(mirror.objects))
                session.apply(ObjectDeparted(oid))
                del mirror.objects[oid]
            elif kind == "+f":
                weights = random_weights(1, 2, rng)[0]
                cap = rng.randint(1, 3)
                gamma = float(rng.randint(1, 4))
                session.apply(
                    FunctionArrived(weights, priority=gamma, capacity=cap)
                )
                (handle,) = session.last_arrival_handles
                mirror.functions[handle] = (weights, gamma, cap)
            else:
                fid = rng.choice(sorted(mirror.functions))
                session.apply(FunctionDeparted(fid))
                del mirror.functions[fid]
            assert session.current().as_dict() == mirror.expected(), step
            session.verify_current()


def test_apply_batched_events_and_arrival_handles():
    fs, os_ = random_instance(3, 6, 2, seed=13)
    problem = Problem.from_sets(os_, fs)
    mirror = OracleMirror(problem)
    with AssignmentSession(problem) as session:
        session.apply(
            [
                ObjectArrived((0.9, 0.9), capacity=2),
                FunctionArrived((0.5, 0.5), priority=2.0),
                ObjectDeparted(0),
            ]
        )
        o_handle, f_handle = session.last_arrival_handles
        mirror.objects[o_handle] = ((0.9, 0.9), 2)
        mirror.functions[f_handle] = ((0.5, 0.5), 2.0, 1)
        del mirror.objects[0]
        assert session.current().as_dict() == mirror.expected()


def test_apply_rejects_invalid_events_without_corrupting_state():
    fs, os_ = random_instance(3, 6, 2, seed=14)
    problem = Problem.from_sets(os_, fs)
    with AssignmentSession(problem) as session:
        baseline = session.current().as_dict()
        for bad in (
            ObjectArrived((0.5,)),  # wrong dims
            ObjectArrived((0.5, 0.5), capacity=0),
            ObjectDeparted(999),
            FunctionArrived((0.9, 0.5)),  # weights don't sum to 1
            FunctionArrived((0.5, 0.5), priority=0.0),
            FunctionDeparted(999),
            "not-an-event",
        ):
            with pytest.raises(InvalidProblemError):
                session.apply(bad)
        assert session.current().as_dict() == baseline
        session.verify_current()


def test_apply_partial_batch_keeps_snapshot_consistent():
    """A rejected event mid-batch applies the prefix and resyncs."""
    fs, os_ = random_instance(3, 6, 2, seed=15)
    problem = Problem.from_sets(os_, fs)
    mirror = OracleMirror(problem)
    with AssignmentSession(problem) as session:
        with pytest.raises(InvalidProblemError):
            session.apply([ObjectDeparted(0), ObjectDeparted(999)])
        del mirror.objects[0]
        assert session.current().as_dict() == mirror.expected()
        assert session.last_diff is not None


def test_static_solve_is_independent_of_churn():
    fs, os_ = random_instance(4, 7, 2, seed=16)
    problem = Problem.from_sets(os_, fs)
    with AssignmentSession(problem) as session:
        static_before = session.solve().as_dict()
        session.apply(ObjectDeparted(0))
        assert session.solve().as_dict() == static_before


def test_futures_submitted_before_close_still_resolve():
    """close() drains the pool: pending futures resolve, new work is
    rejected while draining."""
    fs, os_ = random_instance(5, 12, 2, seed=17)
    with AssignmentSession(Problem.from_sets(os_, fs), max_workers=1) as session:
        futures = [session.submit() for _ in range(6)]
    results = [f.result() for f in futures]
    assert all(r.as_dict() == results[0].as_dict() for r in results)
    assert session.closed
