#!/usr/bin/env python3
"""Regenerate every paper figure as a text table (for EXPERIMENTS.md).

Runs the same cells as the pytest-benchmark suites but prints
paper-style series tables — one block per figure, one row per
algorithm, one column per sweep value, for each of the paper's three
metrics (I/O page reads, CPU seconds, peak search memory).

Usage:
    python benchmarks/run_figures.py                 # all figures
    python benchmarks/run_figures.py fig09 fig13     # a subset
    REPRO_BENCH_SCALE=medium python benchmarks/run_figures.py
"""

from __future__ import annotations

import math
import sys
import time

from repro.bench.config import (
    BUFFER_SWEEP,
    CAPACITY_SWEEP,
    CLUSTER_SWEEP,
    DIMS_SWEEP,
    DIMS_SWEEP_FIG8,
    NBA_CAPACITY_SWEEP,
    PRIORITY_SWEEP,
    current_scale,
    defaults,
)
from repro.bench.harness import make_instance, run_cell
from repro.bench.reporting import print_series

D = defaults()
BASELINES = ["sb", "brute-force", "chain"]


def sweep(title, sweep_name, values, methods, cell_args):
    """Run methods x values and print the series tables."""
    cells = []
    for value in values:
        for method in methods:
            functions, objects, kwargs = cell_args(method, value)
            cell = run_cell(
                method, functions, objects,
                params={sweep_name: value}, **kwargs,
            )
            cells.append(cell)
    print_series(title, sweep_name, values, cells)
    return cells


def fig08():
    nf = max(2, 1000 // D.divisor)
    def args(method, dims):
        f, o = make_instance(nf, D.no, dims, D.distribution, seed=8)
        return f, o, {}
    sweep(
        f"Figure 8 - optimizations ({D.distribution}, |F|={nf}, |O|={D.no})",
        "D", DIMS_SWEEP_FIG8, ["sb", "sb-update", "sb-deltasky"], args,
    )


def fig09():
    for dist in ("independent", "correlated", "anti-correlated"):
        def args(method, dims, dist=dist):
            f, o = make_instance(D.nf, D.no, dims, dist, seed=9)
            return f, o, {}
        sweep(
            f"Figure 9 - dimensionality ({dist}, |F|={D.nf}, |O|={D.no})",
            "D", DIMS_SWEEP, BASELINES, args,
        )


def fig10():
    def args(method, nf):
        f, o = make_instance(nf, D.no, D.dims, D.distribution, seed=10)
        return f, o, {}
    sweep(
        f"Figure 10 - function cardinality ({D.distribution}, |O|={D.no})",
        "|F|", D.f_sweep(), BASELINES, args,
    )


def fig11():
    def args(method, no):
        f, o = make_instance(D.nf, no, D.dims, D.distribution, seed=11)
        return f, o, {}
    sweep(
        f"Figure 11 - object cardinality ({D.distribution}, |F|={D.nf})",
        "|O|", D.o_sweep(), BASELINES, args,
    )


def fig12():
    def args(method, c):
        f, o = make_instance(
            D.nf, D.no, D.dims, D.distribution, seed=12, n_clusters=c
        )
        return f, o, {}
    sweep(
        f"Figure 12 - clustered weights ({D.distribution})",
        "C", CLUSTER_SWEEP, BASELINES, args,
    )


def fig13():
    def args(method, frac):
        f, o = make_instance(D.nf, D.no, D.dims, D.distribution, seed=13)
        return f, o, {"buffer_fraction": frac}
    sweep(
        f"Figure 13 - buffer size ({D.distribution})",
        "buffer", BUFFER_SWEEP, BASELINES, args,
    )


def fig14():
    def args_f(method, k):
        f, o = make_instance(
            D.nf, D.no, D.dims, D.distribution, seed=14, function_capacity=k
        )
        return f, o, {}
    sweep(
        "Figure 14(a,b) - function capacity",
        "k", CAPACITY_SWEEP, BASELINES, args_f,
    )

    def args_o(method, k):
        f, o = make_instance(
            D.nf, D.no, D.dims, D.distribution, seed=14, object_capacity=k
        )
        return f, o, {}
    sweep(
        "Figure 14(c,d) - object capacity",
        "k", CAPACITY_SWEEP, BASELINES, args_o,
    )


def fig15():
    def args(method, gamma):
        f, o = make_instance(
            D.nf, D.no, D.dims, D.distribution, seed=15, max_priority=gamma
        )
        return f, o, {}
    sweep(
        "Figure 15 - priorities",
        "gamma", PRIORITY_SWEEP,
        ["sb", "sb-two-skylines", "brute-force", "chain"], args,
    )


def fig16():
    def args_z(method, no):
        f, o = make_instance(D.nf, no, 5, seed=16, real="zillow")
        return f, o, {}
    sweep(
        f"Figure 16(a,b) - Zillow-like (|F|={D.nf})",
        "|O|", D.o_sweep(), BASELINES, args_z,
    )

    nba_n = max(200, 12278 // D.divisor)
    nba_nf = max(2, 1000 // D.divisor)

    def args_n(method, k):
        f, o = make_instance(
            nba_nf, nba_n, 5, seed=16, real="nba", function_capacity=k
        )
        return f, o, {}
    sweep(
        f"Figure 16(c,d) - NBA-like (|F|={nba_nf}, |O|={nba_n})",
        "k", NBA_CAPACITY_SWEEP, BASELINES, args_n,
    )


def fig17():
    nf, no = D.no, D.nf  # swapped cardinalities
    for dist in ("independent", "anti-correlated"):
        def args(method, dims, dist=dist):
            f, o = make_instance(nf, no, dims, dist, seed=17)
            kwargs: dict = {"memory_index": True}
            if method == "sb-alt":
                kwargs["page_size"] = 4096
            elif method == "sb":
                kwargs["paged_function_lists"] = 4096
            elif method == "brute-force":
                kwargs["function_scan_pages"] = math.ceil(nf * dims * 16 / 4096)
            elif method == "chain":
                kwargs["disk_function_tree"] = True
            return f, o, kwargs
        sweep(
            f"Figure 17 - disk-resident F ({dist}, |F|={nf}, |O|={no})",
            "D", DIMS_SWEEP,
            ["sb-alt", "sb", "brute-force", "chain"], args,
        )


def table2():
    def args(method, _):
        f, o = make_instance(D.nf, D.no, D.dims, D.distribution, seed=2)
        return f, o, {}
    sweep(
        f"Table 2 defaults (|F|={D.nf}, |O|={D.no}, D={D.dims}, "
        f"{D.distribution}, buffer {D.buffer_fraction:.0%})",
        "point", ["default"],
        ["sb", "sb-update", "sb-deltasky", "brute-force", "chain"], args,
    )


FIGURES = {
    "table2": table2,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
}


def main(argv: list[str]) -> None:
    wanted = argv or list(FIGURES)
    unknown = [w for w in wanted if w not in FIGURES]
    if unknown:
        raise SystemExit(f"unknown figures {unknown}; choose from {list(FIGURES)}")
    print(
        f"repro evaluation - scale={current_scale()} "
        f"(defaults |F|={D.nf}, |O|={D.no}, D={D.dims})\n"
    )
    started = time.perf_counter()
    for name in wanted:
        FIGURES[name]()
    print(f"total wall time: {time.perf_counter() - started:.1f}s")


if __name__ == "__main__":
    main(sys.argv[1:])
