"""The solver registry — one table from which every layer dispatches.

Before this module existed, method-name knowledge was smeared across
three places: ``repro.core.solve`` owned a name → callable dict plus a
separate name → option-schema dict, ``repro.engine.configs`` owned the
name → :class:`~repro.engine.engine.EngineConfig` factories, and the
API layer re-validated names against the core dicts.  Adding a solver
(or asking "which methods could the planner pick here?") meant editing
all of them in lockstep.

Now a :class:`SolverSpec` carries everything known about one named
method — the solve entry point, the engine-config factory, the option
schema, the cost-model key and whether the workload-adaptive planner
may pick it — and :data:`REGISTRY` is the single table that
``repro.core.solve``, :class:`~repro.api.problem.Problem` validation,
the planner and the server all consult.

The solve / config callables import their implementations lazily so
this module stays import-light: ``repro.core.__init__`` derives its
public ``SOLVERS`` / ``SOLVER_OPTIONS`` tables from the registry, and
a module-level import of the solver functions here would be circular.

``method="auto"`` is *not* a spec: it is the planner pseudo-method
(:data:`AUTO_METHOD`) that :meth:`SolverRegistry.validate` accepts and
:func:`repro.planner.plan.plan_instance` resolves to one of the
``plannable`` specs below.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import InvalidSolverOptionError, UnknownSolverError

if TYPE_CHECKING:
    from repro.core.types import AssignmentResult
    from repro.engine.engine import EngineConfig

#: The planner pseudo-method: accepted wherever a method name is,
#: resolved to a concrete registered config before any engine runs.
AUTO_METHOD = "auto"

_SB_OPTIONS = frozenset(
    {
        "omega_fraction",
        "multi_pair",
        "biased",
        "resume",
        "maintenance",
        "paged_function_lists",
    }
)


# -- lazy solve entry points -------------------------------------------------
# Each closure imports its implementation on first call; see the module
# docstring for why these are not plain module-level imports.


def _solve_sb(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.sb import sb_assign

    return sb_assign(functions, index, **kw)


def _solve_sb_update(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.sb import sb_assign

    return sb_assign(functions, index, variant="sb-update", **kw)


def _solve_sb_deltasky(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.sb import sb_assign

    return sb_assign(functions, index, variant="sb-deltasky", **kw)


def _solve_sb_vec(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.kernels.configs import sb_vec_assign

    return sb_vec_assign(functions, index, **kw)


def _solve_sb_deltasky_vec(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.kernels.configs import sb_deltasky_vec_assign

    return sb_deltasky_vec_assign(functions, index, **kw)


def _solve_two_skylines(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.priority import sb_two_skyline_assign

    return sb_two_skyline_assign(functions, index, **kw)


def _solve_sb_alt(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.sb_alt import sb_alt_assign

    return sb_alt_assign(functions, index, **kw)


def _solve_brute_force(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.brute_force import brute_force_assign

    return brute_force_assign(functions, index, **kw)


def _solve_chain(functions: Any, index: Any, **kw: Any) -> AssignmentResult:
    from repro.core.chain import chain_assign

    return chain_assign(functions, index, **kw)


def _config_sb(**kw: Any) -> EngineConfig:
    from repro.engine.configs import sb_config

    return sb_config("sb", **kw)


def _config_sb_update(**kw: Any) -> EngineConfig:
    from repro.engine.configs import sb_config

    return sb_config("sb-update", **kw)


def _config_sb_deltasky(**kw: Any) -> EngineConfig:
    from repro.engine.configs import sb_config

    return sb_config("sb-deltasky", **kw)


def _config_sb_vec(**kw: Any) -> EngineConfig:
    from repro.kernels.configs import sb_vec_config

    return sb_vec_config(**kw)


def _config_sb_deltasky_vec(**kw: Any) -> EngineConfig:
    from repro.kernels.configs import sb_deltasky_vec_config

    return sb_deltasky_vec_config(**kw)


def _config_two_skylines(**kw: Any) -> EngineConfig:
    from repro.engine.configs import two_skyline_config

    return two_skyline_config(**kw)


def _config_sb_alt(**kw: Any) -> EngineConfig:
    from repro.engine.configs import sb_alt_config

    return sb_alt_config(**kw)


def _config_chain(**kw: Any) -> EngineConfig:
    from repro.engine.configs import chain_config

    return chain_config(**kw)


@dataclass(frozen=True)
class SolverSpec:
    """Everything the stack knows about one named solver."""

    name: str
    #: One-line description (README registry table, ``explain()``).
    summary: str
    #: Keyword overrides the solver accepts; anything else is rejected
    #: up front with a typed error.
    options: frozenset[str]
    #: May ``method="auto"`` resolve to this config?  Excluded are
    #: ``brute-force`` (the Section 4.1 baseline, quadratic in
    #: ``|F|·|O|`` page accesses) and ``sb-alt`` (the Section 7.6
    #: disk-resident-*function* setting, which also wants a
    #: memory-resident object tree — a different storage model the
    #: caller must opt into explicitly).
    plannable: bool
    #: ``(functions, index, **options) -> AssignmentResult``.
    solve: Callable[..., Any] = field(repr=False)
    #: ``(**options) -> EngineConfig``; ``None`` for the one solver
    #: (brute-force) that does not run on the unified engine.
    config_factory: Callable[..., Any] | None = field(repr=False)
    #: Row name in the planner's calibration table.
    cost_key: str = ""

    def __post_init__(self) -> None:
        if not self.cost_key:
            object.__setattr__(self, "cost_key", self.name)

    @property
    def engine_backed(self) -> bool:
        return self.config_factory is not None

    def engine_config(self, **overrides: Any) -> EngineConfig:
        """Build this solver's :class:`EngineConfig` (with overrides)."""
        if self.config_factory is None:
            raise UnknownSolverError(
                self.name,
                [s.name for s in SPECS if s.engine_backed],
                kind="engine config",
            )
        return self.config_factory(**overrides)

    def validate_options(self, options: Mapping[str, Any] | None) -> None:
        unknown = set(options or ()) - self.options
        if unknown:
            raise InvalidSolverOptionError(self.name, unknown, self.options)


SPECS: tuple[SolverSpec, ...] = (
    SolverSpec(
        name="sb",
        summary="the paper's SB: resumable biased Ω-bounded TA, multi-pair",
        options=_SB_OPTIONS | {"variant"},
        plannable=True,
        solve=_solve_sb,
        config_factory=_config_sb,
    ),
    SolverSpec(
        name="sb-update",
        summary="Figure 8 ablation: fresh round-robin TA, single-pair",
        options=_SB_OPTIONS,
        plannable=True,
        solve=_solve_sb_update,
        config_factory=_config_sb_update,
    ),
    SolverSpec(
        name="sb-deltasky",
        summary="Figure 8 ablation: DeltaSky maintenance",
        options=_SB_OPTIONS,
        plannable=True,
        solve=_solve_sb_deltasky,
        config_factory=_config_sb_deltasky,
    ),
    SolverSpec(
        name="sb-vec",
        summary="columnar twin of sb: batch Pareto, one matmul per round",
        options=frozenset({"multi_pair"}),
        plannable=True,
        solve=_solve_sb_vec,
        config_factory=_config_sb_vec,
    ),
    SolverSpec(
        name="sb-deltasky-vec",
        summary="columnar twin of sb-deltasky: incremental mask repair",
        options=frozenset({"multi_pair"}),
        plannable=True,
        solve=_solve_sb_deltasky_vec,
        config_factory=_config_sb_deltasky_vec,
    ),
    SolverSpec(
        name="sb-two-skylines",
        summary="prioritized two-skyline variant (Section 6.2)",
        options=frozenset({"multi_pair"}),
        plannable=True,
        solve=_solve_two_skylines,
        config_factory=_config_two_skylines,
    ),
    SolverSpec(
        name="sb-alt",
        summary="disk-resident function lists, batch TA sweep (Section 7.6)",
        options=frozenset({"page_size", "multi_pair"}),
        plannable=False,
        solve=_solve_sb_alt,
        config_factory=_config_sb_alt,
    ),
    SolverSpec(
        name="brute-force",
        summary="Section 4.1 baseline: repeated best-pair extraction",
        options=frozenset({"function_scan_pages"}),
        plannable=False,
        solve=_solve_brute_force,
        config_factory=None,
    ),
    SolverSpec(
        name="chain",
        summary="the adapted Chain of Wong et al. [25]: mutual top-1 chase",
        options=frozenset({"disk_function_tree"}),
        plannable=True,
        solve=_solve_chain,
        config_factory=_config_chain,
    ),
)


class SolverRegistry:
    """Name → :class:`SolverSpec` lookup with typed validation."""

    def __init__(self, specs: tuple[SolverSpec, ...] = SPECS) -> None:
        self._specs: dict[str, SolverSpec] = {s.name: s for s in specs}

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._specs.values())

    def names(self) -> tuple[str, ...]:
        """Registered concrete method names (``auto`` excluded)."""
        return tuple(self._specs)

    def method_names(self) -> tuple[str, ...]:
        """Every name accepted as ``method=`` — specs plus ``auto``."""
        return (*self._specs, AUTO_METHOD)

    def get(self, name: str) -> SolverSpec:
        spec = self._specs.get(name) if isinstance(name, str) else None
        if spec is None:
            raise UnknownSolverError(name, self.method_names())
        return spec

    def plannable(self) -> tuple[SolverSpec, ...]:
        """The specs ``method="auto"`` may resolve to."""
        return tuple(s for s in self if s.plannable)

    def option_schema(self) -> dict[str, frozenset[str]]:
        """``{name: accepted options}`` (the legacy table shape)."""
        return {s.name: s.options for s in self}

    def validate(self, method: str, options: Mapping[str, Any] | None) -> None:
        """Check a method name and its keyword overrides.

        Raises :class:`~repro.errors.UnknownSolverError` (a
        ``ValueError``) for an unregistered name and
        :class:`~repro.errors.InvalidSolverOptionError` (a
        ``TypeError``) for an unaccepted override.  ``auto`` is valid
        and accepts no options — the planner owns the configuration of
        whatever it picks.
        """
        if method == AUTO_METHOD:
            if options:
                raise InvalidSolverOptionError(
                    AUTO_METHOD,
                    options,
                    (),
                    message=(
                        "method='auto' accepts no solver options: the "
                        "planner picks the config (and its options) from "
                        "the instance profile; pick a concrete method to "
                        "pass overrides"
                    ),
                )
            return
        self.get(method).validate_options(options)


#: The process-wide registry every layer consults.
REGISTRY = SolverRegistry()


__all__ = [
    "AUTO_METHOD",
    "REGISTRY",
    "SPECS",
    "SolverRegistry",
    "SolverSpec",
]
