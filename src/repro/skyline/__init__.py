"""Skyline computation and maintenance.

Static algorithms (used as references and baselines):

- :func:`repro.skyline.reference.naive_skyline` — O(n²) ground truth;
- :mod:`repro.skyline.bnl` — Block-Nested-Loops [Börzsönyi et al.];
- :mod:`repro.skyline.dc` — Divide & Conquer [Börzsönyi et al.];
- :mod:`repro.skyline.sfs` — sort-based skyline with SaLSa-style early
  termination [Godfrey et al.; Bartolini et al.].

Index-based computation and maintenance (the paper's substrate):

- :mod:`repro.skyline.bbs` — BBS over the R-tree [Papadias et al.],
  extended to record pruned entries in per-skyline-point ``plist``s;
- :mod:`repro.skyline.maintenance` — **UpdateSkyline** (paper Alg. 2):
  I/O-optimal deletion maintenance driven by the plists;
- :mod:`repro.skyline.deltasky` — DeltaSky [Wu et al.]: per-deletion
  constrained BBS, the maintenance baseline of Figure 8;
- :mod:`repro.skyline.edr` — exclusive-dominance-region decomposition
  (used for verification).

All three maintenance managers (UpdateSkyline, DeltaSky, in-memory
plists) share the ``compute_initial()`` / ``remove()`` surface and
plug into the engine's
:class:`repro.engine.protocols.SkylineMaintenance` strategy seam.
"""

from repro.skyline.bbs import bbs_skyline
from repro.skyline.bnl import bnl_skyline
from repro.skyline.dc import dc_skyline
from repro.skyline.deltasky import DeltaSkyManager
from repro.skyline.inmemory import InMemorySkylineManager
from repro.skyline.kskyband import bbs_kskyband, naive_kskyband
from repro.skyline.maintenance import UpdateSkylineManager
from repro.skyline.reference import naive_skyline
from repro.skyline.sfs import sfs_skyline

__all__ = [
    "DeltaSkyManager",
    "InMemorySkylineManager",
    "UpdateSkylineManager",
    "bbs_kskyband",
    "bbs_skyline",
    "bnl_skyline",
    "dc_skyline",
    "naive_kskyband",
    "naive_skyline",
    "sfs_skyline",
]
