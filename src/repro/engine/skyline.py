"""SkylineMaintenance strategy implementations.

The R-tree managers of :mod:`repro.skyline` already speak the
protocol (``compute_initial`` / ``remove``); this module adds the
engine-side factories plus the degenerate strategy used by Chain,
which operates on the full alive object set and needs no skyline at
all.
"""

from __future__ import annotations

from repro.engine.engine import EngineContext
from repro.engine.protocols import SkylineMaintenance
from repro.skyline.deltasky import DeltaSkyManager
from repro.skyline.maintenance import UpdateSkylineManager

#: Maintenance algorithms selectable by name (the Figure 8 axis).
MAINTENANCE_STRATEGIES = ("update-skyline", "deltasky")


def build_object_skyline(ctx: EngineContext, maintenance: str) -> SkylineMaintenance:
    """The paper's object-skyline managers over the run's R-tree."""
    if maintenance == "update-skyline":
        return UpdateSkylineManager(ctx.index.tree, ctx.mem)
    if maintenance == "deltasky":
        return DeltaSkyManager(ctx.index.tree, ctx.mem)
    raise ValueError(
        f"unknown maintenance {maintenance!r}; "
        f"expected one of {MAINTENANCE_STRATEGIES}"
    )


class NoSkyline:
    """Trivial maintenance for strategies that ignore the skyline.

    Chain answers best-partner queries with R-tree top-1 searches over
    the full alive sets, so the engine's skyline state is a permanently
    truthy sentinel and removals are no-ops (the loop terminates via
    capacity exhaustion or pair-source exhaustion instead).
    """

    class _Sentinel:
        def __bool__(self) -> bool:
            return True

        def __len__(self) -> int:  # pragma: no cover - diagnostics only
            return 0

    def __init__(self) -> None:
        self._state = self._Sentinel()

    def compute_initial(self):
        return self._state

    def remove(self, oids):
        return self._state
