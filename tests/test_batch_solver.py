"""The batched solve service: worker-pool execution, index-cache
reuse, and per-job result fidelity."""

import pytest

from repro import BatchSolver, SolveJob, build_object_index, solve
from repro.core.reference import greedy_assign
from repro.data.instances import ObjectSet
from repro.service import ObjectIndexCache, object_set_fingerprint

from .conftest import random_instance


def make_jobs(n_catalogues=4, cohorts_per_catalogue=2):
    """n_catalogues distinct object sets, each matched against several
    function cohorts — the index-reuse workload."""
    jobs = []
    for c in range(n_catalogues):
        _, objects = random_instance(1, 25 + c, 3, seed=100 + c)
        for k in range(cohorts_per_catalogue):
            functions, _ = random_instance(8 + k, 1, 3, seed=200 + 10 * c + k)
            jobs.append(SolveJob(
                functions=functions,
                objects=objects,
                method="sb",
                job_id=f"cat{c}-cohort{k}",
                page_size=512,
            ))
    return jobs


def test_batch_of_eight_jobs_with_cache_hits():
    """≥ 8 jobs through the pool: every result matches a standalone
    solve, and each repeated catalogue hits the index cache."""
    jobs = make_jobs(n_catalogues=4, cohorts_per_catalogue=2)
    assert len(jobs) == 8
    solver = BatchSolver(max_workers=8)
    results = solver.solve_many(jobs)

    assert [r.job_id for r in results] == [j.job_id for j in jobs]
    for job, res in zip(jobs, results):
        expected = greedy_assign(job.functions, job.objects).matching.as_dict()
        assert res.matching.as_dict() == expected, res.job_id

    info = solver.cache_info()
    assert info["misses"] == 4  # one build per distinct catalogue
    assert info["hits"] == 4    # every second cohort reuses the index
    assert info["entries"] == 4


def test_jobs_run_concurrently():
    """The pool genuinely overlaps jobs on distinct catalogues."""
    jobs = make_jobs(n_catalogues=8, cohorts_per_catalogue=1)
    solver = BatchSolver(max_workers=8)
    solver.solve_many(jobs)
    assert solver.peak_concurrency >= 2


def test_mixed_methods_share_one_catalogue():
    fs, os_ = random_instance(9, 30, 3, seed=17, capacities=True)
    ref = greedy_assign(fs, os_).matching.as_dict()
    jobs = [
        SolveJob(functions=fs, objects=os_, method=m, job_id=m)
        for m in ("sb", "sb-update", "sb-two-skylines", "chain", "sb-alt")
    ]
    solver = BatchSolver(max_workers=4)
    results = solver.solve_many(jobs)
    for res in results:
        assert res.matching.as_dict() == ref, res.method
    # sb-alt wants a memory-resident object tree, so it builds its own
    # index; the other four share one disk-simulated index.
    assert solver.cache_info() == {"hits": 3, "misses": 2, "entries": 2}


def test_structurally_equal_object_sets_share_fingerprint():
    _, a = random_instance(1, 20, 3, seed=33)
    b = ObjectSet(list(a.points), capacities=None)
    assert a is not b
    assert object_set_fingerprint(a) == object_set_fingerprint(b)
    c = ObjectSet(list(a.points), capacities=[2] * len(a))
    assert object_set_fingerprint(a) != object_set_fingerprint(c)


def test_fingerprint_distinguishes_shape():
    """Same raw coordinate bytes, different catalogue shape: a 6x2 and
    a 4x3 object set must not share a cached index."""
    flat = [float(i) / 12 for i in range(12)]
    six_by_two = ObjectSet([tuple(flat[i:i + 2]) for i in range(0, 12, 2)])
    four_by_three = ObjectSet([tuple(flat[i:i + 3]) for i in range(0, 12, 3)])
    assert (object_set_fingerprint(six_by_two)
            != object_set_fingerprint(four_by_three))


def test_cache_rebuild_after_eviction():
    cache = ObjectIndexCache(max_entries=2)
    sets = [random_instance(1, 10 + i, 2, seed=50 + i)[1] for i in range(3)]
    for os_ in sets:
        cache.get(os_, 512, False)
    assert cache.info() == {"hits": 0, "misses": 3, "entries": 2}
    # The oldest entry was evicted; asking again rebuilds it.
    _, _, hit = cache.get(sets[0], 512, False)
    assert not hit
    # The newest entry is still cached.
    _, _, hit = cache.get(sets[2], 512, False)
    assert hit


def test_solve_kwargs_and_stats_surface():
    fs, os_ = random_instance(10, 15, 3, seed=61)
    job = SolveJob(
        functions=fs, objects=os_, method="sb",
        memory_index=True, solve_kwargs={"paged_function_lists": 128},
    )
    res = BatchSolver().solve_one(job)
    assert res.job_id == "job-0"
    assert res.stats.counters["function_list_reads"] > 0
    assert res.wall_seconds > 0
    idx = build_object_index(os_, memory=True)
    standalone = solve(fs, idx, method="sb", paged_function_lists=128)
    assert res.matching.as_dict() == standalone.matching.as_dict()


def test_engine_config_method_gets_memory_index():
    """An EngineConfig method is recognized by name: an sb-alt config
    auto-selects the memory-resident object tree (Section 7.6), so no
    object-tree page reads leak into the reported I/O."""
    from repro.engine import engine_config

    fs, os_ = random_instance(10, 15, 3, seed=71)
    job = SolveJob(functions=fs, objects=os_, method=engine_config("sb-alt"))
    assert job.wants_memory_index
    res = BatchSolver().solve_one(job)
    assert res.method == "sb-alt"
    assert res.stats.counters["object_reads"] == 0
    assert res.matching.as_dict() == greedy_assign(fs, os_).matching.as_dict()


def test_empty_batch():
    assert BatchSolver().solve_many([]) == []


def test_fingerprint_freezes_catalogue_against_stale_cache_reuse():
    """Regression: the fingerprint is memoized on the instance, so a
    post-submit mutation of ``objects.points`` would silently reuse
    the wrong cached index.  Submitting now freezes the catalogue."""
    from repro.errors import FrozenInstanceError

    fs, objects = random_instance(4, 12, 2, seed=77)
    solver = BatchSolver(max_workers=1)
    first = solver.solve_one(SolveJob(functions=fs, objects=objects))
    assert objects.is_frozen

    # Rebinding or mutating the frozen catalogue is rejected outright.
    with pytest.raises(FrozenInstanceError):
        objects.points = [(0.0, 0.0)]
    with pytest.raises(FrozenInstanceError):
        objects.capacities = [1] * len(objects)
    with pytest.raises((TypeError, AttributeError)):
        objects.points[0] = (0.0, 0.0)  # tuples refuse item assignment
    with pytest.raises(AttributeError):
        objects.points.append((0.0, 0.0))

    # The frozen catalogue still solves and still hits the cache.
    again = solver.solve_one(SolveJob(functions=fs, objects=objects))
    assert again.index_cache_hit
    assert again.matching.as_dict() == first.matching.as_dict()

    # An edited *copy* is a different fingerprint => a fresh index.
    edited = ObjectSet([(0.9, 0.9)] + list(objects.points[1:]))
    assert object_set_fingerprint(edited) != object_set_fingerprint(objects)
    other = solver.solve_one(SolveJob(functions=fs, objects=edited))
    assert not other.index_cache_hit
    assert other.matching.as_dict() != again.matching.as_dict()


def test_eviction_racing_inflight_build_hands_out_correct_indexes(monkeypatch):
    """A cache bounded to one entry under concurrent `get`s for many
    distinct catalogues: entries are evicted while other builds are
    still in flight, yet every caller must receive a fully-built index
    for *its* catalogue — never a partially-built or stale one."""
    import threading
    import time as _time

    import repro.service.batch as batch_mod

    real_build = batch_mod.build_object_index
    build_log = []
    build_guard = threading.Lock()

    def slow_build(objects, page_size=4096, buffer_fraction=0.02, memory=False):
        with build_guard:
            build_log.append(object_set_fingerprint(objects))
        _time.sleep(0.02)  # widen the eviction-vs-build race window
        return real_build(objects, page_size=page_size, memory=memory)

    monkeypatch.setattr(batch_mod, "build_object_index", slow_build)
    cache = ObjectIndexCache(max_entries=1)
    sets = [random_instance(1, 8 + i, 2, seed=900 + i)[1] for i in range(6)]
    results = [None] * len(sets)
    errors = []
    barrier = threading.Barrier(len(sets))

    def fetch(i):
        try:
            barrier.wait()
            index, run_lock, _ = cache.get(sets[i], 256, False)
            results[i] = (index, run_lock)
        except Exception as exc:  # surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=fetch, args=(i,)) for i in range(len(sets))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    for i, (index, run_lock) in enumerate(results):
        # fully built, and for the right catalogue (not a stale reuse)
        assert index is not None and index.tree is not None
        assert index.objects is sets[i]
        assert len(index.objects) == 8 + i
        assert run_lock is not None
    # the bound still holds after the storm
    assert cache.info()["entries"] == 1
    assert set(build_log) == {object_set_fingerprint(s) for s in sets}


def test_concurrent_gets_for_one_catalogue_build_exactly_once(monkeypatch):
    """Racers on the same catalogue serialize on the entry's build
    lock: one bulk-load total, everyone shares the identical index."""
    import threading
    import time as _time

    import repro.service.batch as batch_mod

    real_build = batch_mod.build_object_index
    build_count = []

    def slow_build(objects, page_size=4096, buffer_fraction=0.02, memory=False):
        build_count.append(1)
        _time.sleep(0.02)
        return real_build(objects, page_size=page_size, memory=memory)

    monkeypatch.setattr(batch_mod, "build_object_index", slow_build)
    cache = ObjectIndexCache(max_entries=4)
    _, objects = random_instance(1, 20, 3, seed=911)
    results = []
    barrier = threading.Barrier(8)

    def fetch():
        barrier.wait()
        index, _, _ = cache.get(objects, 512, False)
        results.append(index)

    threads = [threading.Thread(target=fetch) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(build_count) == 1
    assert len({id(index) for index in results}) == 1
    assert cache.info() == {"hits": 7, "misses": 1, "entries": 1}


def test_batch_solver_results_correct_under_lru_eviction_churn():
    """BatchSolver with a one-entry index cache and a full worker pool:
    every job's matching still equals the reference oracle even though
    indexes are evicted and rebuilt under the jobs' feet."""
    jobs = make_jobs(n_catalogues=4, cohorts_per_catalogue=2)
    solver = BatchSolver(max_workers=8, index_cache_size=1)
    results = solver.solve_many(jobs)
    for job, res in zip(jobs, results):
        expected = greedy_assign(job.functions, job.objects).matching.as_dict()
        assert res.matching.as_dict() == expected, res.job_id
    info = solver.cache_info()
    assert info["entries"] == 1
    assert info["hits"] + info["misses"] == len(jobs)


def test_freeze_is_idempotent_and_unfrozen_sets_stay_mutable():
    _, objects = random_instance(1, 5, 2, seed=78)
    assert not objects.is_frozen
    objects.capacities = [2] * len(objects)  # mutable before freeze
    objects.freeze()
    assert objects.freeze() is objects  # idempotent
    assert isinstance(objects.points, tuple)
    assert isinstance(objects.capacities, tuple)


def test_process_peak_concurrency_folds_under_the_guard():
    """Regression: the process-executor paths fold the child pool's
    ``peak_concurrency`` into the solver's counter *while holding*
    ``_concurrency_guard`` — an unguarded read-modify-write there could
    lose an update racing the thread path's ``_run_job``."""
    solver = BatchSolver(executor="process")

    class StubProcess:
        @property
        def peak_concurrency(self):
            # read happens inside the max() fold; the guard must be held
            assert solver._concurrency_guard.locked()
            return 7

        def solve_many(self, jobs):
            return list(jobs)

        def solve_one(self, job):
            return job

    solver._ensure_process = lambda: StubProcess()
    assert solver.solve_many(["j1", "j2"]) == ["j1", "j2"]
    assert solver.peak_concurrency == 7
    assert solver.solve_one("j3") == "j3"
    assert solver.peak_concurrency == 7
