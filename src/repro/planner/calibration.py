"""The checked-in cost-model calibration table.

Coefficient rows are ordered like
:data:`repro.planner.profile.FEATURE_NAMES`::

    (intercept, log|F|, log|O|, log dims,
     object_correlation, weight_skew, log capacity_ratio)

and parameterize ``log(seconds)``; see :mod:`repro.planner.cost`.

Fit by ``benchmarks/bench_planner.py --calibrate`` over a grid of
generated instance shapes (cardinality sweep × dimensionality ×
distribution × capacity skew); the grid, host and date are recorded in
``BENCH_planner.json`` next to the regret numbers measured against
this very table.  Re-run calibration after touching any engine hot
path, or on a deployment host whose constant factors differ wildly.
"""

from __future__ import annotations

#: Identifies which fit produced the table (surfaced in ``explain()``).
CALIBRATION_VERSION = "2026-07-28"

#: Per-config power-law coefficients (see module docstring for order).
#: Fit on the 12-cell BASE_GRID of ``benchmarks/bench_planner.py``
#: (ridge-regularized; see the ``pr5_planner`` row of
#: ``BENCH_planner.json`` for the regret this table achieves).
CALIBRATION: dict[str, tuple[float, ...]] = {
    "sb": (
        -10.285759,
        0.538244,
        0.714973,
        0.654006,
        -1.432602,
        -0.100690,
        0.007725,
    ),
    "sb-update": (
        -14.361152,
        0.736554,
        1.543989,
        2.447710,
        -2.033175,
        -0.370041,
        -1.144705,
    ),
    "sb-deltasky": (
        -12.621170,
        0.794619,
        1.424194,
        1.557621,
        -1.689681,
        -0.359629,
        -1.023042,
    ),
    "sb-two-skylines": (
        -10.624808,
        0.316746,
        1.098800,
        -0.057633,
        -1.240715,
        -0.341247,
        -0.414988,
    ),
    "chain": (
        -13.300466,
        0.900542,
        1.149199,
        0.893191,
        -1.205440,
        -0.180561,
        -0.734513,
    ),
}

#: Pessimistic fallback for configs without a calibrated row: a large
#: intercept keeps an uncalibrated config from outranking measured
#: ones while still producing a finite, explainable estimate.
DEFAULT_ROW: tuple[float, ...] = (0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0)

__all__ = ["CALIBRATION", "CALIBRATION_VERSION", "DEFAULT_ROW"]
