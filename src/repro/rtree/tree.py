"""The R-tree proper.

A classic Guttman R-tree over a pluggable :class:`NodeStore`:

- ``insert`` with least-enlargement descent and quadratic split;
- ``delete`` with condense-tree (underfull nodes dissolved, their
  points reinserted);
- ``bulk_load`` via STR (:mod:`repro.rtree.bulk`);
- ``range_search`` / ``iter_items`` for verification.

Search algorithms that the paper builds *on top of* the tree (BBS
skylines, BRS ranked search) live in :mod:`repro.skyline` and
:mod:`repro.topk`; they traverse the tree through ``read_node`` so
every page touch is accounted.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from repro.rtree.bulk import str_bulk_load
from repro.rtree.geometry import Point, Rect
from repro.rtree.node import Node
from repro.rtree.store import NodeStore

MIN_FILL_RATIO = 0.4


class RTree:
    """R-tree over ``(object_id, point)`` items."""

    def __init__(self, store: NodeStore, dims: int):
        self.store = store
        self.dims = dims
        self.root_id: int | None = None
        self.height = 0
        self.size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, store: NodeStore, dims: int, items: Sequence[tuple[int, Point]]
    ) -> "RTree":
        tree = cls(store, dims)
        tree.root_id, tree.height = str_bulk_load(store, dims, items)
        tree.size = len(items)
        return tree

    def _min_fill(self, is_leaf: bool) -> int:
        cap = self.store.leaf_capacity if is_leaf else self.store.internal_capacity
        return max(1, math.floor(cap * MIN_FILL_RATIO))

    def _capacity(self, is_leaf: bool) -> int:
        return self.store.leaf_capacity if is_leaf else self.store.internal_capacity

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, oid: int, point: Sequence[float]) -> None:
        point = tuple(point)
        if len(point) != self.dims:
            raise ValueError(f"expected {self.dims}-D point, got {point}")
        if self.root_id is None:
            root = Node(self.store.allocate(), True, [(oid, point)])
            self.store.write_node(root)
            self.root_id = root.page_id
            self.height = 1
            self.size = 1
            return
        split = self._insert_rec(self.root_id, (oid, point))
        if split is not None:
            old_root = self.store.read_node(self.root_id)
            new_root = Node(
                self.store.allocate(),
                False,
                [(self.root_id, old_root.mbr()), split],
            )
            self.store.write_node(new_root)
            self.root_id = new_root.page_id
            self.height += 1
        self.size += 1

    def _insert_rec(
        self, page_id: int, entry: tuple[int, Point]
    ) -> tuple[int, Rect] | None:
        """Insert into the subtree at ``page_id``; returns the sibling
        entry ``(page_id, mbr)`` if this node split, else None."""
        node = self.store.read_node(page_id)
        if node.is_leaf:
            node.entries.append(entry)
            if len(node.entries) > self._capacity(True):
                return self._split(node)
            self.store.write_node(node)
            return None

        child_index = self._choose_subtree(node, Rect.from_point(entry[1]))
        child_id = node.entries[child_index][0]
        split = self._insert_rec(child_id, entry)
        child = self.store.read_node(child_id)
        node.entries[child_index] = (child_id, child.mbr())
        if split is not None:
            node.entries.append(split)
            if len(node.entries) > self._capacity(False):
                return self._split(node)
        self.store.write_node(node)
        return None

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """Least-enlargement child (ties: smaller area, then page id)."""
        best_index = 0
        best_key: tuple[float, float, int] | None = None
        for i, (cid, mbr) in enumerate(node.entries):
            key = (mbr.enlargement(rect), mbr.area(), cid)
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        return best_index

    def _split(self, node: Node) -> tuple[int, Rect]:
        """Guttman quadratic split; ``node`` keeps one group, a new
        sibling gets the other.  Returns the sibling's parent entry."""
        entries = node.entries
        rects = [
            Rect.from_point(payload) if node.is_leaf else payload
            for _, payload in entries
        ]

        # Seeds: the pair wasting the most area.
        n = len(entries)
        worst = -1.0
        seed_a, seed_b = 0, 1
        for i in range(n):
            for j in range(i + 1, n):
                waste = (
                    rects[i].union(rects[j]).area()
                    - rects[i].area()
                    - rects[j].area()
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j

        group_a = [seed_a]
        group_b = [seed_b]
        mbr_a, mbr_b = rects[seed_a], rects[seed_b]
        remaining = [i for i in range(n) if i not in (seed_a, seed_b)]
        min_fill = self._min_fill(node.is_leaf)

        while remaining:
            # Force-assign if a group must absorb all that's left.
            if len(group_a) + len(remaining) == min_fill:
                group_a.extend(remaining)
                for i in remaining:
                    mbr_a = mbr_a.union(rects[i])
                break
            if len(group_b) + len(remaining) == min_fill:
                group_b.extend(remaining)
                for i in remaining:
                    mbr_b = mbr_b.union(rects[i])
                break
            # Pick the entry with the strongest group preference.
            best_i = -1
            best_diff = -1.0
            for i in remaining:
                d_a = mbr_a.enlargement(rects[i])
                d_b = mbr_b.enlargement(rects[i])
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_i = i
            remaining.remove(best_i)
            d_a = mbr_a.enlargement(rects[best_i])
            d_b = mbr_b.enlargement(rects[best_i])
            if (d_a, mbr_a.area(), len(group_a)) <= (d_b, mbr_b.area(), len(group_b)):
                group_a.append(best_i)
                mbr_a = mbr_a.union(rects[best_i])
            else:
                group_b.append(best_i)
                mbr_b = mbr_b.union(rects[best_i])

        node.entries = [entries[i] for i in group_a]
        self.store.write_node(node)
        sibling = Node(
            self.store.allocate(), node.is_leaf, [entries[i] for i in group_b]
        )
        self.store.write_node(sibling)
        return sibling.page_id, sibling.mbr()

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, oid: int, point: Sequence[float]) -> bool:
        """Remove ``(oid, point)``; returns False if absent."""
        if self.root_id is None:
            return False
        point = tuple(point)
        orphans: list[tuple[int, Point]] = []
        removed = self._delete_rec(self.root_id, oid, point, orphans)
        if not removed:
            return False
        self.size -= 1

        root = self.store.read_node(self.root_id)
        if not root.is_leaf and len(root.entries) == 1:
            # Shrink the tree: promote the only child.
            old_root_id = self.root_id
            self.root_id = root.entries[0][0]
            self.store.free(old_root_id)
            self.height -= 1
        elif root.is_leaf and not root.entries and not orphans:
            self.store.free(self.root_id)
            self.root_id = None
            self.height = 0

        for orphan_oid, orphan_point in orphans:
            self.size -= 1  # insert() re-adds it
            self.insert(orphan_oid, orphan_point)
        return True

    def _delete_rec(
        self,
        page_id: int,
        oid: int,
        point: Point,
        orphans: list[tuple[int, Point]],
    ) -> bool:
        node = self.store.read_node(page_id)
        if node.is_leaf:
            idx = node.find_leaf_entry(oid, point)
            if idx < 0:
                return False
            del node.entries[idx]
            self.store.write_node(node)
            return True

        for i, (child_id, mbr) in enumerate(node.entries):
            if not mbr.contains_point(point):
                continue
            if not self._delete_rec(child_id, oid, point, orphans):
                continue
            child = self.store.read_node(child_id)
            if len(child.entries) < self._min_fill(child.is_leaf):
                # Dissolve the underfull child; reinsert its points.
                orphans.extend(self._collect_points(child_id))
                self._free_subtree(child_id)
                del node.entries[i]
            else:
                node.entries[i] = (child_id, child.mbr())
            self.store.write_node(node)
            return True
        return False

    def _collect_points(self, page_id: int) -> list[tuple[int, Point]]:
        node = self.store.read_node(page_id)
        if node.is_leaf:
            return list(node.entries)
        out: list[tuple[int, Point]] = []
        for child_id, _ in node.entries:
            out.extend(self._collect_points(child_id))
        return out

    def _free_subtree(self, page_id: int) -> None:
        node = self.store.read_node(page_id)
        if not node.is_leaf:
            for child_id, _ in node.entries:
                self._free_subtree(child_id)
        self.store.free(page_id)

    # ------------------------------------------------------------------
    # Queries / inspection
    # ------------------------------------------------------------------

    def root(self) -> Node | None:
        return None if self.root_id is None else self.store.read_node(self.root_id)

    def mbr(self) -> Rect | None:
        root = self.root()
        return None if root is None or not root.entries else root.mbr()

    def range_search(self, rect: Rect) -> list[tuple[int, Point]]:
        """All items whose point lies inside ``rect``."""
        if self.root_id is None:
            return []
        out: list[tuple[int, Point]] = []
        stack = [self.root_id]
        while stack:
            node = self.store.read_node(stack.pop())
            if node.is_leaf:
                out.extend(
                    (oid, p) for oid, p in node.entries if rect.contains_point(p)
                )
            else:
                stack.extend(
                    cid for cid, mbr in node.entries if mbr.intersects(rect)
                )
        return out

    def iter_items(self) -> Iterator[tuple[int, Point]]:
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            node = self.store.read_node(stack.pop())
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.child_ids())

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural violation (tests)."""
        if self.root_id is None:
            assert self.height == 0 and self.size == 0
            return
        count = self._check_node(self.root_id, self.height, is_root=True)
        assert count == self.size, f"size {self.size} != leaf count {count}"

    def _check_node(self, page_id: int, level: int, is_root: bool = False) -> int:
        node = self.store.read_node(page_id)
        assert node.entries, f"empty node {page_id}"
        cap = self._capacity(node.is_leaf)
        assert len(node.entries) <= cap, f"node {page_id} over capacity"
        if not is_root:
            assert len(node.entries) >= self._min_fill(node.is_leaf), (
                f"node {page_id} underfull: {len(node.entries)}"
            )
        if node.is_leaf:
            assert level == 1, f"leaf {page_id} at level {level}"
            return len(node.entries)
        count = 0
        for child_id, mbr in node.entries:
            child = self.store.read_node(child_id)
            actual = child.mbr()
            assert mbr.contains_rect(actual), (
                f"parent MBR {mbr} does not contain child {actual}"
            )
            count += self._check_node(child_id, level - 1)
        return count
