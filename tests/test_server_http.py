"""Unit tests for the stdlib HTTP framing and the route table."""

import asyncio

import pytest

from repro.errors import SerdeError
from repro.server.http import ProtocolError, Request, Response, read_request
from repro.server.router import Router


def parse(raw: bytes, **kwargs):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


def test_parse_get_with_query():
    request = parse(b"GET /v1/diff?a=one&b=two%20x HTTP/1.1\r\nHost: h\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/v1/diff"
    assert request.query == {"a": "one", "b": "two x"}
    assert request.headers["host"] == "h"
    assert request.body == b""
    assert request.keep_alive  # HTTP/1.1 default


def test_parse_post_with_body_and_connection_close():
    raw = (
        b"POST /v1/problems HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 8\r\n"
        b"Connection: close\r\n"
        b"\r\n"
        b'{"a": 1}'
    )
    request = parse(raw)
    assert request.body == b'{"a": 1}'
    assert request.json() == {"a": 1}
    assert not request.keep_alive


def test_http_1_0_defaults_to_close():
    request = parse(b"GET / HTTP/1.0\r\n\r\n")
    assert not request.keep_alive
    request = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
    assert request.keep_alive


def test_eof_before_any_byte_is_clean_none():
    assert parse(b"") is None


def test_malformed_request_line_raises():
    with pytest.raises(ProtocolError):
        parse(b"NOT-HTTP\r\n\r\n")
    with pytest.raises(ProtocolError):
        parse(b"GET / SPDY/3\r\n\r\n")


def test_header_without_colon_raises():
    with pytest.raises(ProtocolError):
        parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n")


def test_body_limit_yields_413():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw, max_body_bytes=10)
    assert excinfo.value.status == 413


def test_truncated_body_raises():
    with pytest.raises(ProtocolError):
        parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")


def test_oversized_request_line_is_431_not_valueerror():
    """Regression: StreamReader's internal line limit raises a bare
    ValueError; read_request must convert it into a 431 protocol error
    instead of crashing the connection task."""
    raw = b"GET /" + b"a" * 70_000 + b" HTTP/1.1\r\n\r\n"
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 431


def test_oversized_header_line_is_431():
    raw = b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 70_000 + b"\r\n\r\n"
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 431


def test_chunked_transfer_encoding_is_rejected_up_front():
    """Regression: an undecoded chunked body would be parsed as the
    next request on a keep-alive stream; reject with 411 and close."""
    raw = (
        b"POST /v1/solve HTTP/1.1\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"\r\n"
        b"4\r\nbody\r\n0\r\n\r\n"
    )
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 411


def test_malformed_json_body_is_serde_error():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oops"[:-1]
    request = parse(raw)
    with pytest.raises(SerdeError):
        request.json()
    assert parse(b"GET / HTTP/1.1\r\n\r\n").json(default={}) == {}


def test_response_encode_round_trips_through_parser():
    wire = Response.json({"x": 1}, status=201).encode(keep_alive=True)
    head, _, body = wire.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 201 Created")
    assert b"Connection: keep-alive" in head
    assert body == b'{"x": 1}\n'


def test_router_extracts_path_params():
    router = Router()

    async def handler(request, pid):
        return Response.json({"pid": pid})

    router.add("GET", "/v1/problems/{pid}", handler)
    request = Request("GET", "/v1/problems/abc123", {}, {}, b"", True)
    resolved = router.dispatch(request)
    assert not isinstance(resolved, Response)
    _, params = resolved
    assert params == {"pid": "abc123"}


def test_router_404_and_405():
    router = Router()

    async def handler(request):
        return Response.json({})

    router.add("POST", "/v1/solve", handler)
    missing = router.dispatch(Request("GET", "/nope", {}, {}, b"", True))
    assert isinstance(missing, Response) and missing.status == 404
    wrong_verb = router.dispatch(Request("GET", "/v1/solve", {}, {}, b"", True))
    assert isinstance(wrong_verb, Response) and wrong_verb.status == 405
    assert wrong_verb.headers["Allow"] == "POST"


def test_router_placeholder_does_not_cross_segments():
    router = Router()

    async def handler(request, jid):
        return Response.json({})

    router.add("GET", "/v1/jobs/{jid}", handler)
    nested = router.dispatch(Request("GET", "/v1/jobs/a/solution", {}, {}, b"", True))
    assert isinstance(nested, Response) and nested.status == 404
