"""Trace context + spans: follow one solve across every tier.

A *trace* is one logical request — a client solve, a gateway forward
chain, the engine run it lands on — identified by a 32-hex ``trace_id``.
Each timed unit of work inside it is a *span* (16-hex ``span_id``)
pointing at its parent span, so the pieces reassemble into a tree even
when they were recorded by different processes.

The context crosses boundaries two ways:

- **in-process** — a :mod:`contextvars` pair: the current
  :class:`TraceContext` (what a new span becomes a child of) and the
  active :class:`SpanCollector` (where finished spans are published).
  ``contextvars`` propagate through ``asyncio`` task creation and
  ``asyncio.to_thread``; crossing a bare ``ThreadPoolExecutor.submit``
  needs an explicit ``contextvars.copy_context().run`` (the session
  facade does this for its solve pool).
- **over the wire** — the ``X-Repro-Trace: {trace_id}:{span_id}``
  header.  :class:`~repro.server.client.Client` attaches it on every
  request and the serving layers adopt it as the root span's parent,
  so a gateway forward (and its failover re-forwards) become child
  spans of the caller's request span.

Publishing is collector-gated: without an active collector a span
still times its block and maintains the context (so headers stay
coherent), but nothing is retained — the no-observer cost is one
``urandom`` id read and two ``perf_counter`` reads per span.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import re
import threading
import time
from dataclasses import dataclass, field

#: The wire header carrying ``{trace_id}:{span_id}``.
TRACE_HEADER = "X-Repro-Trace"

_HEADER_RE = re.compile(r"^([0-9a-f]{32}):([0-9a-f]{16})$")


# Raw urandom hex, not uuid4: ids only need uniqueness, and skipping
# the UUID object construction roughly halves the per-span cost on the
# request hot path.
def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagated pair: which trace, which span to parent under."""

    trace_id: str
    span_id: str

    def header(self) -> str:
        return f"{self.trace_id}:{self.span_id}"

    @classmethod
    def parse(cls, value: str | None) -> "TraceContext | None":
        """Parse a wire header; malformed or absent values yield
        ``None`` (a fresh trace starts rather than an error — trace
        plumbing must never fail a request)."""
        if not value:
            return None
        match = _HEADER_RE.match(value.strip())
        if match is None:
            return None
        return cls(trace_id=match.group(1), span_id=match.group(2))


@dataclass(slots=True)
class Span:
    """One timed unit of work inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    #: Wall-clock start (``time.time()``), for cross-process ordering.
    started: float
    duration_seconds: float | None = None
    status: str = "ok"
    error: str | None = None
    attributes: dict = field(default_factory=dict)
    #: Stamped by the recording :class:`~repro.obs.store.TraceStore`
    #: with its owner's node id, so stitched trees show where each
    #: span ran.
    node: str | None = None

    def to_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started": self.started,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "node": self.node,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out


class SpanCollector:
    """Thread-safe sink for the finished spans of one request.

    One collector is installed per served request; spans finishing on
    session pool threads (the context was copied there) publish into
    the same object, hence the lock.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        with self._guard:
            self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        with self._guard:
            return list(self._spans)

    def __len__(self) -> int:
        with self._guard:
            return len(self._spans)


_context: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)
_collector: contextvars.ContextVar[SpanCollector | None] = contextvars.ContextVar(
    "repro_span_collector", default=None
)


def current_context() -> TraceContext | None:
    return _context.get()


def current_collector() -> SpanCollector | None:
    return _collector.get()


@contextlib.contextmanager
def collecting(collector: SpanCollector, parent: TraceContext | None = None):
    """Install ``collector`` (and optionally a wire-derived parent
    context) for the duration of a request's handling."""
    collector_token = _collector.set(collector)
    context_token = _context.set(parent) if parent is not None else None
    try:
        yield collector
    finally:
        if context_token is not None:
            _context.reset(context_token)
        _collector.reset(collector_token)


class span:
    """Time a block as a span of the current trace.

    Starts a fresh trace when no context exists (this is what
    "generated at Client / AssignmentSession entry" means in practice:
    the first span on a bare call path mints the trace id).  The span
    becomes the current context inside the block, so nested spans and
    outbound requests parent under it.  Exceptions mark the span
    ``status="error"`` and re-raise.

    A hand-rolled context manager, not ``@contextlib.contextmanager``:
    spans wrap every request and every engine phase, and skipping the
    generator trampoline roughly halves the per-span cost.
    """

    __slots__ = ("_name", "_attributes", "_span", "_token", "_clock_start")

    def __init__(self, name: str, **attributes):
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> Span:
        parent = _context.get()
        trace_id = parent.trace_id if parent is not None else new_trace_id()
        s = Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=self._name,
            started=time.time(),
            attributes=self._attributes,
        )
        self._span = s
        self._token = _context.set(TraceContext(trace_id, s.span_id))
        self._clock_start = time.perf_counter()
        return s

    def __exit__(self, exc_type, exc, tb) -> bool:
        s = self._span
        s.duration_seconds = time.perf_counter() - self._clock_start
        if exc is not None:
            s.status = "error"
            s.error = f"{type(exc).__name__}: {exc}"
        _context.reset(self._token)
        sink = _collector.get()
        if sink is not None:
            sink.add(s)
        return False


def derived_span(parent: Span, name: str, duration_seconds: float, **attributes):
    """Publish a child span reconstructed from already-measured timing
    (the engine's phase accumulators) rather than a live block.

    Derived spans share their parent's start time — phase accumulators
    sum disjoint slices of the parent, not a contiguous interval — and
    are marked ``attributes["derived"]=True`` so renderers can say so.
    """
    sink = _collector.get()
    if sink is None:
        return None
    s = Span(
        trace_id=parent.trace_id,
        span_id=new_span_id(),
        parent_id=parent.span_id,
        name=name,
        started=parent.started,
        duration_seconds=duration_seconds,
        attributes={"derived": True, **attributes},
    )
    sink.add(s)
    return s


def attach_engine_spans(parent: Span, stats) -> None:
    """Fan a :class:`~repro.core.types.RunStats` out under an
    ``engine.solve`` span: one derived child per round-loop phase, and
    the paper's counters (I/O accesses, loops) as span attributes."""
    if stats is None:
        return
    parent.attributes.setdefault("io_accesses", stats.io.physical_reads)
    parent.attributes.setdefault("logical_reads", stats.io.logical_reads)
    parent.attributes.setdefault("loops", stats.loops)
    parent.attributes.setdefault("engine_cpu_seconds", stats.cpu_seconds)
    for phase_name, seconds in getattr(stats, "phases", {}).items():
        derived_span(parent, f"engine.{phase_name}", seconds)


__all__ = [
    "TRACE_HEADER",
    "Span",
    "SpanCollector",
    "TraceContext",
    "attach_engine_spans",
    "collecting",
    "current_collector",
    "current_context",
    "derived_span",
    "new_span_id",
    "new_trace_id",
    "span",
]
