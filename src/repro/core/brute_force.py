"""Brute Force stable assignment (paper Section 4.1).

One incremental top-1 search (BRS) per function, with the *resuming*
improvement the paper describes: each function keeps its search heap,
so when its top object is taken by another function the search resumes
instead of restarting.  A global heap over every function's current
best candidate yields the next stable pair: the globally best
(function, object) pair is stable by Property 2.

Costs exactly as the paper reports: the numerous top-1 searches make
it I/O-heavy (2–3 orders of magnitude above SB), and the per-function
search heaps make it the most memory-hungry method ("this is the
sacrifice for its ability to resume searches").
"""

from __future__ import annotations

import heapq
import time

from repro.core.capacity import CapacityTracker
from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.data.instances import FunctionSet
from repro.ordering import pair_key
from repro.storage.stats import BYTES_PER_HEAP_ENTRY, MemoryTracker
from repro.topk.brs import BRSSearch


def brute_force_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    function_scan_pages: int = 0,
) -> AssignmentResult:
    """Compute the stable matching by |F| resumable top-1 searches.

    ``function_scan_pages`` charges a one-time sequential read of a
    disk-resident function set (Section 7.6's swapped-storage setting,
    where Brute Force must at least scan F once to issue its queries).
    """
    start = time.perf_counter()
    io_before = index.stats.snapshot()
    mem = MemoryTracker()
    matching = Matching()
    caps = CapacityTracker(functions, index.objects)

    assigned_objects: set[int] = set()  # tombstones shared by all searches
    searches: dict[int, BRSSearch] = {}
    brs_heap_bytes = 0  # incremental sum over all per-function heaps

    # Global heap: each alive function contributes its current best
    # candidate pair; entries are (pair_key, fid, oid, score).
    global_heap: list = []
    loops = 0
    top1_searches = 0

    def advance(fid: int) -> None:
        """(Re)compute fid's best remaining object and push it."""
        nonlocal brs_heap_bytes, top1_searches
        search = searches.get(fid)
        if search is None:
            search = BRSSearch(
                index.tree, functions.effective_weights(fid), assigned_objects
            )
            searches[fid] = search
        brs_heap_bytes -= search.memory_bytes()
        nxt = search.next()
        brs_heap_bytes += search.memory_bytes()
        top1_searches += 1
        mem.set_gauge("brs_heaps", brs_heap_bytes)
        if nxt is None:
            return  # objects exhausted; fid stays unmatched
        oid, point, s = nxt
        w = functions.effective_weights(fid)
        heapq.heappush(global_heap, (pair_key(s, w, fid, point, oid), fid, oid, s))
        mem.set_gauge("global_heap", len(global_heap) * BYTES_PER_HEAP_ENTRY)

    for fid in range(len(functions)):
        advance(fid)

    while global_heap and not caps.exhausted:
        loops += 1
        _, fid, oid, s = heapq.heappop(global_heap)
        if not caps.function_alive(fid):
            continue  # stale entry of an already-satisfied function
        if not caps.object_alive(oid):
            advance(fid)  # its candidate was taken: resume the search
            continue
        units, f_died, o_died = caps.assign(fid, oid)
        matching.add(fid, oid, s, units)
        if o_died:
            assigned_objects.add(oid)
        if f_died:
            search = searches.pop(fid, None)
            if search is not None:
                brs_heap_bytes -= search.memory_bytes()
                mem.set_gauge("brs_heaps", brs_heap_bytes)
        else:
            advance(fid)  # capacity left: find its next object

    io = index.stats.delta_since(io_before)
    io.physical_reads += function_scan_pages
    io.logical_reads += function_scan_pages
    stats = RunStats(
        io=io,
        cpu_seconds=time.perf_counter() - start,
        peak_memory_bytes=mem.peak_bytes,
        loops=loops,
        counters={"top1_searches": top1_searches},
    )
    return AssignmentResult(matching, stats)
