"""REP10x — lock discipline: guarded attributes stay guarded.

The serving tiers share one locking idiom: a class owns a
``threading.Lock`` attribute and every mutation of its shared state
happens inside ``with self._lock:``.  The invariant this rule infers
and enforces, per class:

- **lock attributes** are ``self`` attributes assigned a
  ``threading.Lock()`` / ``RLock()`` / ``Condition()`` (or declared as
  a dataclass field with one of those as ``default_factory``);
- an attribute is **guarded** if any method *writes* it inside a
  ``with self.<lock>:`` block — writes include plain and augmented
  assignment, subscript stores (``self._jobs[k] = v``), ``del``, and
  mutating method calls (``self._records.append(...)``);
- every other access to a guarded attribute (read or write, any
  method) must also sit inside a ``with self.<lock>:`` block.

``__init__`` / ``__post_init__`` / ``__new__`` are exempt: during
construction the instance is unshared by definition.  Deliberate
lock-free accesses (e.g. a benign racy read of a monotonic counter)
take the escape hatch ``# lint: unguarded-ok(reason)``.

Cross-*object* accesses (``backend.alive`` from another class) are out
of scope: the rule reasons per class, where the lock and the state it
guards are declared together.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding

RULE_UNGUARDED_READ = "REP101"
RULE_UNGUARDED_WRITE = "REP102"

#: Constructors whose result makes an attribute a lock.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Method names that mutate their receiver in place.  Receivers of
#: these calls count as *writes* when inferring the guarded set.
_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
    "update",
    "setdefault",
    "add",
    "move_to_end",
    "sort",
    "reverse",
}

#: Methods exempt from the outside-lock check (construction: the
#: instance is not yet shared).
_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


def _is_lock_factory(call: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` (imported name) and friends."""
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attribute(node: ast.expr, self_name: str) -> str | None:
    """``self.<attr>`` → attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _self_name(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = func.args.posonlyargs + func.args.args
    if not args:
        return None
    return args[0].arg


def _iter_methods(
    cls: ast.ClassDef,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of ``self`` attributes holding locks, however declared."""
    locks: set[str] = set()
    # Dataclass-style: ``_guard: threading.Lock = field(default_factory=...)``
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        annotation = node.annotation
        name = (
            annotation.attr
            if isinstance(annotation, ast.Attribute)
            else annotation.id
            if isinstance(annotation, ast.Name)
            else None
        )
        if name in _LOCK_FACTORIES:
            locks.add(node.target.id)
    # Imperative style: ``self._guard = threading.Lock()`` anywhere.
    for method in _iter_methods(cls):
        self_name = _self_name(method)
        if self_name is None:
            continue
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign) and _is_lock_factory(stmt.value):
                for target in stmt.targets:
                    attr = _self_attribute(target, self_name)
                    if attr is not None:
                        locks.add(attr)
    return locks


class _MethodWalker(ast.NodeVisitor):
    """Walks one method tracking ``with self.<lock>:`` nesting depth.

    Subclasses hook :meth:`handle_access`; ``kind`` is ``"write"`` for
    assignment/mutation targets and ``"read"`` otherwise.
    """

    def __init__(self, self_name: str, locks: set[str]) -> None:
        self.self_name = self_name
        self.locks = locks
        self.depth = 0
        #: self attributes written at the current position.
        self._write_attrs: set[int] = set()

    # -- hook ----------------------------------------------------------

    def handle_access(self, attr: str, node: ast.expr, kind: str) -> None:
        raise NotImplementedError

    # -- lock tracking -------------------------------------------------

    def _holds(self, item: ast.withitem) -> bool:
        return _self_attribute(item.context_expr, self.self_name) in self.locks

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        held = any(self._holds(item) for item in node.items)
        for item in node.items:
            self.visit(item)
        if held:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if held:
            self.depth -= 1

    # Nested defs get fresh self bindings; don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- access classification -----------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attribute(node, self.self_name)
        if attr is not None and attr not in self.locks:
            kind = (
                "write"
                if isinstance(node.ctx, (ast.Store, ast.Del))
                or id(node) in self._write_attrs
                else "read"
            )
            self.handle_access(attr, node, kind)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self._x[k] = v`` / ``del self._x[k]`` mutate self._x.
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            attr_node = node.value
            if _self_attribute(attr_node, self.self_name) is not None:
                self._write_attrs.add(id(attr_node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # ``self._x.append(v)`` mutates self._x.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            receiver = func.value
            if _self_attribute(receiver, self.self_name) is not None:
                self._write_attrs.add(id(receiver))
        self.generic_visit(node)


class _GuardedCollector(_MethodWalker):
    """Pass 1: attributes written while a class lock is held."""

    def __init__(self, self_name: str, locks: set[str]) -> None:
        super().__init__(self_name, locks)
        self.guarded: set[str] = set()

    def handle_access(self, attr: str, node: ast.expr, kind: str) -> None:
        if kind == "write" and self.depth > 0:
            self.guarded.add(attr)


class _ViolationCollector(_MethodWalker):
    """Pass 2: accesses to guarded attributes outside any class lock."""

    def __init__(
        self,
        self_name: str,
        locks: set[str],
        guarded: set[str],
        scope: str,
        path: str,
    ) -> None:
        super().__init__(self_name, locks)
        self.guarded = guarded
        self.scope = scope
        self.path = path
        self.findings: list[Finding] = []
        self._seen: set[tuple[int, int, str]] = set()

    def handle_access(self, attr: str, node: ast.expr, kind: str) -> None:
        if attr not in self.guarded or self.depth > 0:
            return
        key = (node.lineno, node.col_offset, attr)
        if key in self._seen:
            return
        self._seen.add(key)
        if kind == "write":
            rule, what, severity = RULE_UNGUARDED_WRITE, "written", "error"
        else:
            rule, what, severity = RULE_UNGUARDED_READ, "read", "warning"
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=node.lineno,
                column=node.col_offset,
                scope=self.scope,
                severity=severity,
                message=(
                    f"guarded attribute 'self.{attr}' {what} outside its "
                    f"lock ({what} under 'with self.<lock>:' elsewhere in "
                    f"class {self.scope.split('.')[0]})"
                ),
            )
        )


def check_locks(tree: ast.Module, path: str) -> list[Finding]:
    """Run the lock-discipline rule over one parsed module."""
    findings: list[Finding] = []
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        locks = _lock_attrs(cls)
        if not locks:
            continue
        guarded: set[str] = set()
        walkers: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]] = []
        for method in _iter_methods(cls):
            self_name = _self_name(method)
            if self_name is None:
                continue
            collector = _GuardedCollector(self_name, locks)
            for stmt in method.body:
                collector.visit(stmt)
            guarded |= collector.guarded
            walkers.append((method, self_name))
        if not guarded:
            continue
        for method, self_name in walkers:
            if method.name in _CONSTRUCTORS:
                continue
            violations = _ViolationCollector(
                self_name,
                locks,
                guarded,
                scope=f"{cls.name}.{method.name}",
                path=path,
            )
            for stmt in method.body:
                violations.visit(stmt)
            findings.extend(violations.findings)
    return findings


__all__ = [
    "RULE_UNGUARDED_READ",
    "RULE_UNGUARDED_WRITE",
    "check_locks",
]
