"""Capacity semantics (Section 6.1): tracker + unit-expansion law."""

import pytest

from repro import build_object_index, solve
from repro.core.capacity import CapacityTracker
from repro.core.reference import greedy_assign
from repro.data.instances import FunctionSet, ObjectSet

from .conftest import random_instance


class TestCapacityTracker:
    def _tracker(self, fcaps, ocaps):
        nf, no = len(fcaps), len(ocaps)
        fs = FunctionSet([(0.5, 0.5)] * nf, capacities=fcaps)
        os_ = ObjectSet([(0.5, 0.5)] * no, capacities=ocaps)
        return CapacityTracker(fs, os_)

    def test_min_decrement(self):
        t = self._tracker([3], [2])
        units, f_died, o_died = t.assign(0, 0)
        assert units == 2
        assert not f_died and o_died
        assert t.function_capacity(0) == 1
        assert t.object_capacity(0) == 0

    def test_both_die_on_equal_capacity(self):
        t = self._tracker([2], [2])
        units, f_died, o_died = t.assign(0, 0)
        assert units == 2 and f_died and o_died
        assert t.exhausted

    def test_assign_exhausted_rejected(self):
        t = self._tracker([1], [1])
        t.assign(0, 0)
        with pytest.raises(ValueError):
            t.assign(0, 0)

    def test_alive_counts(self):
        t = self._tracker([1, 1], [1])
        assert t.alive_functions == 2 and t.alive_objects == 1
        t.assign(0, 0)
        assert t.alive_functions == 1 and t.alive_objects == 0
        assert t.exhausted

    def test_default_capacity_is_one(self):
        fs = FunctionSet([(1.0,)])
        os_ = ObjectSet([(0.5,)])
        t = CapacityTracker(fs, os_)
        units, f_died, o_died = t.assign(0, 0)
        assert units == 1 and f_died and o_died


class TestUnitExpansionLaw:
    """A capacitated instance must solve identically to the expanded
    instance where every capacity unit is a distinct clone."""

    @pytest.mark.parametrize("seed", range(5))
    def test_expansion_equivalence(self, seed):
        fs, os_ = random_instance(5, 8, 3, seed=seed, capacities=True)

        # Expanded instance: clones with capacity 1.
        f_map, exp_w = [], []
        for fid in range(len(fs)):
            for _ in range(fs.capacity(fid)):
                f_map.append(fid)
                exp_w.append(fs.weights[fid])
        o_map, exp_p = [], []
        for oid in range(len(os_)):
            for _ in range(os_.capacity(oid)):
                o_map.append(oid)
                exp_p.append(os_.points[oid])

        capacitated = greedy_assign(fs, os_).matching.as_dict()
        expanded_raw = greedy_assign(
            FunctionSet(exp_w), ObjectSet(exp_p)
        ).matching.as_dict()

        # Aggregate clone pairs back to original ids.
        aggregated: dict = {}
        for (fc, oc), units in expanded_raw.items():
            key = (f_map[fc], o_map[oc])
            aggregated[key] = aggregated.get(key, 0) + units
        assert aggregated == capacitated

    def test_paper_example_identical_positions(self):
        """10 identical internship positions == one position with
        capacity 10 (Section 6.1's motivating case)."""
        fs = FunctionSet([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
        one = ObjectSet([(0.6, 0.7)], capacities=[10])
        many = ObjectSet([(0.6, 0.7)] * 10)

        m_one = greedy_assign(fs, one).matching
        m_many = greedy_assign(fs, many).matching
        assert m_one.num_units == m_many.num_units == 3
        # Same functions served, same scores.
        assert sorted(p.fid for p in m_one.pairs) == sorted(
            p.fid for p in m_many.pairs
        )


class TestCapacitatedSolvers:
    def test_function_capacity_grows_problem(self):
        """Figure 14(a,b): function capacity k multiplies the number of
        assigned units (k·|F| pairs when objects suffice)."""
        base_f, os_ = random_instance(5, 200, 3, seed=1)
        for k in (1, 2, 4):
            fs = FunctionSet(base_f.weights, capacities=[k] * len(base_f))
            idx = build_object_index(os_, page_size=512)
            matching, _ = solve(fs, idx, method="sb")
            assert matching.num_units == k * len(fs)

    def test_object_capacity_reduces_loops(self):
        """Figure 14(c,d): higher object capacity means fewer skyline
        updates (an object serves several functions before leaving)."""
        fs, base_o = random_instance(30, 60, 3, seed=2)
        loops = {}
        for k in (1, 8):
            os_ = ObjectSet(base_o.points, capacities=[k] * len(base_o))
            idx = build_object_index(os_, page_size=512)
            _, stats = solve(fs, idx, method="sb")
            loops[k] = stats.loops
        assert loops[8] <= loops[1]
