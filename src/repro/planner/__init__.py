"""repro.planner — the workload-adaptive planning layer.

Three pieces, consulted by every layer above the engine:

- :mod:`repro.planner.registry` — the one solver registry: each named
  method as a :class:`~repro.planner.registry.SolverSpec` (solve entry
  point, ``EngineConfig`` factory, option schema, cost-model key,
  plannability); ``repro.core.solve``, ``Problem`` validation and the
  server all dispatch from :data:`~repro.planner.registry.REGISTRY`;
- :mod:`repro.planner.profile` — the cheap, deterministic instance
  profiler (cardinalities, dimensionality, capacity ratio, attribute
  correlation, weight skew — stride-sampled, no RNG);
- :mod:`repro.planner.cost` / :mod:`repro.planner.calibration` — one
  calibrated power-law cost model per config, fit from the bench
  harness (``benchmarks/bench_planner.py --calibrate``) into a
  checked-in table.

``method="auto"`` (:data:`AUTO_METHOD`) threads through the whole
stack — ``Problem`` → ``AssignmentSession`` → ``BatchSolver`` /
``ProcessPoolSolver`` → ``repro-server`` — resolving exactly once per
solve key via :func:`plan_instance` and surfacing the decision as a
:class:`Plan` (``explain()``, the solve envelope, ``/metrics`` pick
counters).  The resolved run is bit-identical to invoking the chosen
config directly.
"""

from repro.planner.cost import CostModel, cost_model_for, fit_power_law
from repro.planner.plan import (
    CHURN_COST_KEYS,
    Plan,
    PlanCandidate,
    explicit_plan,
    plan_churn,
    plan_instance,
)
from repro.planner.profile import (
    FEATURE_NAMES,
    InstanceProfile,
    features,
    profile_instance,
)
from repro.planner.registry import (
    AUTO_METHOD,
    REGISTRY,
    SolverRegistry,
    SolverSpec,
)

__all__ = [
    "AUTO_METHOD",
    "CHURN_COST_KEYS",
    "CostModel",
    "FEATURE_NAMES",
    "InstanceProfile",
    "Plan",
    "PlanCandidate",
    "REGISTRY",
    "SolverRegistry",
    "SolverSpec",
    "cost_model_for",
    "explicit_plan",
    "features",
    "fit_power_law",
    "plan_churn",
    "plan_instance",
    "profile_instance",
]
