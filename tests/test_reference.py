"""Reference solvers: greedy oracle and Gale–Shapley internals."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reference import gale_shapley_assign, greedy_assign
from repro.core.validate import assert_stable
from repro.data.instances import FunctionSet, ObjectSet

from .conftest import random_instance


def test_greedy_emits_in_descending_score_order():
    fs, os_ = random_instance(8, 15, 3, seed=1)
    matching = greedy_assign(fs, os_).matching
    scores = [p.score for p in matching.pairs]
    assert scores == sorted(scores, reverse=True)


def test_greedy_first_pair_is_global_max():
    from repro.scoring import score

    fs, os_ = random_instance(6, 12, 3, seed=2)
    matching = greedy_assign(fs, os_).matching
    best = max(
        score(fs.effective_weights(f), p)
        for f in range(len(fs))
        for p in os_.points
    )
    assert matching.pairs[0].score == best


def test_greedy_pair_count():
    fs, os_ = random_instance(7, 4, 2, seed=3)
    assert greedy_assign(fs, os_).matching.num_units == 4


@pytest.mark.parametrize("seed", range(6))
def test_gale_shapley_equals_greedy(seed):
    fs, os_ = random_instance(
        9, 14, 3, seed=seed,
        capacities=(seed % 2 == 0),
        priorities=(seed % 3 == 0),
        tie_heavy=(seed % 2 == 1),
    )
    a = greedy_assign(fs, os_).matching
    b = gale_shapley_assign(fs, os_).matching
    assert a.as_dict() == b.as_dict()
    assert_stable(a, fs, os_)


def test_empty_sides():
    assert greedy_assign(FunctionSet([]), ObjectSet([(0.5,)])).matching.num_units == 0
    assert (
        gale_shapley_assign(FunctionSet([]), ObjectSet([(0.5,)])).matching.num_units
        == 0
    )
    assert greedy_assign(FunctionSet([(1.0,)]), ObjectSet([])).matching.num_units == 0


def test_matching_accessors():
    fs, os_ = random_instance(4, 6, 2, seed=4, capacities=True)
    matching = greedy_assign(fs, os_).matching
    for fid in range(len(fs)):
        units = sum(c for _, c in matching.object_of(fid))
        assert units <= fs.capacity(fid)
    for oid in range(len(os_)):
        units = sum(c for _, c in matching.function_of(oid))
        assert units <= os_.capacity(oid)
    assert matching.total_score() == pytest.approx(
        sum(p.score * p.count for p in matching.pairs)
    )


@given(
    st.integers(1, 8), st.integers(1, 12), st.integers(2, 3),
    st.integers(0, 10**6),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_gs_greedy_agree(nf, no, dims, seed):
    fs, os_ = random_instance(nf, no, dims, seed=seed, tie_heavy=True)
    assert (
        greedy_assign(fs, os_).matching.as_dict()
        == gale_shapley_assign(fs, os_).matching.as_dict()
    )
