"""I/O and memory accounting.

The paper's three evaluation metrics are (i) I/O cost in page
accesses, (ii) CPU time and (iii) the maximum memory consumed by the
search structures.  ``IOStats`` implements (i) and ``MemoryTracker``
implements (iii); CPU time is measured by the bench harness with
``time.perf_counter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for page-level I/O.

    ``physical_reads`` is the paper's "I/O accesses" metric: the number
    of page requests that missed the buffer and had to go to "disk".
    ``logical_reads`` counts every page request (hits + misses), which
    is useful to verify buffer behaviour (e.g. SB's read-once property
    makes its logical and physical counts coincide for any buffer).
    """

    physical_reads: int = 0
    logical_reads: int = 0
    physical_writes: int = 0

    @property
    def buffer_hits(self) -> int:
        return self.logical_reads - self.physical_reads

    def record_hit(self) -> None:
        self.logical_reads += 1

    def record_miss(self) -> None:
        self.logical_reads += 1
        self.physical_reads += 1

    def record_write(self) -> None:
        self.physical_writes += 1

    def reset(self) -> None:
        self.physical_reads = 0
        self.logical_reads = 0
        self.physical_writes = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.physical_reads, self.logical_reads, self.physical_writes)

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Return the counts accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            self.physical_reads - earlier.physical_reads,
            self.logical_reads - earlier.logical_reads,
            self.physical_writes - earlier.physical_writes,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"IOStats(reads={self.physical_reads}, hits={self.buffer_hits}, "
            f"writes={self.physical_writes})"
        )


@dataclass
class MemoryTracker:
    """Peak-memory accounting for an algorithm's search structures.

    Algorithms register named gauges (e.g. ``"ta_states"``,
    ``"plists"``, ``"topk_heaps"``) whose current byte sizes they update
    as they run; the tracker records the peak of the *sum*.  Sizes are
    estimates computed from entry counts via the ``BYTES_PER_*``
    constants below, mirroring how the paper charges each algorithm for
    its priority queues, pruned lists and TA states rather than for the
    whole process image.
    """

    gauges: dict[str, int] = field(default_factory=dict)
    peak_bytes: int = 0

    def set_gauge(self, name: str, nbytes: int) -> None:
        self.gauges[name] = nbytes
        total = self.current_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total

    def add(self, name: str, nbytes: int) -> None:
        self.set_gauge(name, self.gauges.get(name, 0) + nbytes)

    @property
    def current_bytes(self) -> int:
        return sum(self.gauges.values())

    def reset(self) -> None:
        self.gauges.clear()
        self.peak_bytes = 0


# Estimated per-entry sizes (bytes) for the search structures.  The
# exact constants only scale the memory metric; relative comparisons
# between algorithms are insensitive to them.
BYTES_PER_HEAP_ENTRY = 64  # (key, payload) tuple in a binary heap
BYTES_PER_PLIST_ENTRY = 48  # an (mbr/point, page id) pruned entry
BYTES_PER_LIST_POSITION = 16  # a cursor into a sorted coefficient list
BYTES_PER_SCORE_ENTRY = 32  # (score, id) pair kept in a TA heap


def heap_bytes(n_entries: int) -> int:
    """Estimated size of a binary heap with ``n_entries`` elements."""
    return n_entries * BYTES_PER_HEAP_ENTRY


def plist_bytes(n_entries: int) -> int:
    """Estimated size of ``n_entries`` pruned-list elements."""
    return n_entries * BYTES_PER_PLIST_ENTRY
