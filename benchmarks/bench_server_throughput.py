"""Serving-layer throughput: queued solves over a shared catalogue.

Boots an embedded repro-server, replays a Zipf-skewed
:func:`repro.data.generators.request_stream` workload (default: 200
async solves by 16 concurrent clients over one shared catalogue, so
the object R-tree is built once and every request reuses it), and
records requests/sec plus p50/p99 end-to-end latency into
``BENCH_server.json`` next to ``BENCH_engine.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py --label pr3_server
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import threading
import time
from pathlib import Path

from repro.data.generators import make_objects, request_stream
from repro.server import Client, ServerConfig, serve_in_thread

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def run_benchmark(
    requests: int,
    clients: int,
    n_objects: int,
    dims: int,
    max_cohort: int,
    seed: int,
) -> dict:
    catalogue = make_objects(n_objects, dims, "anti-correlated", seed=seed)
    workload = list(
        request_stream(
            requests,
            [catalogue],
            cohort_skew=1.5,
            max_cohort=max_cohort,
            seed=seed,
        )
    )
    handle = serve_in_thread(
        ServerConfig(
            port=0,
            queue_limit=max(64, requests),
            solution_cache_size=0,  # measure solves, not cache replays
        )
    )
    latencies: list[float] = []
    latency_guard = threading.Lock()

    def worker(worker_id: int) -> None:
        with Client(handle.base_url) as client:
            for request in workload[worker_id::clients]:
                from repro.api import Problem

                problem = Problem.from_sets(
                    request.catalogue, request.functions, method="sb"
                )
                started = time.perf_counter()
                job_id = client.submit(problem, timeout=120.0)
                client.result(job_id, timeout=300.0)
                with latency_guard:
                    latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    with Client(handle.base_url) as client:
        metrics = client.metrics()
    handle.close()

    assert len(latencies) == requests
    return {
        "requests": requests,
        "clients": clients,
        "n_objects": n_objects,
        "dims": dims,
        "max_cohort": max_cohort,
        "wall_seconds": wall,
        "requests_per_second": requests / wall,
        "latency_p50_seconds": percentile(latencies, 0.50),
        "latency_p99_seconds": percentile(latencies, 0.99),
        "latency_mean_seconds": statistics.fmean(latencies),
        "index_cache": metrics["index_cache"],
        "queue_peak_depth": metrics["queue"]["peak_depth"],
        "jobs_failed": metrics["queue"]["jobs_failed"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", required=True, help="snapshot name")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--objects", type=int, default=512)
    parser.add_argument("--dims", type=int, default=3)
    parser.add_argument("--max-cohort", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    snapshot = run_benchmark(
        args.requests, args.clients, args.objects, args.dims,
        args.max_cohort, args.seed,
    )
    snapshot["python"] = platform.python_version()

    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    results[args.label] = snapshot
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        f"{args.label}: {snapshot['requests_per_second']:.1f} req/s, "
        f"p50 {snapshot['latency_p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {snapshot['latency_p99_seconds'] * 1e3:.1f} ms "
        f"({snapshot['index_cache']['misses']} index build(s)) -> {RESULT_PATH}"
    )


if __name__ == "__main__":
    main()
