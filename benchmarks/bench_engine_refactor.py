"""Perf-trajectory baseline for the engine hot paths.

Runs the paper's Table 2 default configuration (scaled, see
``repro.bench.config``) through one or more registered solvers and
records wall-time / I/O / memory into ``BENCH_engine.json`` next to
this script.  Run once before a refactor with ``--label pre_refactor``
and once after with ``--label post_refactor``; later PRs append
further labelled snapshots so the repo carries its own perf
trajectory.

``--method`` accepts any registry name (see ``repro.planner.REGISTRY``)
and comma-separated lists, so one invocation produces comparable
scalar-vs-vectorized rows; ``--nf/--no/--dims`` override the Table 2
shape for sweep points beyond the default cell.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_refactor.py --label post_refactor
    PYTHONPATH=src python benchmarks/bench_engine_refactor.py \
        --label pr6_vectorized --method sb,sb-vec --repeats 5
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
from pathlib import Path

from repro.bench.config import current_scale, defaults
from repro.bench.harness import clear_caches, make_instance, run_cell
from repro.planner import REGISTRY

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def measure(
    method: str,
    repeats: int,
    nf: int | None = None,
    no: int | None = None,
    dims: int | None = None,
) -> dict:
    d = defaults()
    nf, no, dims = nf or d.nf, no or d.no, dims or d.dims
    functions, objects = make_instance(nf, no, dims, d.distribution, seed=2)
    cells = [
        run_cell(
            method,
            functions,
            objects,
            buffer_fraction=d.buffer_fraction,
            page_size=d.page_size,
        )
        for _ in range(repeats)
    ]
    times = [c.cpu_seconds for c in cells]
    return {
        "method": method,
        "scale": current_scale(),
        "nf": nf,
        "no": no,
        "dims": dims,
        "repeats": repeats,
        "wall_seconds_median": statistics.median(times),
        "wall_seconds_min": min(times),
        "io_accesses": cells[0].io,
        "peak_memory_bytes": cells[0].memory_bytes,
        "loops": cells[0].loops,
        "pairs": cells[0].pairs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label", required=True,
        help="snapshot name, e.g. pre_refactor / post_refactor",
    )
    parser.add_argument(
        "--method", default="sb",
        help="registry method name, or a comma-separated list of them",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--nf", type=int, help="override Table 2 |F|")
    parser.add_argument("--no", type=int, dest="no_", help="override Table 2 |O|")
    parser.add_argument("--dims", type=int, help="override Table 2 D")
    args = parser.parse_args()

    methods = [m.strip() for m in args.method.split(",") if m.strip()]
    for method in methods:
        REGISTRY.validate(method, None)

    clear_caches()
    rows = []
    for method in methods:
        snapshot = measure(
            method, args.repeats, nf=args.nf, no=args.no_, dims=args.dims
        )
        snapshot["python"] = platform.python_version()
        rows.append(snapshot)

    results = {}
    if RESULT_PATH.exists():
        results = json.loads(RESULT_PATH.read_text())
    # A single-method run keeps the historical flat-dict snapshot
    # shape; multi-method runs store the comparable rows as a list.
    results[args.label] = rows[0] if len(rows) == 1 else rows
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    for snapshot in rows:
        print(
            f"{args.label}[{snapshot['method']}] "
            f"{snapshot['nf']}x{snapshot['no']} d={snapshot['dims']}: "
            f"{snapshot['wall_seconds_median']:.3f}s median "
            f"({snapshot['io_accesses']} page reads) -> {RESULT_PATH}"
        )


if __name__ == "__main__":
    main()
