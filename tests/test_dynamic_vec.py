"""The columnar churn backend: three-way bit-identity (vectorized ==
interpreted == from-scratch) after every event, the per-side partner
indexes, the cumulative churn counters, and ``plan_churn`` routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AssignmentSession,
    FunctionArrived,
    FunctionDeparted,
    ObjectArrived,
    ObjectDeparted,
    Problem,
)
from repro.core.dynamic import DynamicStableMatching
from repro.data.generators import churn_stream, make_functions, make_objects
from repro.data.instances import FunctionSet, ObjectSet
from repro.kernels.dynamic import INITIAL_ROWS, MutableColumns
from repro.planner import CHURN_COST_KEYS, plan_churn

from .conftest import random_instance


def from_scratch(source: DynamicStableMatching) -> DynamicStableMatching:
    """The oracle: an interpreted bulk solve of the live population."""
    dyn = DynamicStableMatching()
    for fid in sorted(source._weights):
        dyn._register_function(fid, source._weights[fid], source._f_caps[fid])
    for oid in sorted(source._points):
        dyn._register_object(oid, source._points[oid], source._o_caps[oid])
    dyn._rematch_from(0)
    return dyn


def assert_three_way(interp: DynamicStableMatching, vec: DynamicStableMatching):
    assert interp._pairs == vec._pairs
    assert interp._keys == vec._keys
    assert interp.suffix_rematch_count == vec.suffix_rematch_count
    assert interp._pairs == from_scratch(interp)._pairs


def drive(dyn: DynamicStableMatching, event) -> None:
    if isinstance(event, ObjectArrived):
        dyn.add_object(event.point, capacity=event.capacity)
    elif isinstance(event, ObjectDeparted):
        dyn.remove_object(event.oid)
    elif isinstance(event, FunctionArrived):
        effective = tuple(x * event.priority for x in event.weights)
        dyn.add_function(effective, capacity=event.capacity)
    else:
        dyn.remove_function(event.fid)


# ---------------------------------------------------------------------------
# Tentpole: bit-identity of the vectorized backend
# ---------------------------------------------------------------------------


def test_seeded_stream_three_way_identity():
    functions = make_functions(8, 3, seed=2, capacities=[2] * 8)
    objects = make_objects(40, 3, seed=3)
    interp = DynamicStableMatching.from_instance(functions, objects)
    vec = DynamicStableMatching.from_instance(functions, objects, backend="vec")
    assert_three_way(interp, vec)
    for event in churn_stream(
        60, functions, objects, max_capacity=3, max_priority=2, seed=4
    ):
        drive(interp, event)
        drive(vec, event)
        assert_three_way(interp, vec)


def test_vec_backend_departing_both_sides_to_empty():
    vec = DynamicStableMatching(backend="vec")
    interp = DynamicStableMatching()
    for dyn in (interp, vec):
        f = dyn.add_function((0.5, 0.5), capacity=2)
        o = dyn.add_object((1.0, -0.5))
        dyn.remove_object(o)
        dyn.remove_function(f)
    assert interp._pairs == vec._pairs == []
    assert vec.num_functions == 0 and vec.num_objects == 0


@st.composite
def churn_scenario(draw):
    dims = draw(st.integers(1, 3))
    value = st.sampled_from([0.0, 0.25, 0.5, 1.0])  # tie-heavy on purpose
    coord = st.sampled_from([-1.0, -0.5, 0.0, 0.5, 1.0, 0.25])
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("af"),
                    st.tuples(*[value] * dims),
                    st.integers(1, 3),  # capacity
                    st.integers(1, 3),  # priority
                ),
                st.tuples(
                    st.just("ao"),
                    st.tuples(*[coord] * dims),
                    st.integers(1, 3),
                    st.just(1),
                ),
                st.tuples(
                    st.just("rf"), st.just(()), st.integers(0, 99), st.just(1)
                ),
                st.tuples(
                    st.just("ro"), st.just(()), st.integers(0, 99), st.just(1)
                ),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return dims, ops


@given(churn_scenario())
@settings(max_examples=50, deadline=None)
def test_random_event_sequences_three_way_identity(scenario):
    """Arrivals/departures with multi-unit capacities and priority
    scaling: vec == interp == from-scratch oracle after every step."""
    _dims, ops = scenario
    interp = DynamicStableMatching()
    vec = DynamicStableMatching(backend="vec")
    live_f: list[int] = []
    live_o: list[int] = []
    for kind, values, n, priority in ops:
        if kind == "af":
            w = tuple(x * priority for x in values)
            assert interp.add_function(w, n) == vec.add_function(w, n)
            live_f.append(interp._next_f - 1)
        elif kind == "ao":
            assert interp.add_object(values, n) == vec.add_object(values, n)
            live_o.append(interp._next_o - 1)
        elif kind == "rf" and live_f:
            fid = live_f.pop(n % len(live_f))
            interp.remove_function(fid)
            vec.remove_function(fid)
        elif kind == "ro" and live_o:
            oid = live_o.pop(n % len(live_o))
            interp.remove_object(oid)
            vec.remove_object(oid)
        assert_three_way(interp, vec)


def test_vec_backend_rejects_mixed_dims():
    vec = DynamicStableMatching(backend="vec")
    vec.add_object((1.0, 2.0))
    with pytest.raises(ValueError):
        vec.add_object((1.0, 2.0, 3.0))


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        DynamicStableMatching(backend="bogus")


# ---------------------------------------------------------------------------
# Satellite: O(deg) partner indexes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["interp", "vec"])
def test_partner_maps_match_pair_scan(backend):
    functions, objects = random_instance(6, 25, 3, seed=7, capacities=True)
    dyn = DynamicStableMatching.from_instance(functions, objects, backend=backend)
    for event in churn_stream(30, functions, objects, max_capacity=2, seed=8):
        drive(dyn, event)
        for fid in dyn._weights:
            expected = [(o, u) for _, f, o, _, u in dyn._pairs if f == fid]
            assert dyn.partner_of_function(fid) == expected
        for oid in dyn._points:
            expected = [(f, u) for _, f, o, _, u in dyn._pairs if o == oid]
            assert dyn.partner_of_object(oid) == expected


# ---------------------------------------------------------------------------
# Satellite: cumulative churn counters
# ---------------------------------------------------------------------------


def test_churn_counters_accumulate():
    functions, objects = random_instance(4, 12, 2, seed=9)
    dyn = DynamicStableMatching.from_instance(functions, objects)
    # Seeding is not an event and rematches nothing cumulative.
    assert dyn.events_applied == 0
    assert dyn.pairs_rematched == 0
    assert dyn.full_rematches == 0

    expected_rematched = 0
    oid = dyn.add_object((2.0, 2.0))  # beats everything: full rematch
    expected_rematched += dyn.suffix_rematch_count
    assert dyn.events_applied == 1
    assert dyn.full_rematches == 1
    dyn.remove_object(oid)
    expected_rematched += dyn.suffix_rematch_count
    info = dyn.churn_info()
    assert info["events_applied"] == 2
    assert info["pairs_rematched"] == expected_rematched
    assert info["backend"] == "interp"
    assert info["kernel_score_cells"] == 0  # interpreted path

    vec = DynamicStableMatching.from_instance(functions, objects, backend="vec")
    vec.add_object((2.0, 2.0))
    assert vec.churn_info()["kernel_score_cells"] > 0


def test_rejected_event_does_not_count():
    dyn = DynamicStableMatching()
    dyn.add_function((1.0,))
    with pytest.raises(KeyError):
        dyn.remove_object(99)
    with pytest.raises(ValueError):
        dyn.add_object((1.0,), capacity=0)
    assert dyn.events_applied == 1


# ---------------------------------------------------------------------------
# Mutable columnar store mechanics
# ---------------------------------------------------------------------------


def test_mutable_columns_recycle_and_grow():
    cols = MutableColumns()
    rows = [cols.add(h, (float(h), 1.0), 1) for h in range(INITIAL_ROWS)]
    assert cols.data.shape[0] == INITIAL_ROWS
    cols.remove(3)
    # The freed row is recycled before any growth.
    assert cols.add(100, (9.0, 9.0), 2) == rows[3]
    cols.add(101, (1.0, 1.0), 1)  # forces a doubling
    assert cols.data.shape[0] == 2 * INITIAL_ROWS
    # Grown arrays preserve previous rows and the handle maps.
    assert cols.data[cols.row_of[100]].tolist() == [9.0, 9.0]
    assert int(cols.handle_at[cols.row_of[100]]) == 100
    assert len(cols) == INITIAL_ROWS + 1
    with pytest.raises(ValueError):
        cols.add(100, (0.0, 0.0), 1)  # duplicate handle
    # max_abs is monotone: removals never shrink the tolerance scale.
    before = cols.max_abs
    cols.remove(100)
    assert cols.max_abs == before


# ---------------------------------------------------------------------------
# Session integration: backend routing, batches, counters, executors
# ---------------------------------------------------------------------------


def _problem(nf=5, no=20, dims=3, seed=13):
    fs, os_ = random_instance(nf, no, dims, seed=seed, capacities=True)
    return Problem.from_sets(os_, fs, method="sb")


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_session_backends_bit_identical(executor):
    problem = _problem()
    events = list(
        churn_stream(
            12,
            problem.function_set,
            problem.object_set,
            max_capacity=2,
            max_priority=2,
            seed=21,
        )
    )
    with AssignmentSession(
        problem, churn_backend="interp", executor=executor, max_workers=2
    ) as a, AssignmentSession(problem, churn_backend="vec") as b:
        for event in events:
            sa = a.apply(event)
            sb = b.apply(event)
            assert sa == sb  # Solution equality: pairs + method
            assert a.last_arrival_handles == b.last_arrival_handles
            assert a.last_diff == b.last_diff
        a.verify_current()
        b.verify_current()
        assert a.churn_info()["events_applied"] == len(events)
        assert a.churn_info()["backend"] == "interp"
        assert b.churn_info()["backend"] == "vec"


def test_session_apply_accepts_batches():
    problem = _problem()
    events = list(
        churn_stream(
            8, problem.function_set, problem.object_set, max_capacity=2, seed=5
        )
    )
    with AssignmentSession(problem, churn_backend="vec") as batched:
        with AssignmentSession(problem, churn_backend="interp") as stepped:
            for event in events:
                stepped.apply(event)
            solution = batched.apply(events)
            assert solution == stepped.current()
        arrivals = [
            e for e in events if isinstance(e, (ObjectArrived, FunctionArrived))
        ]
        assert len(batched.last_arrival_handles) == len(arrivals)
        stats = solution.stats
        assert stats is not None
        assert stats.counters["events_applied"] == len(events)
        assert "kernel_score_cells" in stats.counters
        assert "suffix_rematch_count" in stats.counters


def test_session_auto_resolves_churn_backend():
    problem = _problem(nf=3, no=12, dims=2)
    with AssignmentSession(problem) as session:
        session.apply(ObjectArrived(point=(0.5, 0.5)))
        plan = session.churn_plan
        assert plan is not None and plan.auto
        chosen = plan.options_dict()["backend"]
        assert chosen in ("interp", "vec")
        assert session.churn_info()["backend"] == chosen
        assert session.churn_info()["requested_backend"] == "auto"
        assert {c.method for c in plan.candidates} == set(CHURN_COST_KEYS.values())


def test_session_rejects_unknown_churn_backend():
    with pytest.raises(ValueError):
        AssignmentSession(_problem(), churn_backend="fast")


def test_has_churn_state_is_lazy():
    with AssignmentSession(_problem()) as session:
        assert not session.has_churn_state
        session.current()
        assert session.has_churn_state


# ---------------------------------------------------------------------------
# plan_churn
# ---------------------------------------------------------------------------


def test_plan_churn_is_deterministic_and_shape_sensitive():
    tiny_f = FunctionSet([(0.5, 0.5)] * 2)
    tiny_o = ObjectSet([(0.1, 0.2)] * 8)
    p1 = plan_churn(tiny_f, tiny_o)
    p2 = plan_churn(tiny_f, tiny_o)
    assert p1.method == p2.method
    assert p1.options_dict() == p2.options_dict()
    assert p1.options_dict()["backend"] == "interp"  # tiny: Python wins

    big_f = make_functions(100, 3, seed=2)
    big_o = make_objects(1000, 3, seed=3)
    assert plan_churn(big_f, big_o).options_dict()["backend"] == "vec"
