"""The typed exception hierarchy of the public API.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers of :mod:`repro.api` can catch one base
class at a service boundary.  Each concrete error *also* derives from
the builtin it historically surfaced as (``ValueError``, ``TypeError``,
``AttributeError``), so pre-existing ``except ValueError`` call sites
keep working unchanged.

This module is dependency-free on purpose: any layer (``core``,
``data``, ``engine``, ``service``) may import it without cycles.  The
same names are re-exported from :mod:`repro.api.errors`.
"""

from __future__ import annotations

from collections.abc import Iterable


class ReproError(Exception):
    """Base class of every error deliberately raised by repro."""


class InvalidProblemError(ReproError, ValueError):
    """A problem instance is structurally invalid (mismatched
    dimensionalities, weights not summing to 1, capacities < 1, ...)."""


class UnknownSolverError(ReproError, ValueError):
    """A solver / engine-config name is not registered."""

    def __init__(
        self,
        method: object,
        known: Iterable[str],
        kind: str = "solver",
    ) -> None:
        self.method = method
        self.known = tuple(sorted(known))
        super().__init__(
            f"unknown {kind} {method!r}; expected one of {list(self.known)}"
        )


class InvalidSolverOptionError(ReproError, TypeError):
    """A keyword override is not accepted by the selected solver."""

    def __init__(
        self,
        method: str,
        unknown: Iterable[str],
        accepted: Iterable[str],
        message: str | None = None,
    ) -> None:
        self.method = method
        self.unknown = tuple(sorted(unknown))
        self.accepted = tuple(sorted(accepted))
        if message is None:
            accepts = (
                f"accepts options {list(self.accepted)}"
                if self.accepted
                else "accepts no options"
            )
            message = (
                f"solver {method!r} got unknown option(s) "
                f"{list(self.unknown)}; it {accepts}"
            )
        super().__init__(message)


class SerdeError(ReproError, ValueError):
    """A serialized payload cannot be decoded (wrong schema tag,
    missing or unknown fields, malformed values)."""


class FrozenInstanceError(ReproError, AttributeError):
    """Mutation of a frozen instance container (an :class:`ObjectSet`
    submitted to the index cache, whose fingerprint is memoized)."""


class SessionClosedError(ReproError, RuntimeError):
    """An operation was attempted on a closed :class:`AssignmentSession`."""


class ServerError(ReproError):
    """A :mod:`repro.server` request failed.

    Raised client-side for any non-success HTTP status; ``status`` is
    the numeric code (``None`` for transport failures) and ``payload``
    the decoded error body when the server sent one.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        payload: object = None,
        trace_id: str | None = None,
    ) -> None:
        self.status = status
        self.payload = payload
        #: Trace id of the failed request (when the server echoed one),
        #: for ``repro-admin trace`` / ``GET /v1/traces/{id}`` lookup.
        self.trace_id = trace_id
        super().__init__(message)


class ServerBusyError(ServerError):
    """The server's job queue is saturated (HTTP 429); ``retry_after``
    is the server-suggested backoff in seconds."""

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        payload: object = None,
        trace_id: str | None = None,
    ) -> None:
        self.retry_after = float(retry_after)
        super().__init__(message, status=429, payload=payload, trace_id=trace_id)


class ServerUnavailableError(ServerError):
    """The service cannot currently reach a solver for this request
    (HTTP 503) — raised by the cluster gateway when a shard has no
    live owner.  Transient by design: ``retry_after`` is the suggested
    backoff in seconds, honoured by the client's polite-retry loop
    exactly like a 429."""

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        payload: object = None,
        trace_id: str | None = None,
    ) -> None:
        self.retry_after = float(retry_after)
        super().__init__(message, status=503, payload=payload, trace_id=trace_id)


__all__ = [
    "FrozenInstanceError",
    "InvalidProblemError",
    "InvalidSolverOptionError",
    "ReproError",
    "SerdeError",
    "ServerBusyError",
    "ServerError",
    "ServerUnavailableError",
    "SessionClosedError",
    "UnknownSolverError",
]
