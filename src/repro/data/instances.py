"""Instance containers for the assignment problem.

``ObjectSet`` holds the multidimensional objects ``O`` (larger values
are better in every attribute) and ``FunctionSet`` holds the linear
preference functions ``F`` (per-function weight vectors that sum to 1,
optional priorities γ and capacities, Sections 3 and 6 of the paper).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import FrozenInstanceError

Point = tuple[float, ...]


def _as_tuples(rows: Sequence[Sequence[float]]) -> list[Point]:
    return [tuple(float(x) for x in row) for row in rows]


@dataclass
class ObjectSet:
    """The object collection ``O``.

    ``capacities[i]`` is the number of identical copies of object ``i``
    (Section 6.1); ``None`` means capacity 1 everywhere.
    """

    points: list[Point]
    capacities: list[int] | None = None

    def __post_init__(self) -> None:
        self.points = _as_tuples(self.points)
        if self.points:
            dims = len(self.points[0])
            if any(len(p) != dims for p in self.points):
                raise ValueError("all object points must share one dimensionality")
        if self.capacities is not None:
            if len(self.capacities) != len(self.points):
                raise ValueError("capacities must align with points")
            if any(c < 1 for c in self.capacities):
                raise ValueError("object capacities must be >= 1")

    def __len__(self) -> int:
        return len(self.points)

    def freeze(self) -> "ObjectSet":
        """Make the catalogue immutable (idempotent; returns self).

        Called when the instance enters a fingerprint-keyed cache (the
        service layer memoizes the content hash on the instance, so a
        later mutation would silently reuse a stale cached index).
        ``points`` / ``capacities`` become tuples and rebinding either
        attribute raises :class:`~repro.errors.FrozenInstanceError`.
        """
        if not getattr(self, "_frozen", False):
            self.points = tuple(self.points)  # type: ignore[assignment]
            if self.capacities is not None:
                self.capacities = tuple(self.capacities)  # type: ignore[assignment]
            self._frozen = True
        return self

    @property
    def is_frozen(self) -> bool:
        return getattr(self, "_frozen", False)

    def __setattr__(self, name: str, value) -> None:
        if name in ("points", "capacities") and getattr(self, "_frozen", False):
            raise FrozenInstanceError(
                f"cannot rebind {name!r}: this ObjectSet was frozen when "
                "its fingerprint entered the index cache; build a new "
                "ObjectSet instead of mutating a submitted one"
            )
        super().__setattr__(name, value)

    @property
    def dims(self) -> int:
        if not self.points:
            raise ValueError("empty ObjectSet has no dimensionality")
        return len(self.points[0])

    def capacity(self, oid: int) -> int:
        return 1 if self.capacities is None else self.capacities[oid]

    @property
    def total_capacity(self) -> int:
        if self.capacities is None:
            return len(self.points)
        return sum(self.capacities)

    def items(self) -> list[tuple[int, Point]]:
        """``(object_id, point)`` pairs; ids are positional indices."""
        return list(enumerate(self.points))


@dataclass
class FunctionSet:
    """The preference-function collection ``F``.

    ``weights[i]`` are the normalized coefficients of function ``i``
    (they must sum to 1, Section 3).  ``gammas[i]`` is the priority of
    Section 6.2's Equation 2 (``None`` means γ=1 everywhere), and
    ``capacities`` follows Section 6.1.
    """

    weights: list[Point]
    gammas: list[float] | None = None
    capacities: list[int] | None = None
    _effective: list[Point] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.weights = _as_tuples(self.weights)
        if self.weights:
            dims = len(self.weights[0])
            if any(len(w) != dims for w in self.weights):
                raise ValueError("all weight vectors must share one dimensionality")
        for w in self.weights:
            if any(x < 0 for x in w):
                raise ValueError(f"weights must be non-negative, got {w}")
            if abs(sum(w) - 1.0) > 1e-6:
                raise ValueError(f"weights must sum to 1, got {w} (sum {sum(w)})")
        if self.gammas is not None:
            if len(self.gammas) != len(self.weights):
                raise ValueError("gammas must align with weights")
            if any(g <= 0 for g in self.gammas):
                raise ValueError("priorities must be positive")
        if self.capacities is not None:
            if len(self.capacities) != len(self.weights):
                raise ValueError("capacities must align with weights")
            if any(c < 1 for c in self.capacities):
                raise ValueError("function capacities must be >= 1")
        # Priority-scaled coefficients f.α'_i = f.α_i · f.γ (Section 6.2).
        if self.gammas is None:
            self._effective = self.weights
        else:
            self._effective = [
                tuple(a * g for a in w) for w, g in zip(self.weights, self.gammas)
            ]

    def __len__(self) -> int:
        return len(self.weights)

    @property
    def dims(self) -> int:
        if not self.weights:
            raise ValueError("empty FunctionSet has no dimensionality")
        return len(self.weights[0])

    def gamma(self, fid: int) -> float:
        return 1.0 if self.gammas is None else self.gammas[fid]

    @property
    def max_gamma(self) -> float:
        return 1.0 if self.gammas is None else max(self.gammas)

    def capacity(self, fid: int) -> int:
        return 1 if self.capacities is None else self.capacities[fid]

    @property
    def total_capacity(self) -> int:
        if self.capacities is None:
            return len(self.weights)
        return sum(self.capacities)

    def effective_weights(self, fid: int) -> Point:
        """γ-scaled coefficients (= plain weights when γ=1)."""
        return self._effective[fid]

    def all_effective_weights(self) -> list[Point]:
        return list(self._effective)

    def items(self) -> list[tuple[int, Point]]:
        """``(function_id, weights)`` pairs; ids are positional indices."""
        return list(enumerate(self.weights))
