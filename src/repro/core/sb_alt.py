"""SB-alt — batch best-pair search for disk-resident functions (Sec 7.6).

When ``F`` does not fit in memory, the sorted coefficient lists are
materialized on disk and per-object TA searches (each randomly probing
the lists) would thrash.  SB-alt instead runs *one* batch TA per
skyline version: lists are read round-robin one block at a time, each
newly seen function is random-accessed once and scored against *all*
not-yet-finished skyline objects, and objects retire individually as
their incumbents beat their thresholds.  Each function coefficient is
hence accessed at most once per skyline version — the huge I/O saving
of Figure 17.  Search resumption is *not* applied ("the best functions
are identified from scratch for each version of the skyline").

The object set is assumed memory-resident in this setting (build the
index with ``memory=True``); the reported I/O is the function-list
page traffic.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.capacity import CapacityTracker
from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult, Matching, RunStats
from repro.core.vectorized import MatrixView
from repro.data.instances import FunctionSet
from repro.ordering import FunctionKey, function_key, pair_key
from repro.scoring import SCORE_EPS, score
from repro.skyline.maintenance import UpdateSkylineManager
from repro.storage.stats import BYTES_PER_SCORE_ENTRY, MemoryTracker
from repro.topk.knapsack import tight_threshold
from repro.topk.sorted_lists import PagedCoefficientLists


def sb_alt_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    page_size: int = 4096,
    multi_pair: bool = True,
) -> AssignmentResult:
    """Skyline-based assignment with batch best-pair search over
    disk-resident coefficient lists."""
    start = time.perf_counter()
    io_before = index.stats.snapshot()
    mem = MemoryTracker()
    matching = Matching()
    caps = CapacityTracker(functions, index.objects)
    objects = index.objects

    if len(functions) == 0 or len(objects) == 0:
        return AssignmentResult(matching, RunStats())

    lists = PagedCoefficientLists(functions, page_size=page_size)
    manager = UpdateSkylineManager(index.tree, mem)
    skyline = manager.compute_initial()

    loops = 0
    batch_scans = 0
    while not caps.exhausted and skyline and lists.n_alive > 0:
        loops += 1
        fbest = _batch_best_functions(lists, objects, sorted(skyline), mem)
        batch_scans += 1
        if not fbest:
            break

        skyline_view = MatrixView.from_dict(skyline)
        candidate_fids = sorted({fid for fid, _ in fbest.values()})
        obest: dict[int, int] = {}
        for fid in candidate_fids:
            w = functions.effective_weights(fid)
            obest[fid] = skyline_view.best_for(w)[0]

        stable = [
            (fid, obest[fid], fbest[obest[fid]][1])
            for fid in candidate_fids
            if fbest[obest[fid]][0] == fid
        ]
        if not multi_pair:
            stable = [min(
                stable,
                key=lambda t: pair_key(
                    t[2], functions.effective_weights(t[0]), t[0],
                    objects.points[t[1]], t[1],
                ),
            )]

        removed_objects: list[int] = []
        for fid, oid, s in stable:
            units, f_died, o_died = caps.assign(fid, oid)
            matching.add(fid, oid, s, units)
            if f_died:
                lists.kill(fid)
            if o_died:
                removed_objects.append(oid)
        if removed_objects and not caps.exhausted:
            skyline = manager.remove(removed_objects)

    io = index.stats.delta_since(io_before)
    # Function-list traffic is the dominant I/O in this setting.
    io.physical_reads += lists.stats.physical_reads
    io.logical_reads += lists.stats.logical_reads
    stats = RunStats(
        io=io,
        cpu_seconds=time.perf_counter() - start,
        peak_memory_bytes=mem.peak_bytes,
        loops=loops,
        counters={
            "function_list_reads": lists.stats.physical_reads,
            "object_reads": index.stats.delta_since(io_before).physical_reads,
            "batch_scans": batch_scans,
        },
    )
    return AssignmentResult(matching, stats)


def _batch_best_functions(
    lists: PagedCoefficientLists,
    objects,
    sky_oids: list[int],
    mem: MemoryTracker,
) -> dict[int, tuple[int, float]]:
    """One batch TA pass: best alive function for every skyline object.

    Round-robin block reads over the D lists; every newly encountered
    alive function is random-accessed once and scored against all
    still-active objects; an object retires once its incumbent strictly
    beats its knapsack threshold.
    """
    dims = lists.dims
    points = {oid: objects.points[oid] for oid in sky_oids}
    positions = [0] * dims
    bounds = [lists.initial_bound(d) for d in range(dims)]
    seen: set[int] = set()
    incumbents: dict[int, tuple[FunctionKey, int]] = {}
    active = list(sky_oids)
    budget = lists.max_alive_gamma()

    # Vectorized view of the active objects; rebuilt when some retire.
    active_matrix = np.asarray([points[oid] for oid in active])
    inc_scores = np.full(len(active), -np.inf)

    def exhausted() -> bool:
        return all(positions[d] >= lists.length(d) for d in range(dims))

    d = 0
    while active and not exhausted():
        # Read the next block of the next non-exhausted list.
        for _ in range(dims):
            if positions[d] < lists.length(d):
                break
            d = (d + 1) % dims
        src = d
        end = min(positions[d] + lists.entries_per_page, lists.length(d))
        new_fids: list[int] = []
        while positions[d] < end:
            coef, fid = lists.entry(d, positions[d])  # charged sequentially
            positions[d] += 1
            bounds[d] = coef
            if fid not in seen:
                seen.add(fid)
                if lists.is_alive(fid):
                    new_fids.append(fid)
        d = (d + 1) % dims

        for fid in new_fids:
            # Collect the *remaining* coefficients by random access on
            # the other lists (charged); the values equal the
            # in-memory effective weights.
            for j in range(dims):
                if j != src:
                    lists.random_access(fid, j)
            w = lists.effective_weights(fid)
            # One matmul scores the function against every active
            # object; only objects within the rounding band of their
            # incumbent need exact canonical treatment.
            approx = active_matrix @ lists.weights_np[fid]
            for i in np.nonzero(approx >= inc_scores - SCORE_EPS)[0]:
                oid = active[i]
                s = score(w, points[oid])
                key = function_key(s, w, fid)
                cur = incumbents.get(oid)
                if cur is None or key < cur[0]:
                    incumbents[oid] = (key, fid)
                    inc_scores[i] = s

        # Retire objects whose incumbent beats the (updated) threshold.
        keep = []
        for i, oid in enumerate(active):
            cur = incumbents.get(oid)
            if cur is not None:
                t = tight_threshold(bounds, points[oid], budget=budget)
                if -cur[0][0] > t + SCORE_EPS:
                    continue
            keep.append(i)
        if len(keep) != len(active):
            active = [active[i] for i in keep]
            active_matrix = active_matrix[keep]
            inc_scores = inc_scores[keep]
        mem.set_gauge(
            "batch_incumbents", len(incumbents) * BYTES_PER_SCORE_ENTRY
        )

    return {
        oid: (fid, -key[0])
        for oid, (key, fid) in incumbents.items()
    }
