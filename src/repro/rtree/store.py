"""Node stores: where R-tree nodes live and how accesses are charged.

``DiskNodeStore`` keeps nodes in a :class:`PageFile` behind an
:class:`LRUBufferPool`; every ``read_node`` goes through the buffer so
that hits and physical reads are charged exactly like the paper's
setup.  A decoded-node cache avoids re-parsing bytes but never skips
the buffer (accounting is unaffected by it).

``MemoryNodeStore`` keeps nodes as Python objects — it models the
main-memory R-tree the Chain baseline builds over the function weights
(Section 7: "The CPU cost includes the construction cost of any
main-memory indexes").  Accesses are counted as logical reads only.
"""

from __future__ import annotations

from typing import Protocol

from repro.rtree.encoding import NodeCodec
from repro.rtree.node import Node
from repro.storage.buffer import LRUBufferPool
from repro.storage.pagefile import PageFile
from repro.storage.stats import IOStats


class NodeStore(Protocol):
    stats: IOStats
    leaf_capacity: int
    internal_capacity: int

    def allocate(self) -> int: ...

    def read_node(self, page_id: int) -> Node: ...

    def write_node(self, node: Node) -> None: ...

    def free(self, page_id: int) -> None: ...


class DiskNodeStore:
    """Disk-backed node store with buffered, accounted page access."""

    def __init__(
        self,
        dims: int,
        page_size: int = 4096,
        buffer_capacity: int = 0,
        stats: IOStats | None = None,
    ):
        self.stats = stats if stats is not None else IOStats()
        self.codec = NodeCodec(dims, page_size)
        self.pagefile = PageFile(page_size, self.stats)
        self.buffer = LRUBufferPool(self.pagefile, buffer_capacity)
        self._decoded: dict[int, Node] = {}

    @property
    def leaf_capacity(self) -> int:
        return self.codec.leaf_capacity

    @property
    def internal_capacity(self) -> int:
        return self.codec.internal_capacity

    @property
    def num_pages(self) -> int:
        return self.pagefile.num_pages

    def set_buffer_fraction(self, fraction: float) -> None:
        """Size the LRU buffer as a fraction of the current file size,
        as in the paper's "buffer = X% of the tree size"."""
        self.buffer.resize(int(self.pagefile.num_pages * fraction))

    def allocate(self) -> int:
        return self.pagefile.allocate()

    def read_node(self, page_id: int) -> Node:
        data = self.buffer.read(page_id)  # charged here (hit or miss)
        node = self._decoded.get(page_id)
        if node is None:
            node = self.codec.decode(page_id, data)
            self._decoded[page_id] = node
        return node

    def write_node(self, node: Node) -> None:
        self.buffer.write(node.page_id, self.codec.encode(node))
        self._decoded[node.page_id] = node

    def free(self, page_id: int) -> None:
        self.pagefile.free(page_id)
        self.buffer.invalidate(page_id)
        self._decoded.pop(page_id, None)


class MemoryNodeStore:
    """Main-memory node store: object references, logical counts only."""

    def __init__(self, dims: int, page_size: int = 4096, stats: IOStats | None = None):
        self.stats = stats if stats is not None else IOStats()
        # Fanout still follows the page layout so main-memory trees have
        # the same shape as their disk twins.
        codec = NodeCodec(dims, page_size)
        self.leaf_capacity = codec.leaf_capacity
        self.internal_capacity = codec.internal_capacity
        self._nodes: dict[int, Node] = {}
        self._next_id = 0

    @property
    def num_pages(self) -> int:
        return len(self._nodes)

    def allocate(self) -> int:
        pid = self._next_id
        self._next_id += 1
        self._nodes[pid] = Node(pid, True, [])
        return pid

    def read_node(self, page_id: int) -> Node:
        try:
            node = self._nodes[page_id]
        except KeyError:
            raise KeyError(f"node {page_id} was never allocated") from None
        self.stats.record_hit()
        return node

    def write_node(self, node: Node) -> None:
        if node.page_id not in self._nodes:
            raise KeyError(f"node {node.page_id} was never allocated")
        self._nodes[node.page_id] = node

    def free(self, page_id: int) -> None:
        if page_id not in self._nodes:
            raise KeyError(f"node {page_id} was never allocated")
        del self._nodes[page_id]
