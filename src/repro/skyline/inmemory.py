"""In-memory skyline maintenance (plist technique, no R-tree).

Used for the *function* skyline ``Fsky`` of the prioritized
two-skyline variant (Section 6.2): the function set lives in memory,
sees frequent deletions, and its skyline must be repaired cheaply.
This manager applies the same exclusive-dominance bookkeeping as
UpdateSkyline — every dominated item is parked under exactly one
skyline member and only orphaned items are re-examined on removal —
just without pages or MBRs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.rtree.geometry import dominates, sky_key_point

Vector = tuple[float, ...]


class InMemorySkylineManager:
    """Skyline over in-memory ``(id, vector)`` items with deletions."""

    def __init__(self, items: Sequence[tuple[int, Vector]]):
        self.skyline: dict[int, Vector] = {}
        self._plists: dict[int, list[tuple[int, Vector]]] = {}
        # Dominance-monotone order (strict even under float sum ties),
        # so dominators are placed before the items they dominate
        # (SFS-style).
        for ident, vec in sorted(
            items, key=lambda it: (sky_key_point(it[1]), it[0])
        ):
            owner = self._find_dominator(vec)
            if owner is None:
                self.skyline[ident] = vec
                self._plists[ident] = []
            else:
                self._plists[owner].append((ident, vec))

    def __len__(self) -> int:
        return len(self.skyline)

    def compute_initial(self) -> dict[int, Vector]:
        """The initial skyline (already computed eagerly on
        construction) — aligns this manager with the engine's
        :class:`repro.engine.protocols.SkylineMaintenance` protocol."""
        return self.skyline

    def _find_dominator(self, vec: Vector) -> int | None:
        best: int | None = None
        for sid, svec in self.skyline.items():
            if dominates(svec, vec) and (best is None or sid < best):
                best = sid
        return best

    def remove(self, idents: Iterable[int]) -> dict[int, Vector]:
        """Remove skyline members; orphaned dominated items are either
        re-homed or promoted, exactly like UpdateSkyline."""
        orphans: list[tuple[int, Vector]] = []
        for ident in idents:
            if ident not in self.skyline:
                raise KeyError(f"{ident} is not a current skyline member")
            del self.skyline[ident]
            orphans.extend(self._plists.pop(ident))

        # Promote in dominance-monotone order so orphan-vs-orphan
        # domination resolves correctly.
        for ident, vec in sorted(
            orphans, key=lambda it: (sky_key_point(it[1]), it[0])
        ):
            owner = self._find_dominator(vec)
            if owner is None:
                self.skyline[ident] = vec
                self._plists[ident] = []
            else:
                self._plists[owner].append((ident, vec))
        return self.skyline

    def memory_entries(self) -> int:
        """Total parked entries (for the memory metric)."""
        return sum(len(v) for v in self._plists.values())
