"""The fleet: hash ring + backends + the re-shard forwarding loop.

:class:`Fleet` is the gateway's routing brain.  A request keyed by
``instance_digest`` walks the ring's successor list, skipping backends
currently marked down, and runs its blocking client call on the first
live candidate.  A transport failure (connection refused/reset/timed
out, stale keep-alive the client could not revive) marks that backend
down *immediately* and re-shards to the next successor — mirroring the
pool-rebuild discipline of :mod:`repro.service.pool`, where a broken
worker pool is discarded and the job retried on a fresh one rather
than wedging every later request.  HTTP-level errors from a live
backend (400/404/409/429/…) are *not* failover events: the backend
answered; its answer propagates.

When the successor list is exhausted — every replica of the shard is
down — the request fails with the typed
:class:`~repro.errors.ServerUnavailableError`, which the gateway
surfaces as 503 + ``Retry-After`` (and the client's polite-retry loop
honours, riding out short full-fleet outages).

Retries are solve-safe: the engine is deterministic, so re-executing a
solve on a successor returns the bit-identical solution; re-submitting
a job after an ambiguous failure at worst leaves an orphaned job on a
dead node, which died with that node anyway.
"""

from __future__ import annotations

import http.client
import threading
from collections.abc import Callable
from typing import TypeVar

from repro.cluster.probe import Backend
from repro.cluster.ring import HashRing
from repro.errors import ServerUnavailableError

T = TypeVar("T")

#: Failures that mean "this backend is unreachable", triggering mark
#: down + re-shard.  OSError covers refused/reset/timeout sockets;
#: HTTPException covers keep-alive streams that died mid-exchange
#: after the client's own reconnect-once attempt.
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


class Fleet:
    """Routes keys to live backends; owns the re-shard discipline."""

    def __init__(
        self,
        addresses: tuple[str, ...] | list[str],
        *,
        vnodes: int = 256,
        forward_timeout: float = 120.0,
        probe_timeout: float = 2.0,
        down_after: int = 2,
        retry_after_seconds: float = 1.0,
    ):
        if not addresses:
            raise ValueError("a gateway needs at least one backend address")
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate backend addresses in {list(addresses)}")
        self.ring = HashRing(list(addresses), vnodes=vnodes)
        self.backends: dict[str, Backend] = {
            address: Backend(
                address,
                forward_timeout=forward_timeout,
                probe_timeout=probe_timeout,
                down_after=down_after,
            )
            for address in addresses
        }
        self.by_node_id: dict[str, Backend] = {
            backend.node_id: backend for backend in self.backends.values()
        }
        self.retry_after_seconds = retry_after_seconds
        self._guard = threading.Lock()
        # Fleet-level counters (gateway /metrics).
        self.forwards_total = 0
        self.reshards_total = 0
        self.no_owner_total = 0
        self.reregistrations_total = 0

    # -- routing -------------------------------------------------------

    def candidates(self, key: str) -> list[Backend]:
        """Live backends in the key's successor order."""
        return [
            self.backends[address]
            for address in self.ring.preference(key)
            if self.backends[address].alive
        ]

    def owner(self, key: str) -> Backend | None:
        """The key's current live owner (``None`` if the shard has no
        live replica)."""
        ordered = self.candidates(key)
        return ordered[0] if ordered else None

    def backend_for_job(self, job_id: str) -> tuple[Backend, str]:
        """Split a gateway job id ``{node_id}@{raw_id}`` and resolve
        the owning backend (polls route by prefix, without state)."""
        node_id, sep, raw_id = job_id.partition("@")
        backend = self.by_node_id.get(node_id) if sep else None
        if backend is None:
            raise KeyError(
                f"job id {job_id!r} does not carry a known backend prefix"
            )
        return backend, raw_id

    # -- forwarding ----------------------------------------------------

    def count_reregistration(self) -> None:
        with self._guard:
            self.reregistrations_total += 1

    def _no_live_owner(self, key: str) -> ServerUnavailableError:
        with self._guard:
            self.no_owner_total += 1
        return ServerUnavailableError(
            f"no live backend owns shard {key[:16]}…; "
            f"{len(self.backends)} configured, 0 reachable replicas",
            retry_after=self.retry_after_seconds,
        )

    def forward(self, key: str, fn: Callable[[Backend], T]) -> tuple[Backend, T]:
        """Run ``fn`` against the key's owner, re-sharding on death.

        Blocking — the gateway calls it via ``asyncio.to_thread``.
        Walks the successor list at most once: each transport failure
        marks the current candidate down (so the *next* ``owner()``
        lookup already skips it) and moves on; an exhausted list raises
        :class:`ServerUnavailableError`.
        """
        attempted: set[str] = set()
        while True:
            candidate = None
            for backend in self.candidates(key):
                if backend.address not in attempted:
                    candidate = backend
                    break
            if candidate is None:
                raise self._no_live_owner(key)
            attempted.add(candidate.address)
            try:
                result = fn(candidate)
            except TRANSPORT_ERRORS as exc:
                candidate.mark_down(f"{type(exc).__name__}: {exc}")
                with self._guard:
                    self.reshards_total += 1
                continue
            candidate.count_forward()
            with self._guard:
                self.forwards_total += 1
            return candidate, result

    def call(self, backend: Backend, fn: Callable[[Backend], T]) -> T:
        """Run ``fn`` against one specific backend (job polls — the
        record lives only there, so there is nowhere to re-shard to).
        A dead or dying backend surfaces as
        :class:`ServerUnavailableError`: the job may become reachable
        again if the backend recovers."""
        if not backend.alive:
            raise ServerUnavailableError(
                f"backend {backend.address} holding this job is down",
                retry_after=self.retry_after_seconds,
            )
        try:
            result = fn(backend)
        except TRANSPORT_ERRORS as exc:
            backend.mark_down(f"{type(exc).__name__}: {exc}")
            raise ServerUnavailableError(
                f"backend {backend.address} holding this job became "
                f"unreachable ({type(exc).__name__})",
                retry_after=self.retry_after_seconds,
            ) from exc
        backend.count_forward()
        with self._guard:
            self.forwards_total += 1
        return result

    # -- views / lifecycle ---------------------------------------------

    def alive_backends(self) -> list[Backend]:
        return [b for b in self.backends.values() if b.alive]

    def info(self) -> dict:
        with self._guard:
            counters = {
                "forwards_total": self.forwards_total,
                "reshards_total": self.reshards_total,
                "no_owner_total": self.no_owner_total,
                "reregistrations_total": self.reregistrations_total,
            }
        return {
            **counters,
            "backends_configured": len(self.backends),
            "backends_alive": len(self.alive_backends()),
            "ring": {
                "vnodes_per_backend": self.ring.vnodes,
                "points": len(self.backends) * self.ring.vnodes,
            },
        }

    def close(self) -> None:
        for backend in self.backends.values():
            backend.close()


__all__ = ["Fleet", "TRANSPORT_ERRORS"]
