"""Columnar incremental churn kernel — the vectorized twin of
:class:`repro.core.dynamic.DynamicStableMatching`'s rematch loop.

The interpreted dynamic maintainer re-runs a greedy pass over the
*suffix* participants of each event (sorted Python tuples, one
``score()`` per candidate pair).  This module re-expresses that suffix
rematch with the static kernels' machinery:

- a **mutable columnar instance** (:class:`MutableColumns` per side):
  preallocated float64 coordinate/weight matrices with amortized
  doubling growth and slot recycling, int64 residual-capacity vectors
  and alive masks, handles mapped to rows so arrays stay dense under
  arbitrary arrival/departure interleavings;
- the **mutual-best matmul round** of
  :class:`~repro.kernels.rounds.VectorizedMutualRound`: one
  ``free-functions × skyline`` score matrix per round answers both
  directions of the mutual-best test, with exact canonical
  tie-resolution inside summed-term-magnitude tolerance bands;
- the **reference-dominator skyline repair** of
  :class:`~repro.kernels.skyline.MaskSkyline`: exhausted objects leave
  the round skyline in O(orphans), not O(pool).

**Bit-identity discipline.**  The interpreted
``DynamicStableMatching`` stays the oracle: after every event the
emitted suffix — pair handles, float scores, units, and the canonical
pair-key order — is byte-equal to the interpreted rematch (and hence
to a from-scratch static re-solve).  Exactness comes from the PR 6
band rule: numpy argmaxes are trusted only when a single candidate
sits inside the rounding-error band; ambiguous bands (and every
emitted score) are resolved with scalar :func:`repro.scoring.score`
over the original Python tuples and the canonical orders of
:mod:`repro.ordering`.  Tolerance bands scale with *monotone running
maxima* of the absolute coordinates/weights ever admitted — an upper
bound of the live population's maxima, so departures can only widen
bands (more exact resolutions, never a wrong winner).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.kernels.skyline import MaskSkyline
from repro.ordering import PairKey, neg, pair_key
from repro.scoring import SCORE_EPS, score

#: Initial row allocation of a side's columnar arrays.
INITIAL_ROWS = 8


class MutableColumns:
    """One side's mutable columnar store: handle → recycled array row.

    Rows of departed handles go on a free stack and are reused by the
    next arrival; when no free row exists the arrays double (amortized
    O(1) per arrival, resident size O(peak live population)).
    """

    def __init__(self) -> None:
        self.dims: int | None = None
        self.data = np.zeros((0, 0), dtype=np.float64)
        self.caps = np.zeros(0, dtype=np.int64)
        self.alive = np.zeros(0, dtype=bool)
        #: row → handle for alive rows (-1 for free rows).
        self.handle_at = np.full(0, -1, dtype=np.int64)
        self.row_of: dict[int, int] = {}
        self._free: list[int] = []
        #: Monotone running max of |value| over every row ever added —
        #: the conservative scale of the exactness tolerance bands.
        self.max_abs = 0.0

    def __len__(self) -> int:
        return len(self.row_of)

    def _grow(self) -> None:
        old_rows = self.data.shape[0]
        new_rows = max(INITIAL_ROWS, 2 * old_rows)
        dims = self.dims if self.dims is not None else 0
        data = np.zeros((new_rows, dims), dtype=np.float64)
        data[:old_rows] = self.data
        self.data = data
        for name, fill in (("caps", 0), ("handle_at", -1)):
            old = getattr(self, name)
            arr = np.full(new_rows, fill, dtype=np.int64)
            arr[:old_rows] = old
            setattr(self, name, arr)
        alive = np.zeros(new_rows, dtype=bool)
        alive[:old_rows] = self.alive
        self.alive = alive
        self._free.extend(range(new_rows - 1, old_rows - 1, -1))

    def add(self, handle: int, values: Sequence[float], capacity: int) -> int:
        """Admit a handle; returns the row it occupies."""
        if handle in self.row_of:
            raise ValueError(f"handle {handle} already present")
        vals = np.asarray(values, dtype=np.float64)
        if self.dims is None:
            self.dims = int(vals.shape[0])
            self.data = np.zeros((self.data.shape[0], self.dims), dtype=np.float64)
        elif vals.shape[0] != self.dims:
            raise ValueError(
                f"expected {self.dims}-dimensional values, got {vals.shape[0]}"
            )
        if not self._free:
            self._grow()
        row = self._free.pop()
        self.data[row] = vals
        self.caps[row] = capacity
        self.alive[row] = True
        self.handle_at[row] = handle
        self.row_of[handle] = row
        if vals.size:
            self.max_abs = max(self.max_abs, float(np.abs(vals).max()))
        return row

    def remove(self, handle: int) -> None:
        row = self.row_of.pop(handle)
        self.alive[row] = False
        self.handle_at[row] = -1
        self._free.append(row)

    def live_rows(self) -> np.ndarray:
        """Rows of alive handles, ascending."""
        return np.nonzero(self.alive)[0]

    def rows_for(self, handles: Sequence[int]) -> np.ndarray:
        return np.asarray([self.row_of[h] for h in handles], dtype=np.intp)

    def nbytes(self) -> int:
        return int(
            self.data.nbytes
            + self.caps.nbytes
            + self.alive.nbytes
            + self.handle_at.nbytes
        )


class VectorizedChurnState:
    """The ``backend="vec"`` engine behind ``DynamicStableMatching``.

    Owns the two mutable columnar sides and runs the vectorized suffix
    rematch; the hosting ``DynamicStableMatching`` keeps the emitted
    pair log, position indexes and cut computation (shared with the
    interpreted backend), so the two backends differ *only* in how a
    suffix is re-matched and in how the event's best-key probe is
    evaluated.
    """

    def __init__(self) -> None:
        self.functions = MutableColumns()
        self.objects = MutableColumns()
        #: Cumulative score-matrix cells materialized by rematches and
        #: best-key probes (the churn analogue of the static kernels'
        #: ``kernel_score_cells`` counter).
        self.score_cells = 0
        #: Cumulative ambiguous tolerance bands resolved exactly.
        self.tie_resolutions = 0

    # -- event best-key probes -----------------------------------------

    def best_key_for_object(
        self, oid: int, exact_weights: Mapping[int, tuple[float, ...]]
    ) -> PairKey | None:
        """The best conceivable pair key of one object, over every live
        function — the arrival cut probe, one matvec instead of a
        Python loop."""
        rows = self.functions.live_rows()
        if rows.size == 0:
            return None
        point = self.objects.data[self.objects.row_of[oid]]
        scores = self.functions.data[rows] @ point
        self.score_cells += int(scores.size)
        tol = SCORE_EPS * max(1.0, self.functions.max_abs * float(np.abs(point).sum()))
        band = np.nonzero(scores >= scores.max() - tol)[0]
        if band.size > 1:
            self.tie_resolutions += 1
        exact_point = tuple(float(x) for x in point)
        best: PairKey | None = None
        for r in band:
            fid = int(self.functions.handle_at[rows[int(r)]])
            w = exact_weights[fid]
            key = pair_key(score(w, exact_point), w, fid, exact_point, oid)
            if best is None or key < best:
                best = key
        return best

    def best_key_for_function(
        self, fid: int, exact_points: Mapping[int, tuple[float, ...]]
    ) -> PairKey | None:
        """The best conceivable pair key of one function over every
        live object (the symmetric arrival probe)."""
        rows = self.objects.live_rows()
        if rows.size == 0:
            return None
        weights = self.functions.data[self.functions.row_of[fid]]
        scores = self.objects.data[rows] @ weights
        self.score_cells += int(scores.size)
        tol = SCORE_EPS * max(1.0, self.objects.max_abs * float(np.abs(weights).sum()))
        band = np.nonzero(scores >= scores.max() - tol)[0]
        if band.size > 1:
            self.tie_resolutions += 1
        exact_w = tuple(float(x) for x in weights)
        best: PairKey | None = None
        for r in band:
            oid = int(self.objects.handle_at[rows[int(r)]])
            p = exact_points[oid]
            key = pair_key(score(exact_w, p), exact_w, fid, p, oid)
            if best is None or key < best:
                best = key
        return best

    # -- the vectorized suffix rematch ---------------------------------

    def rematch(
        self,
        free_functions: Sequence[tuple[int, int]],
        free_objects: Sequence[tuple[int, int]],
        exact_weights: Mapping[int, tuple[float, ...]],
        exact_points: Mapping[int, tuple[float, ...]],
    ) -> list[tuple[PairKey, int, int, float, int]]:
        """Greedily re-match the suffix participants, vectorized.

        ``free_functions`` / ``free_objects`` are ``(handle, residual
        capacity)`` pairs with positive residuals.  Returns emitted
        ``(pair_key, fid, oid, score, units)`` tuples in ascending
        canonical pair order — byte-equal to the interpreted greedy
        over the same participants.
        """
        if not free_functions or not free_objects:
            return []
        fids = [h for h, _ in free_functions]
        oids = [h for h, _ in free_objects]
        fcap = np.asarray([c for _, c in free_functions], dtype=np.int64)
        ocap = np.asarray([c for _, c in free_objects], dtype=np.int64)
        weights = self.functions.data[self.functions.rows_for(fids)]
        points = self.objects.data[self.objects.rows_for(oids)]
        f_alive = fcap > 0
        sky = MaskSkyline(points)
        sky.compute_initial()
        max_abs_w = self.functions.max_abs
        max_abs_p = self.objects.max_abs

        emitted: list[tuple[int, int, float, int]] = []
        while True:
            alive_rows = np.nonzero(f_alive)[0]
            if alive_rows.size == 0:
                break
            sky_loc = sky.sky_indices()
            if sky_loc.size == 0:
                break
            sky_points = points[sky_loc]
            scores = weights[alive_rows] @ sky_points.T
            self.score_cells += int(scores.size)

            # -- fbest: canonically best free function per sky object.
            col_tol = SCORE_EPS * np.maximum(
                1.0, max_abs_w * np.abs(sky_points).sum(axis=1)
            )
            col_band = scores >= (scores.max(axis=0) - col_tol)[None, :]
            fbest = alive_rows[scores.argmax(axis=0)]
            fbest_exact: dict[int, float] = {}
            for j in np.nonzero(col_band.sum(axis=0) > 1)[0]:
                j = int(j)
                cand = alive_rows[np.nonzero(col_band[:, j])[0]]
                floc, exact = self._resolve_function(
                    cand, fids, exact_weights, exact_points[oids[int(sky_loc[j])]]
                )
                fbest[j] = floc
                fbest_exact[j] = exact

            # -- obest: canonically best sky object per candidate.
            cand_rows = np.unique(fbest)
            cand_scores = scores[np.searchsorted(alive_rows, cand_rows)]
            row_tol = SCORE_EPS * np.maximum(
                1.0, max_abs_p * np.abs(weights[cand_rows]).sum(axis=1)
            )
            row_band = cand_scores >= (cand_scores.max(axis=1) - row_tol)[:, None]
            obest = sky_loc[cand_scores.argmax(axis=1)]
            for t in np.nonzero(row_band.sum(axis=1) > 1)[0]:
                t = int(t)
                obest[t] = self._resolve_object(
                    sky_loc[np.nonzero(row_band[t])[0]],
                    oids,
                    exact_points,
                    exact_weights[fids[int(cand_rows[t])]],
                )

            # -- commit mutually-best pairs (vertex-disjoint within a
            #    round, so commit order cannot change the outcome).
            committed = False
            dead_objects: list[int] = []
            for t in range(len(cand_rows)):
                floc = int(cand_rows[t])
                oloc = int(obest[t])
                j = int(np.searchsorted(sky_loc, oloc))
                if int(fbest[j]) != floc:
                    continue
                fid = fids[floc]
                oid = oids[oloc]
                exact = fbest_exact.get(j)
                if exact is None:
                    exact = score(exact_weights[fid], exact_points[oid])
                units = int(min(fcap[floc], ocap[oloc]))
                fcap[floc] -= units
                ocap[oloc] -= units
                emitted.append((fid, oid, exact, units))
                committed = True
                if fcap[floc] == 0:
                    f_alive[floc] = False
                if ocap[oloc] == 0:
                    dead_objects.append(oloc)
            if dead_objects:
                sky.remove(np.asarray(dead_objects, dtype=np.intp))
            if not committed:
                # Unreachable: with both sides non-empty the globally
                # best pair is always mutual.  Guard the loop anyway.
                raise RuntimeError("vectorized rematch round made no progress")

        out = [
            (pair_key(s, exact_weights[fid], fid, exact_points[oid], oid),
             fid, oid, s, units)
            for fid, oid, s, units in emitted
        ]
        out.sort(key=lambda item: item[0])
        return out

    # -- exact canonical tie resolution --------------------------------

    def _resolve_function(
        self,
        cand_rows: np.ndarray,
        fids: list[int],
        exact_weights: Mapping[int, tuple[float, ...]],
        point: tuple[float, ...],
    ) -> tuple[int, float]:
        """Canonical winner of an fbest band (function_key order);
        returns the local row and its exact score."""
        self.tie_resolutions += 1
        best_key = None
        best_row = -1
        for r in cand_rows:
            r = int(r)
            w = exact_weights[fids[r]]
            key = (-score(w, point), neg(w), fids[r])
            if best_key is None or key < best_key:
                best_key = key
                best_row = r
        assert best_key is not None
        return best_row, -best_key[0]

    def _resolve_object(
        self,
        cand_locs: np.ndarray,
        oids: list[int],
        exact_points: Mapping[int, tuple[float, ...]],
        weights: tuple[float, ...],
    ) -> int:
        """Canonical winner of an obest band (object_key order)."""
        self.tie_resolutions += 1
        best_key = None
        best_loc = -1
        for loc in cand_locs:
            loc = int(loc)
            p = exact_points[oids[loc]]
            key = (-score(weights, p), neg(p), oids[loc])
            if best_key is None or key < best_key:
                best_key = key
                best_loc = loc
        return best_loc

    def nbytes(self) -> int:
        """Resident size of the mutable columnar arrays."""
        return self.functions.nbytes() + self.objects.nbytes()


__all__ = ["INITIAL_ROWS", "MutableColumns", "VectorizedChurnState"]
