"""The long-lived :class:`AssignmentSession` — solve, batch, churn.

A session binds one base :class:`~repro.api.problem.Problem` to the
service machinery: the instance-hash
:class:`~repro.service.batch.ObjectIndexCache` (so the catalogue's
R-tree is built once and shared across every solve), a
:class:`~repro.service.batch.BatchSolver` worker pool for
:meth:`solve_many`, a persistent executor for :meth:`submit` futures,
and a :class:`~repro.core.dynamic.DynamicStableMatching` behind
:meth:`apply` for incremental re-solve under object/function arrival
and departure.  Sessions are context managers; a closed session raises
:class:`~repro.errors.SessionClosedError`.
"""

from __future__ import annotations

import contextvars
from collections.abc import Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

from repro.api.events import (
    Event,
    FunctionArrived,
    FunctionDeparted,
    ObjectArrived,
    ObjectDeparted,
)
from repro.api.problem import Problem
from repro.api.solution import Solution, SolutionDiff
from repro.core.dynamic import CHURN_BACKENDS, DynamicStableMatching
from repro.core.types import RunStats
from repro.core.validate import assert_stable
from repro.data.instances import FunctionSet, ObjectSet
from repro.errors import InvalidProblemError, SessionClosedError
from repro.obs.trace import span
from repro.planner import AUTO_METHOD as _AUTO
from repro.planner import CHURN_COST_KEYS, Plan, explicit_plan, plan_churn
from repro.service.batch import BatchSolver, SolveJob

_DYNAMIC_METHOD = "dynamic"


def _check_weights(weights: Sequence[float], dims: int) -> tuple[float, ...]:
    w = tuple(float(x) for x in weights)
    if len(w) != dims:
        raise InvalidProblemError(f"expected {dims}-dimensional weights, got {len(w)}")
    if any(x < 0 for x in w):
        raise InvalidProblemError(f"weights must be non-negative, got {w}")
    if abs(sum(w) - 1.0) > 1e-6:
        raise InvalidProblemError(f"weights must sum to 1, got {w}")
    return w


class AssignmentSession:
    """One catalogue, many queries: the stateful service facade.

    ``solve()`` / ``solve_many()`` / ``submit()`` run static problems
    through the shared index cache; ``apply(events)`` maintains the
    matching incrementally under churn (starting from the base
    problem's population).  The two views are independent: ``solve``
    always answers for the immutable base problem, ``current()`` for
    the churned population.

    ``executor`` selects the solve backend: ``"thread"`` (default,
    one shared index cache) or ``"process"`` (per-worker index
    replicas, true multi-core parallelism over a shared catalogue,
    bit-identical results; see :mod:`repro.service.pool`).

    ``churn_backend`` selects the suffix-rematch engine behind
    ``apply``: ``"interp"``, ``"vec"`` (columnar kernels), or
    ``"auto"`` (default — the planner's churn cost models pick from
    the seed population's profile; see
    :func:`~repro.planner.plan_churn`).  Both backends maintain
    byte-identical matchings; cumulative cost counters are exposed by
    :meth:`churn_info` and on each snapshot's ``stats``.
    """

    def __init__(
        self,
        problem: Problem,
        *,
        max_workers: int | None = None,
        index_cache_size: int = 32,
        executor: str = "thread",
        churn_backend: str = _AUTO,
    ):
        if churn_backend != _AUTO and churn_backend not in CHURN_BACKENDS:
            raise ValueError(
                f"unknown churn backend {churn_backend!r}; expected "
                f"{_AUTO!r} or one of {CHURN_BACKENDS}"
            )
        self._problem = problem
        self._churn_backend = churn_backend
        self._churn_plan: Plan | None = None
        self._batch = BatchSolver(
            max_workers=max_workers,
            index_cache_size=index_cache_size,
            executor=executor,
        )
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._closing = False
        # Dynamic (churn) state, seeded lazily from the base problem.
        self._dynamic: DynamicStableMatching | None = None
        self._dyn_functions: dict[int, tuple[tuple[float, ...], float, int]] = {}
        self._dyn_objects: dict[int, tuple[tuple[float, ...], int]] = {}
        self._dyn_solution: Solution | None = None
        #: Handles assigned to the arrival events of the last
        #: :meth:`apply` call, in event order.
        self.last_arrival_handles: tuple[int, ...] = ()
        #: Diff produced by the last :meth:`apply` call.
        self.last_diff: SolutionDiff | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def problem(self) -> Problem:
        return self._problem

    @property
    def executor(self) -> str:
        """The execution backend: ``"thread"`` or ``"process"``."""
        return self._batch.executor

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain pending futures, release the pool; further operations
        raise.  Futures obtained from :meth:`submit` before ``close``
        still resolve — only *new* work is rejected while draining."""
        if self._closed or self._closing:
            return
        self._closing = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._batch.close()  # releases process-backend workers, if any
        self._closed = True

    def __enter__(self) -> "AssignmentSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("this AssignmentSession has been closed")

    # -- static solving ------------------------------------------------

    def _job_for(self, problem: Problem) -> SolveJob:
        return SolveJob(
            functions=problem.function_set,
            objects=problem.object_set,
            method=problem.method,
            page_size=problem.page_size,
            memory_index=problem.memory_index,
            buffer_fraction=problem.buffer_fraction,
            solve_kwargs=dict(problem.options),
            # For method="auto": the plan memoized on the immutable
            # Problem, so one solve key plans exactly once no matter
            # how many jobs it spawns.
            plan=problem.plan() if problem.method == _AUTO else None,
        )

    def warm(self) -> "AssignmentSession":
        """Pre-build (and cache) the base problem's object index.

        On the process backend this is a no-op: the replicas live in
        the worker processes, and a parent-side build would cost a full
        bulk-load that no solve ever reads.
        """
        self._check_open()
        if self._batch.executor != "thread":
            return self
        job = self._job_for(self._problem)
        self._batch.cache.get(job.objects, job.page_size, job.wants_memory_index)
        return self

    def solve(self, problem: Problem | None = None) -> Solution:
        """Solve the base problem (or an override) synchronously.

        The returned :attr:`Solution.method` is the *resolved* method
        that ran — for ``method="auto"`` problems the planner's pick,
        with the :class:`~repro.planner.Plan` attached as
        :attr:`Solution.plan`.
        """
        self._check_open()
        target = problem if problem is not None else self._problem
        with span("session.solve", method=target.method):
            job_result = self._batch.solve_one(self._job_for(target))
        return Solution.from_result(
            job_result.result,
            method=job_result.method,
            problem=target,
            plan=job_result.plan,
        )

    def solve_many(self, problems: Iterable[Problem]) -> list[Solution]:
        """Solve several problems on the worker pool (order preserved).

        Problems sharing this session's catalogue (e.g. derived via
        :meth:`Problem.with_method` / :meth:`Problem.with_functions`)
        share one cached object index.
        """
        self._check_open()
        targets = list(problems)
        results = self._batch.solve_many([self._job_for(p) for p in targets])
        return [
            Solution.from_result(r.result, method=r.method, problem=p, plan=r.plan)
            for p, r in zip(targets, results)
        ]

    def explain(self, problem: Problem | None = None) -> Plan:
        """The planner's :class:`~repro.planner.Plan` for a problem.

        For ``method="auto"`` this is the full decision artifact
        (profile, per-candidate estimates, pick); for an explicit
        method, the trivial plan.  Memoized on the problem — asking
        before or after :meth:`solve` costs one profile total.
        """
        self._check_open()
        target = problem if problem is not None else self._problem
        return target.plan()

    def submit(self, problem: Problem | None = None) -> Future:
        """Enqueue a solve; returns a ``Future[Solution]``."""
        self._check_open()
        if self._closing:
            raise SessionClosedError("this AssignmentSession is draining")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-session",
            )
        # Pool threads don't inherit contextvars; carry the caller's
        # trace context (and span collector) across the submit so the
        # solve's spans land in the submitting request's trace.
        context = contextvars.copy_context()
        return self._pool.submit(context.run, self.solve, problem)

    def cache_info(self) -> dict[str, int]:
        return self._batch.cache_info()

    # -- dynamic (churn) solving ---------------------------------------

    def _resolve_churn_plan(self) -> Plan:
        """The backend decision for this session's churn path.

        ``churn_backend="auto"`` consults the planner's churn cost
        models against the seed population's profile; an explicit
        backend produces the trivial plan.  The chosen backend name is
        in ``options["backend"]``.
        """
        if self._churn_backend == _AUTO:
            return plan_churn(
                self._problem.function_set, self._problem.object_set
            )
        return explicit_plan(
            CHURN_COST_KEYS[self._churn_backend],
            {"backend": self._churn_backend},
        )

    def _ensure_dynamic(self) -> DynamicStableMatching:
        if self._dynamic is None:
            problem = self._problem
            self._churn_plan = self._resolve_churn_plan()
            self._dynamic = DynamicStableMatching.from_instance(
                problem.function_set,
                problem.object_set,
                backend=self._churn_plan.options_dict()["backend"],
            )
            for fid, w in enumerate(problem.functions):
                self._dyn_functions[fid] = (
                    w,
                    problem.function_set.gamma(fid),
                    problem.function_set.capacity(fid),
                )
            for oid, p in enumerate(problem.objects):
                self._dyn_objects[oid] = (p, problem.object_set.capacity(oid))
            self._dyn_solution = self._snapshot_dynamic()
        return self._dynamic

    def _snapshot_dynamic(self) -> Solution:
        assert self._dynamic is not None
        info = self._dynamic.churn_info()
        stats = RunStats(
            counters={k: v for k, v in info.items() if isinstance(v, int)}
        )
        return Solution(
            pairs=tuple(self._dynamic.matching.pairs),
            method=_DYNAMIC_METHOD,
            stats=stats,
            plan=self._churn_plan,
        )

    def current(self) -> Solution:
        """The matching over the current (possibly churned) population."""
        self._check_open()
        self._ensure_dynamic()
        assert self._dyn_solution is not None
        return self._dyn_solution

    @property
    def has_churn_state(self) -> bool:
        """Whether :meth:`apply`/:meth:`current` has seeded the
        dynamic matching (cheap — never seeds it)."""
        return self._dynamic is not None

    def churn_info(self) -> dict[str, int | str]:
        """Cumulative churn counters (see
        :meth:`~repro.core.dynamic.DynamicStableMatching.churn_info`),
        plus what backend was requested and which one runs."""
        self._check_open()
        dyn = self._ensure_dynamic()
        info = dyn.churn_info()
        info["requested_backend"] = self._churn_backend
        return info

    @property
    def churn_plan(self) -> Plan | None:
        """The churn-backend :class:`~repro.planner.Plan` (``None``
        until the dynamic path is first touched)."""
        return self._churn_plan

    def apply(self, events: Event | Iterable[Event]) -> Solution:
        """Apply churn events and incrementally repair the matching.

        Accepts one event or an iterable; returns the new
        :class:`Solution`.  Handles assigned to arrivals are exposed as
        :attr:`last_arrival_handles`, the unit-level delta as
        :attr:`last_diff`.
        """
        self._check_open()
        dyn = self._ensure_dynamic()
        if isinstance(
            events,
            (ObjectArrived, ObjectDeparted, FunctionArrived, FunctionDeparted),
        ):
            events = [events]
        dims = self._problem.dims
        previous = self._dyn_solution
        arrivals: list[int] = []
        try:
            with span("session.apply", backend=dyn.backend):
                self._apply_events(dyn, events, dims, arrivals)
        finally:
            # Always resync the snapshot: a rejected event mid-batch
            # must not leave the cached solution stale relative to the
            # already-applied prefix.
            self._dyn_solution = self._snapshot_dynamic()
            self.last_arrival_handles = tuple(arrivals)
            self.last_diff = self._dyn_solution.diff(previous)
        return self._dyn_solution

    def _apply_events(
        self,
        dyn: DynamicStableMatching,
        events: Iterable[Event],
        dims: int,
        arrivals: list[int],
    ) -> None:
        for event in events:
            if isinstance(event, ObjectArrived):
                point = tuple(float(x) for x in event.point)
                if len(point) != dims:
                    raise InvalidProblemError(
                        f"expected {dims}-dimensional point, got {len(point)}"
                    )
                if event.capacity < 1:
                    raise InvalidProblemError("object capacity must be >= 1")
                oid = dyn.add_object(point, capacity=event.capacity)
                self._dyn_objects[oid] = (point, event.capacity)
                arrivals.append(oid)
            elif isinstance(event, ObjectDeparted):
                if event.oid not in self._dyn_objects:
                    raise InvalidProblemError(f"unknown object {event.oid}")
                dyn.remove_object(event.oid)
                del self._dyn_objects[event.oid]
            elif isinstance(event, FunctionArrived):
                weights = _check_weights(event.weights, dims)
                if event.priority <= 0:
                    raise InvalidProblemError("priority must be positive")
                if event.capacity < 1:
                    raise InvalidProblemError("function capacity must be >= 1")
                effective = tuple(x * event.priority for x in weights)
                fid = dyn.add_function(effective, capacity=event.capacity)
                self._dyn_functions[fid] = (
                    weights,
                    event.priority,
                    event.capacity,
                )
                arrivals.append(fid)
            elif isinstance(event, FunctionDeparted):
                if event.fid not in self._dyn_functions:
                    raise InvalidProblemError(f"unknown function {event.fid}")
                dyn.remove_function(event.fid)
                del self._dyn_functions[event.fid]
            else:
                raise InvalidProblemError(f"unknown event type {type(event).__name__}")

    def verify_current(self) -> Solution:
        """Certify stability of the churned matching; returns it.

        Rebuilds dense instance containers from the surviving
        population (handles are remapped positionally) and runs the
        textbook blocking-pair check.
        """
        self._check_open()
        solution = self.current()
        fids = sorted(self._dyn_functions)
        oids = sorted(self._dyn_objects)
        if not fids or not oids:
            return solution
        functions = FunctionSet(
            [self._dyn_functions[f][0] for f in fids],
            gammas=(
                [self._dyn_functions[f][1] for f in fids]
                if any(self._dyn_functions[f][1] != 1.0 for f in fids)
                else None
            ),
            capacities=[self._dyn_functions[f][2] for f in fids],
        )
        objects = ObjectSet(
            [self._dyn_objects[o][0] for o in oids],
            capacities=[self._dyn_objects[o][1] for o in oids],
        )
        f_remap = {f: i for i, f in enumerate(fids)}
        o_remap = {o: i for i, o in enumerate(oids)}
        dense = Solution(
            pairs=tuple(
                type(p)(f_remap[p.fid], o_remap[p.oid], p.score, p.count)
                for p in solution.pairs
            ),
            method=_DYNAMIC_METHOD,
        )
        assert_stable(dense.matching, functions, objects)
        return solution


__all__ = ["AssignmentSession"]
