"""Unit and property tests for MBR algebra and dominance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtree.geometry import (
    Rect,
    dominates,
    dominates_on_or_equal,
    mbr_of_points,
    mbr_of_rects,
    sky_key_point,
)

from .conftest import points_strategy


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((0.5, 0.6), (0.4, 0.4))

    def test_equal_points_do_not_dominate(self):
        # Paper Section 2.2: coincident points never dominate.
        assert not dominates((0.5, 0.5), (0.5, 0.5))

    def test_partial_improvement_dominates(self):
        assert dominates((0.5, 0.6), (0.5, 0.5))

    def test_incomparable(self):
        assert not dominates((0.9, 0.1), (0.1, 0.9))
        assert not dominates((0.1, 0.9), (0.9, 0.1))

    @given(points_strategy(3, min_size=2, max_size=2))
    def test_antisymmetric(self, pts):
        p, q = pts
        assert not (dominates(p, q) and dominates(q, p))

    @given(points_strategy(3, min_size=3, max_size=3))
    def test_transitive(self, pts):
        a, b, c = pts
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(points_strategy(4, min_size=2, max_size=2))
    def test_dominance_implies_sky_key_order(self, pts):
        p, q = pts
        if dominates(p, q):
            assert sky_key_point(p) < sky_key_point(q)

    def test_dominates_on_or_equal(self):
        assert dominates_on_or_equal((0.5, 0.5), (0.5, 0.5))
        assert dominates_on_or_equal((0.6, 0.5), (0.5, 0.5))
        assert not dominates_on_or_equal((0.4, 0.9), (0.5, 0.5))


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 1.0))

    def test_contains_point(self):
        r = Rect((0.0, 0.0), (0.5, 0.5))
        assert r.contains_point((0.25, 0.5))
        assert not r.contains_point((0.6, 0.1))

    def test_contains_rect(self):
        outer = Rect((0.0, 0.0), (1.0, 1.0))
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_intersects(self):
        a = Rect((0.0, 0.0), (0.5, 0.5))
        b = Rect((0.5, 0.5), (1.0, 1.0))  # touching counts
        c = Rect((0.6, 0.6), (1.0, 1.0))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_union_area_margin(self):
        a = Rect((0.0, 0.0), (0.5, 1.0))
        b = Rect((0.5, 0.0), (1.0, 0.5))
        u = a.union(b)
        assert u == Rect((0.0, 0.0), (1.0, 1.0))
        assert u.area() == pytest.approx(1.0)
        assert a.margin() == pytest.approx(1.5)

    def test_enlargement(self):
        a = Rect((0.0, 0.0), (0.5, 0.5))
        assert a.enlargement(Rect((0.25, 0.25), (0.4, 0.4))) == pytest.approx(0.0)
        assert a.enlargement(Rect((0.0, 0.0), (1.0, 0.5))) == pytest.approx(0.25)

    def test_maxscore_is_best_corner(self):
        r = Rect((0.1, 0.2), (0.5, 0.8))
        assert r.maxscore((0.5, 0.5)) == pytest.approx(0.65)
        assert r.minscore((0.5, 0.5)) == pytest.approx(0.15)

    @given(points_strategy(3, min_size=1, max_size=20))
    def test_mbr_of_points_contains_all(self, pts):
        mbr = mbr_of_points(pts)
        assert all(mbr.contains_point(p) for p in pts)

    @given(points_strategy(2, min_size=2, max_size=10))
    def test_mbr_of_rects_contains_all(self, pts):
        rects = [Rect.from_point(p) for p in pts]
        mbr = mbr_of_rects(rects)
        assert all(mbr.contains_rect(r) for r in rects)

    def test_mbr_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            mbr_of_points([])
        with pytest.raises(ValueError):
            mbr_of_rects([])

    @given(points_strategy(3, min_size=1, max_size=12), st.data())
    def test_maxscore_bounds_member_scores(self, pts, data):
        from repro.scoring import score

        mbr = mbr_of_points(pts)
        w = data.draw(st.tuples(*([st.floats(0, 1, allow_nan=False)] * 3)))
        for p in pts:
            assert score(w, p) <= mbr.maxscore(w) + 1e-12
