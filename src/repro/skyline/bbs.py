"""Branch-and-Bound Skyline (BBS) over the R-tree [Papadias et al.].

BBS pops heap entries in ascending distance from the sky point (we use
the equivalent key ``-sum(best corner)``, with a lexicographic
tiebreak that keeps the order dominance-consistent when float
rounding ties the sums — see ``sky_key_point``); a popped point that is not
dominated by the current skyline is a confirmed skyline member, a
popped node that is not dominated is expanded (one page access).  BBS
is I/O optimal: it reads exactly the nodes not dominated by the
skyline.

For the paper's Section 5.2 the engine optionally records every pruned
entry in the ``plist`` of the skyline point that pruned it — each
pruned entry lives in *exactly one* plist.  The plists are what make
UpdateSkyline read-once over the whole assignment run (Theorem 1).

Entries are ``(kind, ident, payload)`` with ``kind`` NODE (payload =
MBR :class:`Rect`, ident = page id) or POINT (payload = point tuple,
ident = object id).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable

from repro.rtree.geometry import Point, dominates, sky_key_point
from repro.rtree.tree import RTree
from repro.skyline.dominance import DominanceIndex
from repro.storage.stats import (
    BYTES_PER_HEAP_ENTRY,
    BYTES_PER_PLIST_ENTRY,
    MemoryTracker,
)

NODE = 0
POINT = 1

Entry = tuple[int, int, object]  # (kind, ident, payload)


def entry_corner(entry: Entry) -> Point:
    """Best corner of an entry: the point itself, or the MBR top corner."""
    kind, _, payload = entry
    return payload.hi if kind == NODE else payload


def entry_key(entry: Entry) -> tuple:
    """Heap priority (ascending == nearest to the sky point first;
    dominance-consistent on float-tied sums, see ``sky_key_point``)."""
    return sky_key_point(entry_corner(entry))


def find_dominator(skyline: dict[int, Point], corner: Point) -> int | None:
    """Id of a skyline point dominating ``corner``, or None.

    Deterministic: the smallest-id dominator is returned so plist
    contents are reproducible run to run.
    """
    best: int | None = None
    for oid, p in skyline.items():
        if dominates(p, corner) and (best is None or oid < best):
            best = oid
    return best


class BBSEngine:
    """Resumable BBS loop shared by the initial computation and by
    UpdateSkyline's maintenance passes."""

    def __init__(
        self,
        tree: RTree,
        track_plists: bool = True,
        mem: MemoryTracker | None = None,
    ):
        self.tree = tree
        self.track_plists = track_plists
        self.mem = mem
        self.skyline: dict[int, Point] = {}
        self.dom = DominanceIndex(tree.dims)
        self.plists: dict[int, list[Entry]] = {}
        self._plist_entries = 0
        self._seq = itertools.count()

    # -- memory accounting -------------------------------------------------

    def _note_heap(self, size: int) -> None:
        if self.mem is not None:
            self.mem.set_gauge("bbs_heap", size * BYTES_PER_HEAP_ENTRY)

    def _note_plists(self) -> None:
        if self.mem is not None:
            self.mem.set_gauge("plists", self._plist_entries * BYTES_PER_PLIST_ENTRY)

    # -- core loop ---------------------------------------------------------

    def make_heap(self, entries: Iterable[Entry]) -> list:
        heap = [(entry_key(e), next(self._seq), e) for e in entries]
        heapq.heapify(heap)
        return heap

    def seed_from_root(self) -> list:
        """Initial heap: the root node's entries (the root page is the
        first access, as in the paper's Figure 2 walk-through)."""
        if self.tree.root_id is None:
            return []
        root = self.tree.store.read_node(self.tree.root_id)
        entries: list[Entry] = []
        if root.is_leaf:
            entries.extend((POINT, oid, p) for oid, p in root.entries)
        else:
            entries.extend((NODE, cid, mbr) for cid, mbr in root.entries)
        return self.make_heap(entries)

    def run(self, heap: list) -> None:
        """Drain ``heap``, growing ``self.skyline`` (and plists)."""
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            self._note_heap(len(heap))
            _, _, entry = pop(heap)
            kind, ident, payload = entry
            dominator = self.dom.find_dominator(entry_corner(entry))
            if dominator is not None:
                if self.track_plists:
                    self.plists[dominator].append(entry)
                    self._plist_entries += 1
                    self._note_plists()
                continue
            if kind == NODE:
                node = self.tree.store.read_node(ident)  # the page access
                if node.is_leaf:
                    for oid, p in node.entries:
                        push(heap, (sky_key_point(p), next(self._seq),
                                    (POINT, oid, p)))
                else:
                    for cid, mbr in node.entries:
                        push(heap, (sky_key_point(mbr.hi), next(self._seq),
                                    (NODE, cid, mbr)))
            else:
                self.skyline[ident] = payload
                self.dom.add(ident, payload)
                if self.track_plists:
                    self.plists[ident] = []
        self._note_heap(0)

    # -- maintenance support -----------------------------------------------

    def detach(self, oid: int) -> list[Entry]:
        """Remove a skyline member, returning its plist entries."""
        del self.skyline[oid]
        self.dom.remove(oid)
        entries = self.plists.pop(oid, [])
        self._plist_entries -= len(entries)
        self._note_plists()
        return entries

    def append_plist(self, oid: int, entry: Entry) -> None:
        self.plists[oid].append(entry)
        self._plist_entries += 1
        self._note_plists()


def bbs_skyline(
    tree: RTree, mem: MemoryTracker | None = None
) -> dict[int, Point]:
    """One-shot BBS skyline of all items in ``tree``."""
    engine = BBSEngine(tree, track_plists=False, mem=mem)
    engine.run(engine.seed_from_root())
    return engine.skyline
