"""The assignment algorithms — the paper's contribution and baselines.

Public entry points:

- :func:`solve` — one-call dispatcher over every solver;
- :func:`repro.core.sb.sb_assign` — the paper's SB (Algorithms 1+3,
  with ablation toggles);
- :func:`repro.core.brute_force.brute_force_assign` — Section 4.1;
- :func:`repro.core.chain.chain_assign` — the adapted Chain of [25];
- :func:`repro.core.priority.sb_two_skyline_assign` — Section 6.2;
- :func:`repro.core.sb_alt.sb_alt_assign` — Section 7.6;
- :func:`repro.core.reference.greedy_assign` /
  :func:`repro.core.reference.gale_shapley_assign` — oracles;
- :func:`repro.core.validate.assert_stable` — stability checking;
- :func:`repro.core.index.build_object_index` — the object R-tree.

Every solver above (except the oracles and Brute Force) is a thin
strategy configuration over :class:`repro.engine.AssignmentEngine`;
``solve`` also accepts a custom :class:`repro.engine.EngineConfig`,
and ``method="auto"`` defers the pick to the workload-adaptive
planner (:mod:`repro.planner`).

Dispatch knowledge (name → solve callable → option schema → engine
config factory) lives in one place — the solver registry,
:data:`repro.planner.registry.REGISTRY`; the ``SOLVERS`` /
``SOLVER_OPTIONS`` tables below are derived views kept for
compatibility.
"""

from repro.core.brute_force import brute_force_assign
from repro.core.chain import chain_assign
from repro.core.index import ObjectIndex, build_object_index
from repro.core.priority import sb_two_skyline_assign
from repro.core.reference import gale_shapley_assign, greedy_assign
from repro.core.sb import sb_assign
from repro.core.sb_alt import sb_alt_assign
from repro.core.types import AssignedPair, AssignmentResult, Matching, RunStats
from repro.core.validate import assert_stable, assert_valid_matching, find_blocking_pair
from repro.data.instances import FunctionSet, ObjectSet
from repro.engine.engine import AssignmentEngine, EngineConfig
from repro.errors import InvalidSolverOptionError, UnknownSolverError
from repro.planner.registry import AUTO_METHOD, REGISTRY

#: Name → solve callable, derived from the registry (legacy view).
SOLVERS = {spec.name: spec.solve for spec in REGISTRY}

#: Keyword overrides accepted by each named solver, derived from the
#: registry (legacy view).  ``solve`` rejects anything outside these
#: sets up front with a typed error instead of letting a raw
#: ``TypeError`` escape from an inner solver callable.
SOLVER_OPTIONS: dict[str, frozenset[str]] = REGISTRY.option_schema()


def validate_solver_options(method: str, options: dict | None) -> None:
    """Check a solver name and its keyword overrides.

    Raises :class:`~repro.errors.UnknownSolverError` (a ``ValueError``)
    for an unregistered name and
    :class:`~repro.errors.InvalidSolverOptionError` (a ``TypeError``)
    naming the accepted options for an unknown override.  ``"auto"``
    is accepted (with no options): the planner picks the config.
    """
    REGISTRY.validate(method, options)


def solve(
    functions: FunctionSet,
    index: ObjectIndex,
    method: str | EngineConfig = "sb",
    **kwargs,
) -> AssignmentResult:
    """Run one of the stable-assignment algorithms.

    ``method`` is one of ``sb`` (the paper's algorithm), ``sb-update`` /
    ``sb-deltasky`` (Figure 8 ablations), ``sb-two-skylines``
    (prioritized variant), ``sb-alt`` (disk-resident functions),
    ``brute-force`` or ``chain`` — or ``"auto"`` to let the
    workload-adaptive planner pick from the instance profile (see
    :mod:`repro.planner`; the run is bit-identical to invoking the
    resolved method directly) — or an
    :class:`~repro.engine.engine.EngineConfig` to run a custom
    strategy combination directly on the engine.
    """
    if isinstance(method, EngineConfig):
        if kwargs:
            raise InvalidSolverOptionError(
                method.name,
                kwargs,
                (),
                message=(
                    "keyword overrides are not accepted with an "
                    "EngineConfig; bake them into the config instead"
                ),
            )
        return AssignmentEngine(method).run(functions, index)
    REGISTRY.validate(method, kwargs)
    if method == AUTO_METHOD:
        from repro.planner.plan import plan_instance

        plan = plan_instance(functions, index.objects)
        spec = REGISTRY.get(plan.method)
        return spec.solve(functions, index, **plan.options_dict())
    return REGISTRY.get(method).solve(functions, index, **kwargs)


__all__ = [
    "AssignedPair",
    "AssignmentResult",
    "FunctionSet",
    "Matching",
    "ObjectIndex",
    "ObjectSet",
    "RunStats",
    "SOLVERS",
    "SOLVER_OPTIONS",
    "assert_stable",
    "assert_valid_matching",
    "brute_force_assign",
    "build_object_index",
    "chain_assign",
    "find_blocking_pair",
    "gale_shapley_assign",
    "greedy_assign",
    "sb_assign",
    "sb_alt_assign",
    "sb_two_skyline_assign",
    "solve",
    "validate_solver_options",
]
