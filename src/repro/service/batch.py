"""BatchSolver: solve many preference-query workloads through one pool.

Real deployments of the paper's algorithm (course allocation, housing
lotteries, reviewer assignment à la Lian et al.'s conference-paper
workloads) rarely solve a single instance: the same object catalogue
is matched against many function cohorts, or many catalogues are
solved side by side.  Two observations make this batchable:

- **index reuse** — building the object R-tree is the expensive,
  solver-independent part, and the paper explicitly excludes it from
  measured cost; an instance-hash cache shares one built
  :class:`~repro.core.index.ObjectIndex` across every job with the
  same objects / page size / backend;
- **independent jobs** — each engine run keeps all mutable state in
  its own strategies, so jobs on *different* indexes execute fully in
  parallel on a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Jobs sharing one index serialize on a per-index lock, because the
  R-tree's LRU buffer and I/O counters are deliberately part of the
  measured, mutable storage model.

For many-cohorts-over-one-catalogue traffic that per-index lock (plus
the GIL) is the bottleneck; ``BatchSolver(executor="process")`` routes
jobs to :class:`~repro.service.pool.ProcessPoolSolver`, where each
worker process owns a private index replica and same-catalogue jobs
run truly in parallel with bit-identical results.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core import solve
from repro.core.index import ObjectIndex, build_object_index
from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet, ObjectSet
from repro.obs.trace import attach_engine_spans, span
from repro.planner import AUTO_METHOD, Plan, plan_instance


def object_set_fingerprint(objects: ObjectSet) -> str:
    """Content hash of an :class:`ObjectSet` — the cache identity.

    Two structurally identical object sets (same points, same
    capacities) fingerprint equally even when they are distinct Python
    objects, so re-submitted catalogues hit the index cache.  The
    digest is memoized on the instance, so a batch of K jobs over one
    large catalogue hashes it once, not K times — and the instance is
    **frozen** first (:meth:`ObjectSet.freeze`): without that, mutating
    ``objects.points`` after a submit would silently reuse the stale
    cached index for a catalogue that no longer matches the hash.
    """
    objects.freeze()
    cached = getattr(objects, "_repro_fingerprint", None)
    if cached is not None:
        return cached
    points = np.asarray(objects.points, dtype=np.float64)
    h = hashlib.sha256()
    # Shape goes into the digest: without it, the raw bytes of e.g. a
    # 6x2 and a 4x3 catalogue collide and would share a cached index.
    h.update(repr(points.shape).encode())
    h.update(points.tobytes())
    if objects.capacities is not None:
        h.update(b"caps")
        h.update(np.asarray(objects.capacities, dtype=np.int64).tobytes())
    digest = h.hexdigest()
    objects._repro_fingerprint = digest
    return digest


@dataclass
class SolveJob:
    """One assignment workload: a cohort of functions over a catalogue
    of objects, solved by a named engine config."""

    functions: FunctionSet
    objects: ObjectSet
    #: Solver name (``"auto"`` defers to the planner), or an
    #: :class:`~repro.engine.engine.EngineConfig` for a custom
    #: strategy combination.
    method: str | object = "sb"
    job_id: str | None = None
    page_size: int = 4096
    #: ``None`` = auto: memory-resident object tree for ``sb-alt``
    #: (the Section 7.6 setting), disk-simulated otherwise.
    memory_index: bool | None = None
    buffer_fraction: float = 0.02
    solve_kwargs: dict = field(default_factory=dict)
    #: Pre-resolved planner decision for ``method="auto"`` jobs.  The
    #: session layer passes the :meth:`Problem.plan` memo here so one
    #: problem plans exactly once per solve key; left ``None``, the
    #: solver resolves the plan itself on first touch.
    plan: Plan | None = None

    @property
    def method_name(self) -> str:
        """The method's name whether given as a string or an
        ``EngineConfig`` (whose ``.name`` identifies it)."""
        return getattr(self.method, "name", self.method)

    @property
    def wants_memory_index(self) -> bool:
        if self.memory_index is None:
            if self.method == AUTO_METHOD:
                return self.resolve().method_name == "sb-alt"
            return self.method_name == "sb-alt"
        return self.memory_index

    def resolve(self) -> "ResolvedJob":
        """The concrete ``(method, options, plan)`` this job will run.

        For ``method="auto"`` the planner resolves (and memoizes on
        the job) the pick; every other method passes through.  All
        downstream consumers — the thread executor, the process
        executor's wire payload, the index-mode choice — read the
        *resolved* method, so an ``auto`` job is indistinguishable
        from an explicitly routed one by the time an engine runs.
        """
        if self.method == AUTO_METHOD:
            if self.plan is None:
                # Benign race if two threads resolve concurrently: the
                # planner is deterministic, both compute the same plan.
                self.plan = plan_instance(self.functions, self.objects)
            return ResolvedJob(
                method=self.plan.method,
                solve_kwargs=self.plan.options_dict(),
                plan=self.plan,
            )
        return ResolvedJob(
            method=self.method, solve_kwargs=dict(self.solve_kwargs), plan=None
        )


@dataclass(frozen=True)
class ResolvedJob:
    """A :class:`SolveJob` after planner resolution."""

    method: str | object
    solve_kwargs: dict
    plan: Plan | None

    @property
    def method_name(self) -> str:
        return getattr(self.method, "name", self.method)


@dataclass
class JobResult:
    """A solved job plus its service-level bookkeeping."""

    job_id: str
    #: The *resolved* method that ran (never ``"auto"``).
    method: str
    result: AssignmentResult
    index_cache_hit: bool
    wall_seconds: float
    #: The planner's decision, for jobs submitted with ``method="auto"``.
    plan: Plan | None = None

    @property
    def matching(self):
        return self.result.matching

    @property
    def stats(self):
        return self.result.stats


@dataclass
class _CacheEntry:
    build_lock: threading.Lock = field(default_factory=threading.Lock)
    run_lock: threading.Lock = field(default_factory=threading.Lock)
    index: ObjectIndex | None = None


class ObjectIndexCache:
    """LRU cache of built object R-trees keyed by instance hash.

    Each entry carries a lock serializing solver runs on that index:
    the storage layer (LRU page buffer, I/O counters) is mutable and
    cold-started per run via ``reset_for_run``.  Running jobs hold
    their own references, so LRU eviction never invalidates an
    in-flight run.  Concurrent jobs on the same catalogue build the
    tree exactly once — racers block on the entry's build lock rather
    than duplicating the bulk-load.
    """

    def __init__(self, max_entries: int = 32):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._guard = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(
        self, objects: ObjectSet, page_size: int, memory: bool
    ) -> tuple[ObjectIndex, threading.Lock, bool]:
        """``(index, run_lock, was_cache_hit)`` for an object set."""
        key = (object_set_fingerprint(objects), page_size, memory)
        with self._guard:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
            else:
                entry = _CacheEntry()
                self._entries[key] = entry
                self.misses += 1
                hit = False
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        # Build outside the guard: bulk-loading a big tree must not
        # block cache lookups for unrelated jobs.
        with entry.build_lock:
            if entry.index is None:
                entry.index = build_object_index(
                    objects, page_size=page_size, memory=memory
                )
        return entry.index, entry.run_lock, hit

    def info(self) -> dict[str, int]:
        with self._guard:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


class BatchSolver:
    """Solves batches of :class:`SolveJob`\\ s on a worker pool.

    ``executor`` selects the execution backend:

    - ``"thread"`` (default) — a :class:`ThreadPoolExecutor` over one
      shared :class:`ObjectIndexCache`; same-catalogue jobs serialize
      on the entry's run lock (and on the GIL), but a shared catalogue
      is built exactly once per host.
    - ``"process"`` — a persistent
      :class:`~repro.service.pool.ProcessPoolSolver`; each worker
      process owns a private index replica, so same-catalogue jobs run
      truly in parallel with bit-identical results.  Requires named
      (string) methods; call :meth:`close` (or use the solver as a
      context manager) to release the worker processes.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        index_cache_size: int = 32,
        executor: str = "thread",
    ):
        from repro.service.pool import check_executor

        self.executor = check_executor(executor)
        self.max_workers = max_workers
        self.cache = ObjectIndexCache(max_entries=index_cache_size)
        self._index_cache_size = index_cache_size
        self._process = None  # lazy ProcessPoolSolver
        self._process_guard = threading.Lock()
        self._concurrency_guard = threading.Lock()
        self._in_flight = 0
        #: High-water mark of jobs simultaneously *executing* a solve
        #: (jobs waiting on a shared index's run lock don't count).
        self.peak_concurrency = 0

    def _ensure_process(self):
        # Imported lazily: pool.py imports this module's cache/job types.
        from repro.service.pool import ProcessPoolSolver

        with self._process_guard:
            if self._process is None:
                self._process = ProcessPoolSolver(
                    max_workers=self.max_workers,
                    index_cache_size=self._index_cache_size,
                )
            return self._process

    def close(self) -> None:
        """Release the process pool (a no-op on the thread backend)."""
        with self._process_guard:
            process, self._process = self._process, None
        if process is not None:
            process.close()

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def solve_many(self, jobs: list[SolveJob]) -> list[JobResult]:
        """Solve all jobs; results are returned in submission order."""
        if not jobs:
            return []
        if self.executor == "process":
            process = self._ensure_process()
            results = process.solve_many(jobs)
            with self._concurrency_guard:
                self.peak_concurrency = max(
                    self.peak_concurrency, process.peak_concurrency
                )
            return results
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(self._run_job, i, job)
                for i, job in enumerate(jobs)
            ]
            return [f.result() for f in futures]

    def solve_one(self, job: SolveJob) -> JobResult:
        if self.executor == "process":
            process = self._ensure_process()
            result = process.solve_one(job)
            with self._concurrency_guard:
                self.peak_concurrency = max(
                    self.peak_concurrency, process.peak_concurrency
                )
            return result
        return self._run_job(0, job)

    def cache_info(self) -> dict[str, int]:
        """Index-cache counters for the active backend: the shared
        cache on the thread backend, the aggregated per-worker replica
        counters (one miss = one build on *some* worker) on the
        process backend."""
        if self.executor == "process":
            return self._ensure_process().info()
        return self.cache.info()

    # ------------------------------------------------------------------

    def _run_job(self, position: int, job: SolveJob) -> JobResult:
        start = time.perf_counter()
        # Resolve the plan *before* the index-mode choice: the engine
        # must see exactly what a direct invocation of the resolved
        # method would see (index backend included).
        with span("plan.resolve") as plan_span:
            resolved = job.resolve()
            plan_span.attributes["method"] = resolved.method_name
        with span("index.lookup") as index_span:
            index, run_lock, hit = self.cache.get(
                job.objects, job.page_size, job.wants_memory_index
            )
            index_span.attributes["cache_hit"] = hit
        with run_lock:
            with self._concurrency_guard:
                self._in_flight += 1
                self.peak_concurrency = max(
                    self.peak_concurrency, self._in_flight
                )
            try:
                index.reset_for_run(buffer_fraction=job.buffer_fraction)
                with span("engine.solve", method=resolved.method_name) as solve_span:
                    result = solve(
                        job.functions, index, method=resolved.method,
                        **resolved.solve_kwargs,
                    )
                    attach_engine_spans(solve_span, result.stats)
            finally:
                with self._concurrency_guard:
                    self._in_flight -= 1
        return JobResult(
            job_id=job.job_id if job.job_id is not None else f"job-{position}",
            method=resolved.method_name,
            result=result,
            index_cache_hit=hit,
            wall_seconds=time.perf_counter() - start,
            plan=resolved.plan,
        )
