"""The Zipf-skewed request-arrival generator used for server load tests."""

import numpy as np
import pytest

from repro.data.generators import (
    CohortRequest,
    make_objects,
    request_stream,
    zipf_probabilities,
)


def test_zipf_probabilities_shape_and_order():
    p = zipf_probabilities(10, 1.2)
    assert p.shape == (10,)
    assert p.sum() == pytest.approx(1.0)
    assert all(p[i] > p[i + 1] for i in range(9))  # strictly rank-decreasing


def test_zipf_zero_exponent_is_uniform():
    p = zipf_probabilities(5, 0.0)
    assert np.allclose(p, 0.2)


def test_zipf_rejects_bad_arguments():
    with pytest.raises(ValueError):
        zipf_probabilities(0, 1.0)
    with pytest.raises(ValueError):
        zipf_probabilities(5, -0.1)


def test_stream_is_deterministic_under_seed():
    a = list(request_stream(20, 3, n_objects=16, dims=2, seed=7))
    b = list(request_stream(20, 3, n_objects=16, dims=2, seed=7))
    assert [r.catalogue_id for r in a] == [r.catalogue_id for r in b]
    assert [len(r.functions) for r in a] == [len(r.functions) for r in b]
    assert a[0].functions.weights == b[0].functions.weights


def test_stream_shapes_and_catalogue_identity_reuse():
    requests = list(request_stream(50, 2, n_objects=12, dims=3, seed=1))
    assert len(requests) == 50
    assert [r.request_id for r in requests] == list(range(50))
    catalogues = {}
    for r in requests:
        assert isinstance(r, CohortRequest)
        assert 0 <= r.catalogue_id < 2
        assert len(r.catalogue) == 12
        assert r.functions.dims == r.catalogue.dims == 3
        assert 1 <= len(r.functions) <= 64
        # identity reuse: one ObjectSet object per catalogue id, so
        # downstream fingerprint caches see genuine hits.
        assert catalogues.setdefault(r.catalogue_id, r.catalogue) is r.catalogue


def test_stream_skews_toward_hot_catalogue_and_small_cohorts():
    requests = list(
        request_stream(
            400, 4, n_objects=8, dims=2, seed=3,
            catalogue_skew=1.3, cohort_skew=1.5, max_cohort=32,
        )
    )
    by_catalogue = np.bincount([r.catalogue_id for r in requests], minlength=4)
    assert by_catalogue[0] == max(by_catalogue)
    assert by_catalogue[0] > len(requests) / 4  # hotter than uniform share
    sizes = [len(r.functions) for r in requests]
    assert sizes.count(1) > sizes.count(32)
    assert max(sizes) > 4  # the heavy tail exists


def test_stream_accepts_prebuilt_catalogues():
    catalogues = [make_objects(10, 2, "independent", seed=i) for i in range(2)]
    requests = list(request_stream(15, catalogues, seed=11, max_cohort=8))
    assert {id(r.catalogue) for r in requests} <= {id(c) for c in catalogues}


def test_stream_rejects_bad_arguments():
    with pytest.raises(ValueError):
        list(request_stream(-1, 2))
    with pytest.raises(ValueError):
        list(request_stream(1, 0))
    with pytest.raises(ValueError):
        list(request_stream(1, []))
    with pytest.raises(ValueError):
        list(request_stream(1, 2, max_cohort=0))
