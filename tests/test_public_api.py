"""The public API surface: exports, result unpacking, docstrings."""

import importlib

import pytest

import repro
from repro.core import SOLVERS


def test_version():
    assert repro.__version__ == "1.7.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_api_facade_exports():
    """The repro.api surface re-exports everything it documents."""
    import repro.api

    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None, name
    # The facade value objects are also re-exported at top level.
    for name in ("Problem", "ProblemBuilder", "AssignmentSession",
                 "Solution", "SolutionDiff", "ReproError"):
        assert getattr(repro, name) is getattr(repro.api, name), name


def test_readme_quickstart_runs():
    objects = repro.ObjectSet(
        [(0.5, 0.6), (0.2, 0.7), (0.8, 0.2), (0.4, 0.4)]
    )
    functions = repro.FunctionSet([(0.8, 0.2), (0.2, 0.8), (0.5, 0.5)])
    index = repro.build_object_index(objects)
    matching, stats = repro.solve(functions, index, method="sb")
    assert {(p.fid, p.oid) for p in matching.pairs} == {(0, 2), (1, 1), (2, 0)}
    assert stats.io_accesses >= 0


def test_result_unpacking_and_fields():
    objects = repro.ObjectSet([(0.5, 0.5)])
    functions = repro.FunctionSet([(1.0, 0.0)])
    index = repro.build_object_index(objects)
    result = repro.solve(functions, index)
    matching, stats = result  # tuple-style unpacking
    assert result.matching is matching and result.stats is stats
    pair = matching.pairs[0]
    assert (pair.fid, pair.oid, pair.count) == (0, 0, 1)


def test_every_solver_name_is_callable():
    objects = repro.ObjectSet([(0.3, 0.7), (0.6, 0.4)])
    functions = repro.FunctionSet([(0.5, 0.5)])
    for name in SOLVERS:
        index = repro.build_object_index(
            objects, memory=(name == "sb-alt")
        )
        matching, _ = repro.solve(functions, index, method=name)
        assert matching.num_units == 1, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core", "repro.core.sb", "repro.core.brute_force",
        "repro.core.chain", "repro.core.priority", "repro.core.sb_alt",
        "repro.core.reference", "repro.core.validate", "repro.core.index",
        "repro.core.capacity", "repro.core.types", "repro.core.vectorized",
        "repro.storage", "repro.storage.buffer", "repro.storage.pagefile",
        "repro.storage.stats",
        "repro.rtree", "repro.rtree.tree", "repro.rtree.bulk",
        "repro.rtree.geometry", "repro.rtree.encoding", "repro.rtree.store",
        "repro.skyline", "repro.skyline.bbs", "repro.skyline.maintenance",
        "repro.skyline.deltasky", "repro.skyline.bnl", "repro.skyline.dc",
        "repro.skyline.sfs", "repro.skyline.edr", "repro.skyline.inmemory",
        "repro.skyline.dominance", "repro.skyline.reference",
        "repro.topk", "repro.topk.ta", "repro.topk.brs", "repro.topk.onion",
        "repro.topk.reverse", "repro.topk.sorted_lists", "repro.topk.knapsack",
        "repro.data", "repro.data.generators", "repro.data.instances",
        "repro.data.real",
        "repro.bench", "repro.bench.config", "repro.bench.harness",
        "repro.bench.reporting",
        "repro.ordering", "repro.scoring", "repro.errors",
        "repro.api", "repro.api.errors", "repro.api.events",
        "repro.api.problem", "repro.api.serde", "repro.api.session",
        "repro.api.solution",
    ],
)
def test_module_has_docstring(module):
    mod = importlib.import_module(module)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, module
