"""Vectorized dominator lookup over a dynamic point set.

``find_dominator`` is the innermost operation of BBS, UpdateSkyline
and DeltaSky — every heap entry is checked against the current
skyline.  This index keeps the skyline in a compact numpy matrix so
one check costs a couple of vectorized comparisons instead of a Python
loop.  Comparisons are exact (no arithmetic), so results are
bit-identical to the scalar definition in
:func:`repro.rtree.geometry.dominates`; the smallest dominating id is
returned for deterministic plist placement.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.rtree.geometry import dominates


class DominanceIndex:
    """Dynamic ``{id: point}`` set with fast dominator queries."""

    def __init__(self, dims: int, capacity: int = 64):
        self.dims = dims
        self._pts = np.empty((max(capacity, 4), dims))
        self._oids = np.empty(max(capacity, 4), dtype=np.int64)
        self._row_of: dict[int, int] = {}
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    def add(self, oid: int, point: Sequence[float]) -> None:
        if oid in self._row_of:
            raise KeyError(f"{oid} already present")
        if self._n == len(self._oids):
            self._pts = np.concatenate([self._pts, np.empty_like(self._pts)])
            self._oids = np.concatenate([self._oids, np.empty_like(self._oids)])
        row = self._n
        self._pts[row] = point
        self._oids[row] = oid
        self._row_of[oid] = row
        self._n += 1

    def remove(self, oid: int) -> None:
        row = self._row_of.pop(oid)
        last = self._n - 1
        if row != last:
            self._pts[row] = self._pts[last]
            moved = int(self._oids[last])
            self._oids[row] = moved
            self._row_of[moved] = row
        self._n = last

    def find_dominator(self, corner: Sequence[float]) -> int | None:
        """Smallest id of a member dominating ``corner``, or None."""
        n = self._n
        if n == 0:
            return None
        if n <= 4:  # numpy overhead not worth it for tiny sets
            best = None
            for oid, row in self._row_of.items():
                if dominates(self._pts[row], corner) and (
                    best is None or oid < best
                ):
                    best = oid
            return best
        pts = self._pts[:n]
        c = np.asarray(corner)
        ge = (pts >= c).all(axis=1)
        if not ge.any():
            return None
        cand = np.nonzero(ge)[0]
        strict = (pts[cand] != c).any(axis=1)
        cand = cand[strict]
        if cand.size == 0:
            return None
        return int(self._oids[cand].min())
