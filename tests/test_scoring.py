"""The scoring contract: one summation order, monotone comparisons."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring import SCORE_EPS, score


def test_empty():
    assert score((), ()) == 0.0


def test_left_to_right_order():
    # The value must equal the naive running sum, term by term.
    w = (0.1, 0.2, 0.7)
    p = (0.3, 0.9, 0.5)
    expected = 0.0
    for a, b in zip(w, p):
        expected += a * b
    assert score(w, p) == expected


def test_commutes_with_swapped_arguments():
    # IEEE multiplication commutes per term, so score(w, p) and
    # score(p, w) are bit-identical — MatrixView relies on this.
    w = (0.123456, 0.376544, 0.5)
    p = (0.71, 0.29, 0.456)
    assert score(w, p) == score(p, w)


vec = st.lists(
    st.floats(0, 1, allow_nan=False, width=32), min_size=1, max_size=6
)


@given(vec, st.data())
@settings(max_examples=80, deadline=None)
def test_float_monotone_under_componentwise_dominance(w, data):
    """If p <= q componentwise then score(w, p) <= score(w, q) holds
    *exactly* in floating point (left-to-right summation is monotone).
    This is why BRS/BBS node-vs-point comparisons need no epsilon."""
    q = [data.draw(st.floats(x, 1, allow_nan=False)) for x in
         [min(v, 1.0) for v in w]]
    # Build p <= q.
    p = [data.draw(st.floats(0, x, allow_nan=False)) for x in q]
    weights = data.draw(
        st.lists(st.floats(0, 1, allow_nan=False),
                 min_size=len(q), max_size=len(q))
    )
    assert score(weights, p) <= score(weights, q)


def test_eps_is_tiny_but_not_zero():
    # Sanity on the guard constant's order of magnitude: far above
    # ULP noise at score scale (~1e-16), far below any meaningful
    # score difference the generators produce.
    assert 0 < SCORE_EPS <= 1e-6
    assert SCORE_EPS >= 1e-12
