"""Vectorized canonical argmax over a set of rows.

The BestPair step scans the (in-memory) skyline for each candidate
function — "find object f.obest ∈ Osky that maximizes f(o)" — and the
two-skyline variant scans Fsky per object.  Both are dot-product
argmaxes with canonical tie-breaking.  ``MatrixView`` computes the
scores with one numpy matmul, then resolves the winner *exactly*
(via :func:`repro.scoring.score` and the canonical tuple order) among
the rows inside a small tolerance band around the numpy maximum — the
band scales with the summed term magnitudes (max|coord|·sum|weight|)
and stays orders of magnitude wider than matmul's rounding error, so
the exact winner is always inside it and results are bit-identical to
the scalar scan.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ordering import neg
from repro.scoring import SCORE_EPS, score


class MatrixView:
    """Static ``(id, vector)`` rows supporting canonical best-row query.

    The canonical order used is ``(-score, neg(row), id)`` ascending —
    which equals :func:`repro.ordering.object_key` when rows are object
    points and :func:`repro.ordering.function_key` when rows are
    effective weight vectors (the two orders share one shape).
    """

    def __init__(self, ids: Sequence[int], rows: Sequence[Sequence[float]]):
        if len(ids) != len(rows):
            raise ValueError("ids and rows must align")
        self.ids = list(ids)
        self.rows = [tuple(r) for r in rows]
        self._matrix = np.asarray(self.rows, dtype=np.float64)
        # Largest |coordinate| anywhere in the matrix: the tolerance
        # band in :meth:`best_for` scales with the *term* magnitudes
        # (sum_i |w_i·x_i| ≤ max|x| · sum|w|), not with the final dot
        # product — cancellation can make |f(o)| tiny while rounding
        # error stays proportional to the huge intermediate terms.
        self._max_abs_coord = (
            float(np.abs(self._matrix).max()) if len(self.rows) else 0.0
        )

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def from_dict(cls, mapping: dict[int, tuple[float, ...]]) -> "MatrixView":
        ids = sorted(mapping)
        return cls(ids, [mapping[i] for i in ids])

    def best_for(self, query: Sequence[float]) -> tuple[int, float]:
        """Canonically best ``(id, exact_score)`` for ``query``."""
        if not self.ids:
            raise ValueError("best_for on an empty MatrixView")
        query_vector = np.asarray(query, dtype=np.float64)
        approx = self._matrix @ query_vector
        approx_max = float(approx.max())
        # Matmul rounding error is relative to the summed *term*
        # magnitudes (~dims ulps of sum|w_i·x_i|), which cancellation
        # can leave orders of magnitude above the final score — a band
        # scaled by the score itself (or a fixed one) silently drops
        # the exact winner on high-magnitude mixed-sign rows.  Bound
        # the terms by max|coord|·sum|w|; the floor of 1.0 keeps the
        # original absolute margin for small instances.
        term_scale = self._max_abs_coord * float(np.abs(query_vector).sum())
        tolerance = SCORE_EPS * max(1.0, term_scale)
        band = np.nonzero(approx >= approx_max - tolerance)[0]
        best_key = None
        best_i = -1
        for i in band:
            row = self.rows[i]
            key = (-score(row, query), neg(row), self.ids[i])
            if best_key is None or key < best_key:
                best_key = key
                best_i = int(i)
        return self.ids[best_i], -best_key[0]
