"""Strategy protocols of the unified assignment engine.

The paper's solvers all share one skeleton — the *round loop* of
Algorithm 3: find mutually-best (function, object) pairs, commit them
under capacities/priorities, repair the skyline of the surviving
objects.  What differs between SB, its Figure 8 ablations, SB-alt,
the two-skyline prioritized variant and Chain is *how* each step is
carried out.  These protocols name the three seams:

- :class:`SkylineMaintenance` — owns the object skyline across
  removals (UpdateSkyline, DeltaSky, in-memory plists, or the trivial
  "no skyline" of Chain);
- :class:`BestPairSearch` — produces the best alive function of every
  skyline object (resumable reverse-TA, one batch TA sweep, or an
  exhaustive vectorized Fsky scan);
- :class:`CommitPolicy` — selects which of the round's mutually-best
  pairs are committed (all of them, Section 5.3, or only the globally
  best one, Algorithm 1).

A fourth seam, :class:`RoundStrategy`, covers solvers whose pair
*production* does not follow the fbest/obest shape: Chain's mutual
top-1 chasing plugs in here while still sharing the engine's commit,
instrumentation and termination machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.core.types import RunStats

Point = tuple[float, ...]
#: ``{oid: point}`` — the engine's view of the current object skyline.
#: Strategies that need no skyline (Chain) supply a truthy sentinel.
SkylineState = dict[int, Point]


class StablePair(NamedTuple):
    """One mutually-best pair proposed by a round."""

    fid: int
    oid: int
    score: float


@runtime_checkable
class SkylineMaintenance(Protocol):
    """Maintains the skyline of a logically shrinking object set."""

    def compute_initial(self) -> SkylineState:
        """Compute the skyline of the full object set."""
        ...

    def remove(self, oids) -> SkylineState:
        """Remove assigned skyline members and repair the skyline."""
        ...


@runtime_checkable
class BestPairSearch(Protocol):
    """Best-alive-function search for the objects of the skyline."""

    def best_functions(
        self, skyline: SkylineState
    ) -> dict[int, tuple[int, float]] | None:
        """``{oid: (fid, score)}`` for every skyline object, or ``None``
        when no alive function remains (terminates the round loop)."""
        ...

    def on_function_dead(self, fid: int) -> None:
        """A function's capacity reached zero during the commit step."""
        ...

    def on_object_dead(self, oid: int) -> None:
        """An object's capacity reached zero during the commit step."""
        ...

    def on_round_end(self, dead_fids: list[int]) -> None:
        """Round finished (skyline already repaired); batch cleanup."""
        ...

    def finalize(self, stats: "RunStats", skyline: SkylineState) -> None:
        """Contribute work counters / I/O adjustments to the run stats."""
        ...


@runtime_checkable
class CommitPolicy(Protocol):
    """Selects which mutually-best pairs a round commits."""

    def select(self, stable: list[StablePair]) -> list[StablePair]:
        ...


class RoundStrategy:
    """One engine round: propose stable pairs, observe their commit.

    Base class with no-op hooks; :class:`~repro.engine.rounds.MutualBestRound`
    is the canonical skyline-driven implementation and
    :class:`~repro.engine.rounds.ChainRound` the mutual-top-1 chase.
    """

    def propose(self, skyline: SkylineState) -> list[StablePair] | None:
        """Stable pairs found this round; ``[]`` to continue without a
        commit (e.g. a non-emitting chase step), ``None`` to terminate
        the loop (pair source exhausted)."""
        raise NotImplementedError

    def on_pair_committed(
        self, fid: int, oid: int, units: int, f_died: bool, o_died: bool
    ) -> None:
        pass

    def on_round_end(self, dead_fids: list[int]) -> None:
        pass

    def finalize(self, stats: "RunStats", skyline: SkylineState) -> None:
        pass
