"""Batched solve service — many assignment workloads, one harness.

The first serving layer on the road to the ROADMAP's heavy-traffic
story: :class:`~repro.service.batch.BatchSolver` accepts many
(FunctionSet, ObjectSet) jobs, reuses built object R-trees across
jobs through an instance-hash cache, runs the jobs on a worker pool
and returns per-job :class:`~repro.core.types.AssignmentResult`\\ s.
Two execution backends: the default thread pool over one shared index
cache, and :class:`~repro.service.pool.ProcessPoolSolver`
(``executor="process"``) with per-worker index replicas for true
multi-core parallelism over a shared catalogue.
"""

from repro.service.batch import (
    BatchSolver,
    JobResult,
    ObjectIndexCache,
    ResolvedJob,
    SolveJob,
    object_set_fingerprint,
)
from repro.service.pool import EXECUTORS, ProcessPoolSolver

__all__ = [
    "EXECUTORS",
    "BatchSolver",
    "JobResult",
    "ObjectIndexCache",
    "ProcessPoolSolver",
    "ResolvedJob",
    "SolveJob",
    "object_set_fingerprint",
]
