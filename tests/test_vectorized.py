"""MatrixView: the vectorized canonical argmax must equal the scalar
scan bit for bit — including at large coordinate magnitudes, where the
matmul's rounding error is *relative* to the score and a fixed
tolerance band used to drop the exact winner (regression)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorized import MatrixView
from repro.ordering import neg
from repro.scoring import score


def reference_best(ids, rows, query):
    """The scalar canonical argmax MatrixView must reproduce exactly."""
    best = min((-score(r, query), neg(r), i) for i, r in zip(ids, rows))
    return best[2], -best[0]


def test_best_for_matches_scalar_scan_small_magnitudes():
    rows = [(0.3, 0.7), (0.7, 0.3), (0.5, 0.5), (0.3, 0.7)]
    view = MatrixView(list(range(4)), rows)
    for query in [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5), (0.2, 0.8)]:
        assert view.best_for(query) == reference_best(
            list(range(4)), rows, query
        )


def test_best_for_empty_view_raises():
    with pytest.raises(ValueError):
        MatrixView([], []).best_for((1.0,))


def test_best_for_high_magnitude_regression():
    """Fixed-band regression: these two rows score ~-4.2e10 and differ
    by ~1e-4 exactly, but the matmul ranks them with error larger than
    the old fixed 1e-9 band — which excluded the exact winner."""
    rows = [
        (-645729423672.261, -531398143962.7751, 856642729273.811),
        (-645729423672.2605, -531398143962.77484, 856642729273.8105),
    ]
    query = (0.5828105982174631, 0.7038528499563493, 0.8270780916312745)
    view = MatrixView([0, 1], rows)
    assert view.best_for(query) == reference_best([0, 1], rows, query)


def test_best_for_cancellation_regression():
    """Mixed-sign terms can cancel to a tiny score while the matmul's
    rounding error stays proportional to the ~1e11 intermediate terms
    — a band scaled by the *score* magnitude (not the term magnitude)
    still dropped the exact winner here."""
    rows = [
        (297490869326.6809, 259350717377.3098, -534769277134.6597),
        (297490869326.68115, 259350717377.3107, -534769277134.6592),
        (297490869326.6816, 259350717377.31036, -534769277134.6591),
    ]
    query = (0.5434318467145423, 0.7711915062581616, 0.6763198604457373)
    ids = [0, 1, 2]
    view = MatrixView(ids, rows)
    assert view.best_for(query) == reference_best(ids, rows, query)


coordinate = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
weight = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=200, deadline=None)
@given(data=st.data(), dims=st.integers(min_value=1, max_value=4))
def test_best_for_matches_scalar_scan_any_magnitude(data, dims):
    row = st.tuples(*[coordinate] * dims)
    base = data.draw(row)
    rows = [base]
    # near-ties of the first row stress the tolerance band: their exact
    # scores differ by far less than the matmul's rounding error
    for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
        if data.draw(st.booleans()):
            jitter = data.draw(
                st.tuples(
                    *[
                        st.floats(min_value=-1e-3, max_value=1e-3)
                        for _ in range(dims)
                    ]
                )
            )
            rows.append(tuple(b + j for b, j in zip(base, jitter)))
        else:
            rows.append(data.draw(row))
    query = data.draw(st.tuples(*[weight] * dims))
    ids = list(range(len(rows)))
    assert MatrixView(ids, rows).best_for(query) == reference_best(
        ids, rows, query
    )
