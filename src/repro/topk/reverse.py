"""Reverse top-1 search: the best function for a given object.

This is the engine behind SB's BestPair step (Section 5.1).  For a
skyline object ``o`` it scans the sorted coefficient lists TA-style
and maintains the best function seen so far; it terminates as soon as
the fractional-knapsack threshold ``Ttight`` proves no unseen function
can beat the incumbent.

Optimizations from the paper, all switchable for the ablation study:

- **biased probing** — instead of round-robin, advance the list with
  the largest ``l_i · o_i``, which shrinks the threshold fastest;
- **resuming** — the search state (positions, candidate heap) is kept
  per object, so when an object loses its best function to another
  object it resumes scanning instead of restarting;
- **Ω-bounded heap** — only the top-Ω candidates are kept; every pop
  of a dead incumbent lowers the retrieval guarantee by one, and when
  Ω hits zero the search restarts from scratch with a fresh Ω
  (the paper's memory/time trade-off, tuned by ω = Ω/|F|).

Implementation note: lists are scanned in small batches through the
numpy views of :class:`CoefficientLists`; a vectorized score prefilter
skips candidates that the Ω-truncation would discard anyway.  Exact
incumbent selection always goes through :func:`repro.scoring.score`
and the canonical :func:`repro.ordering.function_key`, and termination
requires the incumbent to *strictly* beat ``Ttight`` (with the
:data:`SCORE_EPS` margin for the threshold's different summation
order), so results are canonical-exact regardless of batching.

Solvers consume these searches through the engine's
:class:`repro.engine.search.ReverseTASearch` strategy (the
``BestPairSearch`` seam), which owns per-object search state,
resumption and the Ω/biased/fresh toggles.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from repro.ordering import FunctionKey, function_key
from repro.scoring import SCORE_EPS, score
from repro.storage.stats import BYTES_PER_LIST_POSITION, BYTES_PER_SCORE_ENTRY
from repro.topk.knapsack import tight_threshold
from repro.topk.sorted_lists import CoefficientLists

_BATCH = 32


class SearchCounters:
    """Aggregate work counters, shared across many searches."""

    __slots__ = ("sorted_accesses", "random_accesses", "restarts", "threshold_evals")

    def __init__(self) -> None:
        self.sorted_accesses = 0
        self.random_accesses = 0
        self.restarts = 0
        self.threshold_evals = 0


class ReverseBestSearch:
    """Resumable best-function search for one object."""

    def __init__(
        self,
        lists: CoefficientLists,
        point: Sequence[float],
        omega: int | None = None,
        biased: bool = True,
        counters: SearchCounters | None = None,
    ):
        if omega is not None and omega < 1:
            raise ValueError("omega must be >= 1 (or None for unbounded)")
        self.lists = lists
        self.point = tuple(point)
        self._point_np = np.asarray(self.point)
        self.omega_init = omega
        self.biased = biased
        self.counters = counters if counters is not None else SearchCounters()
        self._dims = lists.dims
        self._n = len(lists.alive)
        self._rr = 0  # round-robin cursor (non-biased mode)
        self._reset()

    def _reset(self) -> None:
        self._pos = [0] * self._dims
        self._bounds = [self.lists.initial_bound(d) for d in range(self._dims)]
        self._seen = np.zeros(self._n, dtype=bool)
        # Sorted candidate list: index 0 = canonically best.
        self._heap: list[tuple[FunctionKey, int]] = []
        self._omega = self.omega_init

    # -- public API ---------------------------------------------------------

    def best(self) -> tuple[int, float] | None:
        """``(fid, score)`` of the canonically best *alive* function,
        or ``None`` if no alive function exists.  Resumes (or restarts,
        if Ω ran out) as needed."""
        while True:
            self._drop_dead_incumbents()
            if self._heap:
                key = self._heap[0][0]
                best_score = -key[0]
                # SCORE_EPS guards against the threshold's different
                # summation order (see repro.scoring.SCORE_EPS).
                if best_score > self._threshold() + SCORE_EPS or self._exhausted():
                    fid = self._heap[0][1]
                    return fid, best_score
            elif self._exhausted():
                return None
            self._advance_batch()

    def memory_bytes(self) -> int:
        """Size of this search's retained state: candidate heap, list
        cursors, and the seen-functions bitmap."""
        return (
            len(self._heap) * BYTES_PER_SCORE_ENTRY
            + self._dims * BYTES_PER_LIST_POSITION
            + self._n // 8
        )

    # -- internals ------------------------------------------------------------

    def _threshold(self) -> float:
        self.counters.threshold_evals += 1
        return tight_threshold(
            self._bounds, self.point, budget=self.lists.max_alive_gamma()
        )

    def _exhausted(self) -> bool:
        return all(
            self._pos[d] >= self.lists.length(d) for d in range(self._dims)
        )

    def _drop_dead_incumbents(self) -> None:
        """Pop assigned functions off the top; each pop burns one unit
        of Ω; at zero the whole search restarts from scratch."""
        alive = self.lists.alive
        while self._heap and not alive[self._heap[0][1]]:
            self._heap.pop(0)
            if self._omega is not None:
                self._omega -= 1
                if self._omega <= 0:
                    self.counters.restarts += 1
                    self._reset()
                    return

    def _pick_list(self) -> int:
        lengths = self.lists.length
        if self.biased:
            best_d = -1
            best_v = -1.0
            for d in range(self._dims):
                if self._pos[d] >= lengths(d):
                    continue
                v = self._bounds[d] * self.point[d]
                if v > best_v:
                    best_v = v
                    best_d = d
            return best_d
        for _ in range(self._dims + 1):
            d = self._rr % self._dims
            self._rr += 1
            if self._pos[d] < lengths(d):
                return d
        raise AssertionError("no open list (exhausted search advanced)")

    def _advance_batch(self) -> None:
        d = self._pick_list()
        lo = self._pos[d]
        hi = min(lo + _BATCH, self.lists.length(d))
        fids = self.lists.fids_np[d][lo:hi]
        coefs = self.lists.coefs_np[d][lo:hi]
        self._pos[d] = hi
        self._bounds[d] = float(coefs[-1])
        self.counters.sorted_accesses += hi - lo
        if self.lists.charges_io:
            self.lists.charge_range(d, lo, hi)

        fresh_mask = ~self._seen[fids]
        if not fresh_mask.any():
            return
        fresh = fids[fresh_mask]
        self._seen[fresh] = True
        # "Random accesses" fetch each new function's other D-1 coords.
        self.counters.random_accesses += int(fresh.size) * (self._dims - 1)
        if self.lists.charges_io:
            for fid in fresh:
                self.lists.charge_random(int(fid), d)
        alive_new = fresh[self.lists.alive_np[fresh]]
        if alive_new.size == 0:
            return

        # Vectorized prefilter: candidates the Ω-truncation would drop
        # immediately (strictly below the worst retained score) are
        # skipped without exact evaluation — behaviour-identical to
        # insert-then-truncate.
        if self._omega is not None and len(self._heap) >= self._omega:
            cutoff = -self._heap[-1][0][0]
            approx = self.lists.weights_np[alive_new] @ self._point_np
            alive_new = alive_new[approx >= cutoff - SCORE_EPS]

        for fid in alive_new:
            fid = int(fid)
            weights = self.lists.weights[fid]
            s = score(weights, self.point)
            bisect.insort(self._heap, (function_key(s, weights, fid), fid))
        if self._omega is not None and len(self._heap) > self._omega:
            del self._heap[self._omega :]
