"""Byte-level node layout.

Nodes are serialized into fixed-size pages so that fanout follows from
the page size, exactly like a real disk-based R-tree: with 4 KB pages
and D=4 a leaf holds up to 102 points and an internal node up to 56
child MBRs.  The I/O counts reported by the benchmarks therefore have
the same page-granularity semantics as the paper's.

Layout (little endian)::

    header:   B  is_leaf (0/1)
              I  entry count
    leaf entry:      q  object id        + D * d  point coords
    internal entry:  q  child page id    + 2D * d MBR (lo..., hi...)
"""

from __future__ import annotations

import struct

from repro.rtree.geometry import Rect
from repro.rtree.node import Node

_HEADER = struct.Struct("<BI")


def leaf_entry_size(dims: int) -> int:
    return 8 + 8 * dims


def internal_entry_size(dims: int) -> int:
    return 8 + 16 * dims


def leaf_capacity(page_size: int, dims: int) -> int:
    cap = (page_size - _HEADER.size) // leaf_entry_size(dims)
    if cap < 2:
        raise ValueError(
            f"page size {page_size} cannot hold 2 leaf entries at D={dims}"
        )
    return cap


def internal_capacity(page_size: int, dims: int) -> int:
    cap = (page_size - _HEADER.size) // internal_entry_size(dims)
    if cap < 2:
        raise ValueError(
            f"page size {page_size} cannot hold 2 internal entries at D={dims}"
        )
    return cap


class NodeCodec:
    """Encoder/decoder for one tree's nodes (fixed dimensionality)."""

    def __init__(self, dims: int, page_size: int):
        self.dims = dims
        self.page_size = page_size
        self.leaf_capacity = leaf_capacity(page_size, dims)
        self.internal_capacity = internal_capacity(page_size, dims)
        self._leaf_entry = struct.Struct(f"<q{dims}d")
        self._internal_entry = struct.Struct(f"<q{2 * dims}d")

    def encode(self, node: Node) -> bytes:
        parts = [_HEADER.pack(1 if node.is_leaf else 0, len(node.entries))]
        if node.is_leaf:
            for oid, point in node.entries:
                parts.append(self._leaf_entry.pack(oid, *point))
        else:
            for child, rect in node.entries:
                parts.append(self._internal_entry.pack(child, *rect.lo, *rect.hi))
        data = b"".join(parts)
        if len(data) > self.page_size:
            raise ValueError(
                f"node {node.page_id} with {len(node.entries)} entries "
                f"overflows the {self.page_size}-byte page"
            )
        return data

    def decode(self, page_id: int, data: bytes) -> Node:
        is_leaf_flag, count = _HEADER.unpack_from(data, 0)
        is_leaf = bool(is_leaf_flag)
        entries: list = []
        offset = _HEADER.size
        if is_leaf:
            for _ in range(count):
                fields = self._leaf_entry.unpack_from(data, offset)
                entries.append((fields[0], tuple(fields[1:])))
                offset += self._leaf_entry.size
        else:
            d = self.dims
            for _ in range(count):
                fields = self._internal_entry.unpack_from(data, offset)
                rect = Rect(fields[1 : 1 + d], fields[1 + d : 1 + 2 * d])
                entries.append((fields[0], rect))
                offset += self._internal_entry.size
        return Node(page_id, is_leaf, entries)
