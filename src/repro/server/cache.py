"""LRU result cache keyed by :meth:`Problem.solve_key`.

The engine is deterministic: one ``(instance_digest, method, options)``
key has exactly one solution, so serving a cached :class:`Solution` is
bit-identical to re-solving.  This is the second cache tier of the
serving stack — the first (the :class:`ObjectIndexCache` inside
:class:`BatchSolver`) saves the R-tree build, this one saves the whole
engine run for repeat queries.

Counters (``hits`` / ``misses`` / ``evictions``) feed ``/metrics``.
The cache is lock-guarded: handlers run on the event loop, but tests
and embedding code may poke it from other threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.api.solution import Solution

SolveKey = tuple[str, str, str]


class SolutionCache:
    """Bounded LRU of solved results; ``max_entries=0`` disables it."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._entries: OrderedDict[SolveKey, Solution] = OrderedDict()
        self._guard = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, key: SolveKey) -> Solution | None:
        if not self.enabled:
            # A disabled cache must not count misses: every lookup would
            # miss by construction, and ``/metrics`` would report a 0%
            # hit rate that reads as cache *failure* rather than
            # cache-*off*.  Skip the lookup (and the lock) entirely.
            return None
        with self._guard:
            solution = self._entries.get(key)
            if solution is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return solution

    def put(self, key: SolveKey, solution: Solution) -> None:
        if not self.enabled:
            return
        with self._guard:
            self._entries[key] = solution
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def info(self) -> dict[str, int]:
        with self._guard:
            return {
                "enabled": self.enabled,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }


__all__ = ["SolutionCache", "SolveKey"]
