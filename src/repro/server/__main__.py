"""Console entry point: ``python -m repro.server`` / ``repro-server``.

Announces the bound address on stdout once the socket is listening —
``--port 0`` picks an ephemeral port, so supervisors (and the CI smoke
job) parse the announcement line rather than guessing.
"""

from __future__ import annotations

import argparse

from repro.obs.log import configure_logging
from repro.server.app import ReproServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve fair-assignment solves over JSON/HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8000,
        help="TCP port; 0 binds an ephemeral port (announced on stdout)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="max queued+running solves before requests get 429",
    )
    parser.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help=(
            "solve backend: 'thread' shares one object-index cache, "
            "'process' gives each worker process a private index "
            "replica for true multi-core parallelism"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "solver pool size — threads or worker processes depending "
            "on --executor (default: executor default)"
        ),
    )
    parser.add_argument(
        "--pump-tasks", type=int, default=8,
        help="async jobs concurrently in flight",
    )
    parser.add_argument("--solution-cache-size", type=int, default=256)
    parser.add_argument("--index-cache-size", type=int, default=32)
    parser.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint (seconds) on 429 responses",
    )
    parser.add_argument(
        "--log-level", default="INFO",
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON-lines logs instead of key=value text",
    )
    parser.add_argument(
        "--no-observability", action="store_true",
        help="disable request tracing and trace retention",
    )
    parser.add_argument(
        "--slow-trace-threshold", type=float, default=0.25,
        help=(
            "requests at or over this wall time (seconds) are pinned in "
            "the slow-trace store with their planner transcript"
        ),
    )
    parser.add_argument(
        "--log-ring-size", type=int, default=512,
        help="recent log records retained for GET /v1/logs",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    configure_logging(
        level=args.log_level,
        json_mode=args.log_json,
        node=f"{args.host}:{args.port}" if args.port else args.host,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        executor=args.executor,
        workers=args.workers,
        pump_tasks=args.pump_tasks,
        solution_cache_size=args.solution_cache_size,
        index_cache_size=args.index_cache_size,
        retry_after_seconds=args.retry_after,
        observability=not args.no_observability,
        slow_trace_threshold_seconds=args.slow_trace_threshold,
        log_ring_size=args.log_ring_size,
    )
    server = ReproServer(config)

    def announce(started: ReproServer) -> None:
        print(
            f"repro-server listening on http://{config.host}:{started.port}",
            flush=True,
        )

    try:
        server.serve_forever(on_started=announce)
    # lint: except-ok(Ctrl-C is the operator's shutdown signal; exit clean)
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
