"""The columnar instance representation the kernels operate on.

Built once per solve: the object coordinate matrix, the (γ-scaled)
function weight matrix, the two capacity vectors, and the absolute
coordinate maxima that scale every exact-winner tolerance band (the
PR 4 ``MatrixView`` discipline: rounding error of a dot product is
proportional to the summed *term* magnitudes, max|coord|·sum|weight|,
not to the final — possibly cancelled — score).
"""

from __future__ import annotations

import numpy as np

from repro.data.instances import FunctionSet, ObjectSet


class ColumnarInstance:
    """Flat float64/int64 views of one ``(functions, objects)`` pair."""

    def __init__(self, functions: FunctionSet, objects: ObjectSet):
        #: |O| × D object coordinates (row i == ``objects.points[i]``).
        self.points = np.asarray(objects.points, dtype=np.float64)
        #: |F| × D *effective* (γ-scaled) weights (Section 6.2).
        self.weights = np.asarray(functions.all_effective_weights(), dtype=np.float64)
        #: Remaining-capacity seeds (Section 6.1); the engine's
        #: CapacityTracker owns the per-pair decrements, these vectors
        #: seed the kernels' alive masks and size estimates.
        self.object_capacities = np.asarray(
            [objects.capacity(i) for i in range(len(objects))], dtype=np.int64
        )
        self.function_capacities = np.asarray(
            [functions.capacity(i) for i in range(len(functions))],
            dtype=np.int64,
        )
        self.max_abs_point = (
            float(np.abs(self.points).max()) if self.points.size else 0.0
        )
        self.max_abs_weight = (
            float(np.abs(self.weights).max()) if self.weights.size else 0.0
        )

    @property
    def num_objects(self) -> int:
        return self.points.shape[0]

    @property
    def num_functions(self) -> int:
        return self.weights.shape[0]

    def nbytes(self) -> int:
        """Resident size of the columnar arrays (memory gauge)."""
        return int(
            self.points.nbytes
            + self.weights.nbytes
            + self.object_capacities.nbytes
            + self.function_capacities.nbytes
        )
