"""BRS — Branch-and-bound Ranked Search (Tao et al. [19]).

Incremental top-k over an R-tree for a non-negative linear preference
function: heap entries are visited in descending ``maxscore`` (the
score of an MBR's best corner), so every popped point is the best
remaining object.  The search is *resumable* — ``next()`` keeps
returning the next-best object — and skips objects in a caller-shared
exclusion set (the assigned-object tombstones of the Brute Force and
Chain baselines; the paper's Section 4.1 "maintain the search heap
for each top-1 query ... the search for f' can resume").

The heap key embeds the canonical object order (score desc, coords
lex desc, id asc; see :mod:`repro.ordering`), and node entries sort
before point entries on exact key ties — an MBR whose corner ties a
point may still contain a canonically better point, so it must be
expanded first.  This makes the emission order canonical-exact.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Collection, Sequence

from repro.ordering import neg
from repro.rtree.tree import RTree
from repro.scoring import score
from repro.storage.stats import BYTES_PER_HEAP_ENTRY

_NODE = 0
_POINT = 1


class BRSSearch:
    """Resumable ranked search for one preference function."""

    def __init__(
        self,
        tree: RTree,
        weights: Sequence[float],
        excluded: Collection[int] | None = None,
    ):
        self.tree = tree
        self.weights = tuple(weights)
        self.excluded = excluded if excluded is not None else frozenset()
        self._seq = itertools.count()
        self._heap: list = []
        self._started = False

    def _push_node_entries(self, node) -> None:
        push = heapq.heappush
        if node.is_leaf:
            for oid, p in node.entries:
                s = score(self.weights, p)
                push(
                    self._heap,
                    ((-s, neg(p), _POINT, oid), next(self._seq), _POINT, oid, p),
                )
        else:
            for cid, mbr in node.entries:
                s = mbr.maxscore(self.weights)
                push(
                    self._heap,
                    ((-s, neg(mbr.hi), _NODE, cid), next(self._seq), _NODE, cid, mbr),
                )

    def next(self) -> tuple[int, tuple[float, ...], float] | None:
        """The next best non-excluded object as ``(oid, point, score)``,
        or ``None`` when the tree is exhausted."""
        if not self._started:
            self._started = True
            if self.tree.root_id is not None:
                root = self.tree.store.read_node(self.tree.root_id)
                self._push_node_entries(root)
        while self._heap:
            key, _, kind, ident, payload = heapq.heappop(self._heap)
            if kind == _POINT:
                if ident in self.excluded:
                    continue
                return ident, payload, -key[0]
            node = self.tree.store.read_node(ident)  # the page access
            self._push_node_entries(node)
        return None

    def memory_bytes(self) -> int:
        return len(self._heap) * BYTES_PER_HEAP_ENTRY

    def heap_size(self) -> int:
        return len(self._heap)
