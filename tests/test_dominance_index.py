"""DominanceIndex must agree with the scalar dominance definition."""


from hypothesis import given, settings

from repro.rtree.geometry import dominates
from repro.skyline.dominance import DominanceIndex

from .conftest import points_strategy


def scalar_find(members: dict, corner):
    best = None
    for oid, p in members.items():
        if dominates(p, corner) and (best is None or oid < best):
            best = oid
    return best


def test_empty_index():
    idx = DominanceIndex(3)
    assert idx.find_dominator((0.0, 0.0, 0.0)) is None
    assert len(idx) == 0


def test_add_remove_membership():
    idx = DominanceIndex(2)
    idx.add(5, (0.5, 0.5))
    assert 5 in idx
    idx.remove(5)
    assert 5 not in idx
    assert idx.find_dominator((0.0, 0.0)) is None


def test_duplicate_add_rejected():
    idx = DominanceIndex(2)
    idx.add(1, (0.1, 0.1))
    try:
        idx.add(1, (0.2, 0.2))
    except KeyError:
        pass
    else:  # pragma: no cover
        raise AssertionError("duplicate add must raise")


def test_smallest_dominator_returned():
    idx = DominanceIndex(2)
    idx.add(9, (0.9, 0.9))
    idx.add(3, (0.8, 0.8))
    assert idx.find_dominator((0.5, 0.5)) == 3


def test_equal_point_is_not_dominator():
    idx = DominanceIndex(2)
    idx.add(1, (0.5, 0.5))
    assert idx.find_dominator((0.5, 0.5)) is None
    assert idx.find_dominator((0.5, 0.4)) == 1


def test_growth_past_initial_capacity(rng):
    idx = DominanceIndex(3, capacity=4)
    members = {}
    for oid in range(200):
        p = tuple(rng.random() for _ in range(3))
        idx.add(oid, p)
        members[oid] = p
    for _ in range(100):
        corner = tuple(rng.random() for _ in range(3))
        assert idx.find_dominator(corner) == scalar_find(members, corner)


def test_random_adds_removes_match_scalar(rng):
    idx = DominanceIndex(2)
    members = {}
    next_id = 0
    for step in range(500):
        if members and rng.random() < 0.4:
            oid = rng.choice(list(members))
            idx.remove(oid)
            del members[oid]
        else:
            p = (rng.random(), rng.random())
            idx.add(next_id, p)
            members[next_id] = p
            next_id += 1
        if step % 25 == 0:
            corner = (rng.random(), rng.random())
            assert idx.find_dominator(corner) == scalar_find(members, corner)


@given(points_strategy(3, min_size=1, max_size=25), points_strategy(3, 1, 5))
@settings(max_examples=40, deadline=None)
def test_property_matches_scalar(members_pts, corners):
    idx = DominanceIndex(3)
    members = {}
    for oid, p in enumerate(members_pts):
        idx.add(oid, p)
        members[oid] = p
    for corner in corners:
        assert idx.find_dominator(corner) == scalar_find(members, corner)
