"""R-tree node representation.

A node is either a leaf (entries are ``(object_id, point)``) or an
internal node (entries are ``(child_page_id, Rect)``).  Nodes carry
their own page id so stores can round-trip them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.rtree.geometry import Point, Rect, mbr_of_points, mbr_of_rects

LeafEntry = tuple[int, Point]
InternalEntry = tuple[int, Rect]


class Node:
    __slots__ = ("page_id", "is_leaf", "entries")

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        entries: list[LeafEntry] | list[InternalEntry] | None = None,
    ):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.entries: list = entries if entries is not None else []

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"Node(page={self.page_id}, {kind}, {len(self.entries)} entries)"

    def mbr(self) -> Rect:
        """Tight MBR over this node's entries."""
        if not self.entries:
            raise ValueError(f"node {self.page_id} has no entries")
        if self.is_leaf:
            return mbr_of_points(p for _, p in self.entries)
        return mbr_of_rects(r for _, r in self.entries)

    def entry_rect(self, index: int) -> Rect:
        """The MBR of one entry (a degenerate rect for leaf points)."""
        ident, payload = self.entries[index]
        if self.is_leaf:
            return Rect.from_point(payload)
        return payload

    def child_ids(self) -> list[int]:
        if self.is_leaf:
            raise ValueError("leaf nodes have no children")
        return [cid for cid, _ in self.entries]

    def find_leaf_entry(self, oid: int, point: Sequence[float] | None = None) -> int:
        """Index of the leaf entry for ``oid`` (and ``point`` if given),
        or -1 if absent."""
        if not self.is_leaf:
            raise ValueError("find_leaf_entry on an internal node")
        for i, (ident, p) in enumerate(self.entries):
            if ident == oid and (point is None or tuple(point) == p):
                return i
        return -1
