"""Single-cell benchmark runs with instance/index caching.

A *cell* is one (algorithm, parameter point) measurement: it reports
the paper's three metrics — physical page reads, CPU seconds and peak
search-structure memory — plus solver work counters.  Indexes are
built once per (instance, page size, backend) and cold-started via
``reset_for_run`` before each measured run (index construction is not
part of the paper's measured cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import solve
from repro.core.index import ObjectIndex, build_object_index
from repro.engine.engine import EngineConfig
from repro.data.generators import make_functions, make_objects
from repro.data.instances import FunctionSet, ObjectSet
from repro.data.real import nba_like, zillow_like


@dataclass
class Cell:
    """One measured point of a figure."""

    method: str
    params: dict
    io: int
    cpu_seconds: float
    memory_bytes: int
    loops: int
    pairs: int
    counters: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Instance and index caches
# ---------------------------------------------------------------------------

_instances: dict[tuple, tuple[FunctionSet, ObjectSet]] = {}
_indexes: dict[tuple, ObjectIndex] = {}


def make_instance(
    nf: int,
    no: int,
    dims: int,
    distribution: str = "anti-correlated",
    seed: int = 0,
    n_clusters: int | None = None,
    function_capacity: int | None = None,
    object_capacity: int | None = None,
    max_priority: int | None = None,
    real: str | None = None,
) -> tuple[FunctionSet, ObjectSet]:
    """Build (and cache) a benchmark instance.

    ``real`` selects a real-data substitute ("zillow" or "nba",
    Section 7.5) instead of the synthetic distribution.
    """
    key = (
        nf, no, dims, distribution, seed, n_clusters,
        function_capacity, object_capacity, max_priority, real,
    )
    if key in _instances:
        return _instances[key]

    if real == "zillow":
        objects = zillow_like(no, seed=seed)
        dims = objects.dims
    elif real == "nba":
        objects = nba_like(no, seed=seed)
        dims = objects.dims
    elif real is not None:
        raise ValueError(f"unknown real dataset {real!r}")
    else:
        objects = make_objects(no, dims, distribution, seed=seed)
    if object_capacity is not None and object_capacity > 1:
        objects = ObjectSet(
            objects.points, capacities=[object_capacity] * len(objects)
        )

    gammas = None
    if max_priority is not None and max_priority > 1:
        from repro.data.generators import random_priorities

        gammas = random_priorities(nf, max_priority, seed=seed + 1)
    capacities = None
    if function_capacity is not None and function_capacity > 1:
        capacities = [function_capacity] * nf
    functions = make_functions(
        nf, dims, seed=seed + 2, n_clusters=n_clusters,
        gammas=gammas, capacities=capacities,
    )

    _instances[key] = (functions, objects)
    return functions, objects


def get_index(
    objects: ObjectSet,
    page_size: int = 4096,
    memory: bool = False,
) -> ObjectIndex:
    key = (id(objects), page_size, memory)
    index = _indexes.get(key)
    if index is None:
        index = build_object_index(objects, page_size=page_size, memory=memory)
        _indexes[key] = index
    return index


def clear_caches() -> None:
    _instances.clear()
    _indexes.clear()


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------


def run_cell(
    method: str | EngineConfig,
    functions: FunctionSet,
    objects: ObjectSet,
    buffer_fraction: float = 0.02,
    page_size: int = 4096,
    memory_index: bool = False,
    params: dict | None = None,
    **solve_kwargs,
) -> Cell:
    """Run one solver on one instance, cold-started, and collect the
    paper's metrics.

    ``method`` is a solver name or an
    :class:`~repro.engine.engine.EngineConfig` — ablation studies can
    drive custom strategy combinations straight through the harness.
    """
    index = get_index(objects, page_size=page_size, memory=memory_index)
    index.reset_for_run(buffer_fraction=buffer_fraction)
    start = time.perf_counter()
    matching, stats = solve(functions, index, method=method, **solve_kwargs)
    elapsed = time.perf_counter() - start
    return Cell(
        method=method if isinstance(method, str) else method.name,
        params=dict(params or {}),
        io=stats.io_accesses,
        cpu_seconds=elapsed,
        memory_bytes=stats.peak_memory_bytes,
        loops=stats.loops,
        pairs=matching.num_units,
        counters=dict(stats.counters),
    )
