"""Datasets: instance containers, synthetic generators, real-data substitutes.

The paper evaluates on the three classic preference-query benchmarks
(independent / correlated / anti-correlated object sets, per Börzsönyi
et al. [4]), on normalized linear preference functions with
independently drawn weights (optionally clustered, Figure 12), and on
two real datasets (Zillow, NBA) for which
:mod:`repro.data.real` provides behaviour-preserving synthetic
substitutes (see :mod:`repro.data.real` for the rationale).
"""

from repro.data.generators import (
    CohortRequest,
    anti_correlated_points,
    churn_stream,
    clustered_weights,
    correlated_points,
    independent_points,
    make_functions,
    make_objects,
    request_stream,
    uniform_weights,
    zipf_probabilities,
)
from repro.data.instances import FunctionSet, ObjectSet
from repro.data.real import nba_like, zillow_like

__all__ = [
    "CohortRequest",
    "FunctionSet",
    "ObjectSet",
    "anti_correlated_points",
    "churn_stream",
    "clustered_weights",
    "correlated_points",
    "independent_points",
    "make_functions",
    "make_objects",
    "nba_like",
    "request_stream",
    "uniform_weights",
    "zillow_like",
    "zipf_probabilities",
]
