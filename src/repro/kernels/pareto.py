"""Batch dominance tests and Pareto (skyline) filtering.

Dominance follows the paper's Section 2.2 exactly (see
:func:`repro.rtree.geometry.dominates`): ``p`` dominates ``q`` iff
``p >= q`` in every dimension and the points do not coincide —
coincident duplicates never dominate each other, so they are all
skyline members.  The scalar oracle is
:func:`repro.skyline.reference.naive_skyline`; the hypothesis suite
checks these kernels against it on mixed-sign coordinates, exact
float ties and duplicate points.

The pairwise tests accumulate per-dimension comparison counts over
2-d ``candidates × dominators`` planes (one pass per dimension)
rather than materializing a 3-d boolean tensor: ``p`` is dominated by
``w`` iff ``w >= p`` in all ``D`` dimensions and ``w > p`` in at
least one — for ``>=``-everywhere vectors, "differs somewhere" and
"strictly greater somewhere" coincide.  The planes are uint8 and
blocked by :data:`CELL_BUDGET`, so the transient stays around a
megabyte while typical calls run in one shot.
"""

from __future__ import annotations

import numpy as np

#: Transient-plane budget of one vectorized dominance pass, in cells
#: (``block × |dominators|``); a block of candidate rows is processed
#: per pass so the uint8 count planes stay around a megabyte.
CELL_BUDGET = 1 << 20

#: Skyline rows accepted per :func:`pareto_mask` pass before the
#: in-block sequential check takes over.
BLOCK = 256


def _dominance_planes(block: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    """``plane[i, j]`` — does ``dominators[j]`` dominate ``block[i]``?"""
    n, dims = block.shape
    m = dominators.shape[0]
    ge = np.zeros((n, m), dtype=np.uint8)
    gt = np.zeros((n, m), dtype=np.uint8)
    for d in range(dims):
        dom_col = dominators[:, d]
        cand_col = block[:, d, None]
        ge += dom_col >= cand_col
        gt += dom_col > cand_col
    return (ge == dims) & (gt > 0)


def _block_rows(num_dominators: int) -> int:
    return max(1, CELL_BUDGET // max(1, num_dominators))


def dominated_mask(points: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    """``mask[i]`` — is ``points[i]`` dominated by any dominator row?"""
    n = points.shape[0]
    mask = np.zeros(n, dtype=bool)
    if n == 0 or dominators.shape[0] == 0:
        return mask
    step = _block_rows(dominators.shape[0])
    for start in range(0, n, step):
        plane = _dominance_planes(points[start : start + step], dominators)
        mask[start : start + step] = plane.any(axis=1)
    return mask


def dominator_index(points: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    """Index of *one* dominating row per point, or ``-1`` if none.

    The witness (the first dominator in row order) backs the
    reference-dominator bookkeeping of
    :class:`~repro.kernels.skyline.VectorizedSkylineMaintenance`:
    which dominator is reported does not matter, only that it
    currently dominates the point.
    """
    n = points.shape[0]
    out = np.full(n, -1, dtype=np.intp)
    if n == 0 or dominators.shape[0] == 0:
        return out
    step = _block_rows(dominators.shape[0])
    for start in range(0, n, step):
        plane = _dominance_planes(points[start : start + step], dominators)
        found = plane.any(axis=1)
        first = plane.argmax(axis=1)
        out[start : start + step] = np.where(found, first, -1)
    return out


def sky_order(points: np.ndarray) -> np.ndarray:
    """Indices in dominance-monotone processing order.

    Mirrors :func:`repro.rtree.geometry.sky_key_point`: descending
    coordinate sum with a lexicographic tiebreak on the (negated)
    coordinates, so a dominator is processed *strictly before*
    everything it dominates even when float rounding ties the sums
    (the PR 1 dominance-tie discipline).  Summation here only orders
    the pass — float addition is monotone under the fixed reduction
    tree, so a dominator's sum can tie but never trail.
    """
    if points.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    keys = [-points[:, d] for d in range(points.shape[1] - 1, -1, -1)]
    keys.append(-points.sum(axis=1))
    return np.lexsort(keys)


def pareto_mask(points: np.ndarray) -> np.ndarray:
    """Skyline membership mask of an ``n × D`` coordinate matrix.

    Sorted-pass batch filter: points are visited in
    :func:`sky_order`, each block is tested against the accepted
    skyline with one vectorized dominance pass, and only the block's
    survivors are cross-checked against the members accepted earlier
    *within the same block* (dominators sort first, so no later point
    can invalidate an accepted one).
    """
    n = points.shape[0]
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return mask
    order = sky_order(points)
    sky_rows = np.empty_like(points)
    count = 0
    for start in range(0, n, BLOCK):
        idx = order[start : start + BLOCK]
        block = points[idx]
        dominated = dominated_mask(block, sky_rows[:count])
        block_start = count
        for j in np.nonzero(~dominated)[0]:
            p = block[j]
            fresh = sky_rows[block_start:count]
            if fresh.size:
                ge = (fresh >= p).all(axis=1)
                ne = (fresh != p).any(axis=1)
                if (ge & ne).any():
                    continue
            sky_rows[count] = p
            mask[idx[j]] = True
            count += 1
    return mask
