"""SB — the paper's Skyline-Based stable assignment (Sections 4.2–5.3).

The solver maintains the skyline of the remaining objects (only
skyline objects can appear in stable pairs) and, per loop:

1. finds for every skyline object its best alive function via the
   resumable reverse top-1 searches of :mod:`repro.topk.reverse`
   (Section 5.1: TA over sorted coefficient lists, fractional-knapsack
   threshold, biased probing, Ω-bounded heaps);
2. finds for every candidate function its best skyline object
   (a scan of the in-memory skyline);
3. emits every mutually-best pair (Property 2; Section 5.3's
   multiple-pairs-per-loop enhancement), honoring capacities
   (Section 6.1) and priorities (Section 6.2, via effective weights
   and the ``B = max γ`` knapsack budget);
4. removes assigned objects and repairs the skyline with the
   I/O-optimal UpdateSkyline (Section 5.2) — or with DeltaSky when
   running the Figure 8 ablation.

Since the engine refactor this module is a thin strategy
configuration: the round loop lives in
:class:`repro.engine.AssignmentEngine`, the TA search in
:class:`repro.engine.search.ReverseTASearch`, and the ablation
variants are the named configs of :mod:`repro.engine.configs`:

=====================  ========================================
``variant="sb"``        everything on (the paper's SB)
``variant="sb-update"`` Algorithm 1 + UpdateSkyline only
                        (fresh round-robin TA per loop, one pair
                        per loop) — "SB-UpdateSkyline"
``variant="sb-deltasky"``  Algorithm 1 + DeltaSky maintenance
=====================  ========================================
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.index import ObjectIndex
from repro.core.types import AssignmentResult
from repro.data.instances import FunctionSet
from repro.engine.configs import SB_VARIANTS as VARIANTS
from repro.engine.configs import sb_config
from repro.engine.engine import AssignmentEngine


def sb_assign(
    functions: FunctionSet,
    index: ObjectIndex,
    variant: str = "sb",
    omega_fraction: float | None = 0.025,
    multi_pair: bool | None = None,
    biased: bool | None = None,
    resume: bool | None = None,
    maintenance: str | None = None,
    paged_function_lists: int | None = None,
) -> AssignmentResult:
    """Skyline-based stable assignment.

    ``variant`` presets the optimization toggles; individual keyword
    arguments override the preset (for ablation benchmarks).
    ``omega_fraction`` is the paper's ω (default 2.5%, Section 7);
    ``None`` disables the Ω bound entirely.

    ``paged_function_lists`` materializes the coefficient lists on
    simulated disk pages of the given size (the Section 7.6 setting
    where F does not fit in memory); the per-object TA searches then
    charge list-page I/O, which is reported alongside the object-tree
    I/O (compare with :func:`repro.core.sb_alt.sb_alt_assign`).
    """
    config = sb_config(
        variant,
        omega_fraction=omega_fraction,
        multi_pair=multi_pair,
        biased=biased,
        resume=resume,
        maintenance=maintenance,
        paged_function_lists=paged_function_lists,
    )
    return AssignmentEngine(config).run(functions, index)


def sb_variants() -> Iterable[str]:
    return VARIANTS
