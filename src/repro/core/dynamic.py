"""Dynamic stable-matching maintenance (the paper's future work).

The paper's conclusion: "we plan to study issues such as the
maintenance of a fair matching in a system, where objects are
dynamically allocated/freed."  This module implements that extension
for in-memory instances: a :class:`DynamicStableMatching` accepts
object/function arrivals and departures and keeps the canonical
stable matching current without recomputing it from scratch.

The key structural fact (provable from the greedy definition): the
canonical matching is the greedy fixpoint over pairs sorted by the
canonical pair order, so an update can only change the outcome from
the *first greedy step whose choice set changed*.  Each update
therefore:

1. locates the earliest emitted pair that the event can affect — for
   an arriving object ``o`` that is the first pair canonically worse
   than the best possible pair involving ``o``; for a departing
   object, the first pair that involves it (symmetrically for
   functions);
2. keeps the unaffected prefix of the emitted pair sequence;
3. re-runs greedy on the surviving suffix participants only.

On workloads where churn hits the middle of the score range this
re-matches a fraction of the pairs instead of all of them; the tests
verify exact equivalence against a from-scratch oracle after every
event and measure that the suffix work is genuinely partial.
"""

from __future__ import annotations

from repro.core.types import Matching
from repro.data.instances import FunctionSet, ObjectSet, Point
from repro.ordering import PairKey, pair_key
from repro.scoring import score


class DynamicStableMatching:
    """Maintains the canonical stable matching under churn.

    Functions and objects are identified by the integer handles
    returned from ``add_function`` / ``add_object``.  Capacities are
    supported the same way as in the static solvers; priorities via
    pre-scaled (effective) weight vectors.
    """

    def __init__(self) -> None:
        self._weights: dict[int, tuple[float, ...]] = {}
        self._f_caps: dict[int, int] = {}
        self._points: dict[int, Point] = {}
        self._o_caps: dict[int, int] = {}
        self._next_f = 0
        self._next_o = 0
        # Emitted pair sequence in canonical greedy order:
        # (pair_key, fid, oid, score, units).
        self._pairs: list[tuple[PairKey, int, int, float, int]] = []
        self.suffix_rematch_count = 0  # pairs re-examined by last event

    @classmethod
    def from_instance(
        cls, functions: FunctionSet, objects: ObjectSet
    ) -> "DynamicStableMatching":
        """Seed from static instance containers in one bulk rematch.

        Handles equal the containers' positional ids (function ``i`` of
        the :class:`FunctionSet` becomes dynamic handle ``i``, same for
        objects).  Priorities enter as γ-scaled effective weights, the
        same canonical order the static solvers use, so the seeded
        matching is exactly the static solution.
        """
        dyn = cls()
        for fid, _ in functions.items():
            dyn._weights[fid] = tuple(functions.effective_weights(fid))
            dyn._f_caps[fid] = functions.capacity(fid)
        dyn._next_f = len(functions)
        for oid, point in objects.items():
            dyn._points[oid] = tuple(point)
            dyn._o_caps[oid] = objects.capacity(oid)
        dyn._next_o = len(objects)
        dyn._rematch_from(0)
        return dyn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def matching(self) -> Matching:
        out = Matching()
        for _, fid, oid, s, units in self._pairs:
            out.add(fid, oid, s, units)
        return out

    @property
    def num_functions(self) -> int:
        return len(self._weights)

    @property
    def num_objects(self) -> int:
        return len(self._points)

    def partner_of_function(self, fid: int) -> list[tuple[int, int]]:
        return [(o, u) for _, f, o, _, u in self._pairs if f == fid]

    def partner_of_object(self, oid: int) -> list[tuple[int, int]]:
        return [(f, u) for _, f, o, _, u in self._pairs if o == oid]

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def add_function(
        self, weights: tuple[float, ...], capacity: int = 1
    ) -> int:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        fid = self._next_f
        self._next_f += 1
        self._weights[fid] = tuple(weights)
        self._f_caps[fid] = capacity
        self._rematch_from(self._first_affected_by_function(fid))
        return fid

    def remove_function(self, fid: int) -> None:
        if fid not in self._weights:
            raise KeyError(f"unknown function {fid}")
        cut = self._first_pair_involving(fid=fid)
        del self._weights[fid]
        del self._f_caps[fid]
        self._rematch_from(cut)

    def add_object(self, point: Point, capacity: int = 1) -> int:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        oid = self._next_o
        self._next_o += 1
        self._points[oid] = tuple(point)
        self._o_caps[oid] = capacity
        self._rematch_from(self._first_affected_by_object(oid))
        return oid

    def remove_object(self, oid: int) -> None:
        """Free an object (e.g. a returned housing unit)."""
        if oid not in self._points:
            raise KeyError(f"unknown object {oid}")
        cut = self._first_pair_involving(oid=oid)
        del self._points[oid]
        del self._o_caps[oid]
        self._rematch_from(cut)

    # ------------------------------------------------------------------
    # Incremental repair
    # ------------------------------------------------------------------

    def _first_pair_involving(
        self, fid: int | None = None, oid: int | None = None
    ) -> int:
        for i, (_, f, o, _, _) in enumerate(self._pairs):
            if (fid is not None and f == fid) or (oid is not None and o == oid):
                return i
        return len(self._pairs)

    def _first_affected_by_object(self, oid: int) -> int:
        """Greedy steps strictly better than the new object's best
        conceivable pair are unaffected by its arrival."""
        p = self._points[oid]
        best: PairKey | None = None
        for fid, w in self._weights.items():
            key = pair_key(score(w, p), w, fid, p, oid)
            if best is None or key < best:
                best = key
        if best is None:
            return len(self._pairs)
        for i, (key, *_rest) in enumerate(self._pairs):
            if key > best:
                return i
        return len(self._pairs)

    def _first_affected_by_function(self, fid: int) -> int:
        w = self._weights[fid]
        best: PairKey | None = None
        for oid, p in self._points.items():
            key = pair_key(score(w, p), w, fid, p, oid)
            if best is None or key < best:
                best = key
        if best is None:
            return len(self._pairs)
        for i, (key, *_rest) in enumerate(self._pairs):
            if key > best:
                return i
        return len(self._pairs)

    def _rematch_from(self, cut: int) -> None:
        """Keep the prefix [0, cut); greedily re-match everything not
        consumed by it."""
        prefix = self._pairs[:cut]
        self.suffix_rematch_count = len(self._pairs) - cut

        f_left = dict(self._f_caps)
        o_left = dict(self._o_caps)
        for _, fid, oid, _, units in prefix:
            f_left[fid] -= units
            o_left[oid] -= units

        free_f = [fid for fid, c in f_left.items() if c > 0]
        free_o = [oid for oid, c in o_left.items() if c > 0]
        suffix: list[tuple[PairKey, int, int, float, int]] = []
        if free_f and free_o:
            candidates = sorted(
                pair_key(
                    score(self._weights[fid], self._points[oid]),
                    self._weights[fid], fid, self._points[oid], oid,
                )
                for fid in free_f
                for oid in free_o
            )
            for key in candidates:
                neg_s, _nw, fid, _np, oid = key
                if f_left[fid] <= 0 or o_left[oid] <= 0:
                    continue
                units = min(f_left[fid], o_left[oid])
                f_left[fid] -= units
                o_left[oid] -= units
                suffix.append((key, fid, oid, -neg_s, units))

        self._pairs = prefix + suffix
