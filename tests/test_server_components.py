"""Unit tests for the serving-layer building blocks: the solution LRU,
admission control, job store bounds, and latency histograms."""

import pytest

from repro.api import Problem, Solution
from repro.server.cache import SolutionCache
from repro.server.jobs import DONE, AdmissionController, JobStore
from repro.server.metrics import LatencyHistogram, ServerMetrics


def solution(tag: int) -> Solution:
    from repro.core.types import AssignedPair

    return Solution(pairs=(AssignedPair(0, tag, 1.0, 1),), method="sb")


def key(tag: int):
    return (f"instance-{tag}", "sb", "{}")


def test_solution_cache_lru_eviction_and_counters():
    cache = SolutionCache(max_entries=2)
    cache.put(key(1), solution(1))
    cache.put(key(2), solution(2))
    assert cache.get(key(1)) == solution(1)   # 1 now most-recent
    cache.put(key(3), solution(3))            # evicts 2
    assert cache.get(key(2)) is None
    assert cache.get(key(1)) is not None
    assert cache.get(key(3)) is not None
    info = cache.info()
    assert info == {
        "hits": 3, "misses": 1, "evictions": 1, "entries": 2, "max_entries": 2,
    }


def test_solution_cache_zero_size_disables_caching():
    cache = SolutionCache(max_entries=0)
    cache.put(key(1), solution(1))
    assert cache.get(key(1)) is None
    assert cache.info()["entries"] == 0
    with pytest.raises(ValueError):
        SolutionCache(max_entries=-1)


def test_admission_controller_bounds_and_peak():
    admission = AdmissionController(limit=2)
    assert admission.try_acquire() and admission.try_acquire()
    assert not admission.try_acquire()     # saturated
    admission.release()
    assert admission.try_acquire()         # a slot freed up
    assert admission.info() == {"depth": 2, "peak_depth": 2, "limit": 2}
    admission.release()
    admission.release()
    with pytest.raises(RuntimeError):
        admission.release()                # unbalanced release is a bug
    with pytest.raises(ValueError):
        AdmissionController(limit=0)


def make_problem():
    return (
        Problem.builder()
        .add_objects([(0.5, 0.5), (0.2, 0.8)])
        .add_functions([(0.5, 0.5)])
        .build()
    )


def test_job_store_trims_finished_jobs_only():
    store = JobStore(history_limit=3)
    problem = make_problem()
    jobs = [store.create(f"p{i}", problem) for i in range(3)]
    jobs[0].status = DONE
    jobs[1].status = DONE
    live = jobs[2]
    fourth = store.create("p3", problem)
    assert len(store) == 3
    assert store.get(jobs[0].job_id) is None      # oldest finished dropped
    assert store.get(live.job_id) is live         # live job survives
    assert store.get(fourth.job_id) is fourth
    # job ids keep counting monotonically
    assert fourth.job_id > live.job_id


def test_job_to_dict_shapes():
    store = JobStore()
    job = store.create("pid", make_problem())
    payload = job.to_dict()
    assert payload["status"] == "queued"
    assert payload["solution"] is None
    assert "solution" not in job.to_dict(include_solution=False)


def test_latency_histogram_quantiles():
    hist = LatencyHistogram()
    for _ in range(99):
        hist.observe(0.002)
    hist.observe(4.0)
    assert hist.count == 100
    assert 0.001 <= hist.quantile(0.5) <= 0.0025
    assert 2.5 <= hist.quantile(0.995) <= 5.0
    assert hist.max_seconds == 4.0
    payload = hist.to_dict()
    assert payload["count"] == 100
    assert payload["buckets"]["+inf"] == 0
    # q=0 estimates the minimum: the occupied bucket's lower bound
    assert hist.quantile(0.0) == pytest.approx(0.001)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_latency_histogram_empty_and_overflow():
    hist = LatencyHistogram()
    assert hist.quantile(0.99) == 0.0
    hist.observe(1e6)  # lands in +inf bucket; quantile reports lower bound
    assert hist.quantile(0.99) == 10.0
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=(0.1, 1.0))  # must end with +inf


def test_server_metrics_engine_accumulation_skips_cache_hits():
    metrics = ServerMetrics()

    class FakeIO:
        physical_reads = 5
        logical_reads = 9
        physical_writes = 2

    class FakeStats:
        io = FakeIO()
        cpu_seconds = 0.25

    class FakeSolution:
        stats = FakeStats()

    metrics.record_solve("sb", 0.1, FakeSolution(), cached=False)
    metrics.record_solve("sb", 0.0001, FakeSolution(), cached=True)
    assert metrics.engine_physical_reads == 5    # hit did not double count
    assert metrics.engine_logical_reads == 9
    assert metrics.solves_total == 2
    assert metrics.solve_cache_hits == 1
    snapshot = metrics.snapshot(
        queue={"depth": 0}, solution_cache={}, index_cache={}
    )
    assert snapshot["latency"]["sb"]["count"] == 2
    assert snapshot["engine"]["cpu_seconds"] == 0.25
