"""Building the object-side index used by every solver.

The paper's setting: ``O`` is persistent, indexed by an R-tree with
4 KB pages behind an LRU buffer sized as a fraction of the tree
(default 2%).  ``build_object_index`` bulk-loads the tree, sizes the
buffer, and clears build-time state so a subsequent run starts cold —
exactly how the paper charges I/O (index construction is not part of
the measured cost).

For the Section 7.6 setting (``O`` fits in memory while ``F`` is
disk-resident), pass ``memory=True``: the tree lives in a
:class:`MemoryNodeStore` and object-side page counts stay zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.instances import ObjectSet
from repro.rtree.store import DiskNodeStore, MemoryNodeStore
from repro.rtree.tree import RTree
from repro.storage.stats import IOStats


@dataclass
class ObjectIndex:
    """An R-tree over an :class:`ObjectSet` plus its storage plumbing."""

    objects: ObjectSet
    tree: RTree
    stats: IOStats
    buffer_fraction: float
    is_memory: bool

    @property
    def dims(self) -> int:
        return self.objects.dims

    def reset_for_run(self, buffer_fraction: float | None = None) -> None:
        """Cold-start the storage layer before a measured run: resize
        the buffer to the configured fraction (or an override, for
        Figure 13's buffer sweep), drop resident pages and zero the
        counters."""
        if buffer_fraction is not None:
            self.buffer_fraction = buffer_fraction
        if not self.is_memory:
            store = self.tree.store
            store.set_buffer_fraction(self.buffer_fraction)
            store.buffer.clear()
        self.stats.reset()


def build_object_index(
    objects: ObjectSet,
    page_size: int = 4096,
    buffer_fraction: float = 0.02,
    memory: bool = False,
) -> ObjectIndex:
    """Bulk-load the object R-tree (STR) and prepare it for a run."""
    if len(objects) == 0:
        raise ValueError("cannot index an empty ObjectSet")
    dims = objects.dims
    if memory:
        store = MemoryNodeStore(dims, page_size)
    else:
        store = DiskNodeStore(dims, page_size, buffer_capacity=0)
    tree = RTree.bulk_load(store, dims, objects.items())
    index = ObjectIndex(
        objects=objects,
        tree=tree,
        stats=store.stats,
        buffer_fraction=buffer_fraction,
        is_memory=memory,
    )
    index.reset_for_run()
    return index
