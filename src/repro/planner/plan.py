"""The :class:`Plan` artifact and the planning entry points.

``plan_instance`` is the planner proper: profile the instance, score
every ``plannable`` registry config with its calibrated cost model,
pick the cheapest (ties broken lexicographically by name, so the
decision is deterministic in every process — the bit-identical
``auto`` guarantee).  ``explicit_plan`` wraps a caller-chosen method
in the same artifact so ``explain()`` works uniformly.

A ``Plan`` is a small, picklable, JSON-serializable value: the service
layer records it per job, the session attaches it to the
:class:`~repro.api.solution.Solution`, and the server ships it in the
solve envelope and counts its picks in ``/metrics``.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.data.instances import FunctionSet, ObjectSet
from repro.errors import SerdeError
from repro.planner.calibration import CALIBRATION_VERSION
from repro.planner.cost import cost_model_for
from repro.planner.profile import InstanceProfile, features, profile_instance
from repro.planner.registry import AUTO_METHOD, REGISTRY, SolverRegistry


@dataclass(frozen=True)
class PlanCandidate:
    """One scored registry config."""

    method: str
    estimated_seconds: float


@dataclass(frozen=True)
class Plan:
    """The planner's decision for one solve, plus its evidence."""

    #: What the caller asked for: ``"auto"`` or a concrete name.
    requested: str
    #: The resolved concrete method the engine actually runs.
    method: str
    #: Solver options of the resolved method (sorted items).
    options: tuple[tuple[str, Any], ...] = ()
    #: The measured instance shape (``None`` for explicit picks —
    #: nothing was profiled).
    profile: InstanceProfile | None = None
    #: Every scored candidate, cheapest first (empty for explicit).
    candidates: tuple[PlanCandidate, ...] = ()
    #: The chosen candidate's estimate (``None`` for explicit picks).
    estimated_seconds: float | None = None
    #: Wall time the decision itself cost.
    planning_seconds: float = 0.0
    calibration_version: str = field(default=CALIBRATION_VERSION)

    @property
    def auto(self) -> bool:
        """Did the planner (rather than the caller) pick the method?"""
        return self.requested == AUTO_METHOD

    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)

    # -- explain -------------------------------------------------------

    def explain(self, actual_seconds: float | None = None) -> str:
        """A human-readable transcript of the decision."""
        lines = []
        if self.auto:
            lines.append(
                f"planner resolved method='auto' -> {self.method!r} "
                f"(calibration {self.calibration_version}, "
                f"planning cost {self.planning_seconds * 1e3:.3f} ms)"
            )
        else:
            lines.append(
                f"method {self.method!r} was picked explicitly; "
                "the planner was not consulted"
            )
        if self.profile is not None:
            p = self.profile
            priority = f" max_priority={p.max_priority:g}" if p.has_priorities else ""
            lines.append(
                f"  profile: |F|={p.num_functions} |O|={p.num_objects} "
                f"dims={p.dims} capacity_ratio={p.capacity_ratio:.3g} "
                f"correlation={p.object_correlation:+.3f} "
                f"weight_skew={p.weight_skew:.3f}{priority}"
            )
        for i, cand in enumerate(self.candidates):
            marker = "->" if cand.method == self.method else "  "
            chosen = "  (chosen)" if i == 0 and self.auto else ""
            lines.append(
                f"  {marker} {cand.method:<16} "
                f"est {cand.estimated_seconds * 1e3:9.3f} ms{chosen}"
            )
        if self.estimated_seconds is not None and actual_seconds is not None:
            err = abs(self.estimated_seconds - actual_seconds)
            rel = err / actual_seconds if actual_seconds > 0 else float("inf")
            lines.append(
                f"  estimated {self.estimated_seconds * 1e3:.3f} ms vs "
                f"actual {actual_seconds * 1e3:.3f} ms "
                f"(relative error {rel:.0%})"
            )
        return "\n".join(lines)

    # -- serde ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "method": self.method,
            "options": dict(self.options),
            "profile": None if self.profile is None else self.profile.to_dict(),
            "candidates": [
                {"method": c.method, "estimated_seconds": c.estimated_seconds}
                for c in self.candidates
            ],
            "estimated_seconds": self.estimated_seconds,
            "planning_seconds": self.planning_seconds,
            "calibration_version": self.calibration_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Plan":
        if not isinstance(payload, Mapping):
            raise SerdeError("plan payload must be a mapping")
        try:
            profile = payload.get("profile")
            return cls(
                requested=payload["requested"],
                method=payload["method"],
                options=tuple(sorted(dict(payload.get("options") or {}).items())),
                profile=(
                    None if profile is None else InstanceProfile.from_dict(profile)
                ),
                candidates=tuple(
                    PlanCandidate(c["method"], float(c["estimated_seconds"]))
                    for c in payload.get("candidates") or ()
                ),
                estimated_seconds=payload.get("estimated_seconds"),
                planning_seconds=float(payload.get("planning_seconds", 0.0)),
                calibration_version=payload.get(
                    "calibration_version", CALIBRATION_VERSION
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerdeError(f"malformed plan payload: {exc}") from exc


def plan_instance(
    functions: FunctionSet,
    objects: ObjectSet,
    registry: SolverRegistry = REGISTRY,
) -> Plan:
    """Resolve ``method="auto"`` for one instance.

    Deterministic: the profile is stride-sampled (no RNG), the cost
    models are pure functions of it, and estimate ties break by method
    name — every process plans the same instance identically.
    """
    start = time.perf_counter()
    profile = profile_instance(functions, objects)
    x = features(profile)  # shared by every candidate's model
    candidates = []
    for spec in registry.plannable():
        model = cost_model_for(spec.cost_key)
        candidates.append(
            PlanCandidate(
                method=spec.name,
                estimated_seconds=model.estimate_from_features(x),
            )
        )
    if not candidates:
        raise ValueError("no plannable configs are registered")
    candidates.sort(key=lambda c: (c.estimated_seconds, c.method))
    chosen = candidates[0]
    return Plan(
        requested=AUTO_METHOD,
        method=chosen.method,
        options=(),
        profile=profile,
        candidates=tuple(candidates),
        estimated_seconds=chosen.estimated_seconds,
        planning_seconds=time.perf_counter() - start,
    )


def explicit_plan(method: str, options: Mapping[str, Any] | None = None) -> Plan:
    """The trivial plan for a caller-chosen method (uniform explain)."""
    return Plan(
        requested=method,
        method=method,
        options=tuple(sorted(dict(options or {}).items())),
    )


#: Churn backend → its calibrated per-event cost-model key.
CHURN_COST_KEYS: dict[str, str] = {
    "interp": "dynamic-interp",
    "vec": "dynamic-vec",
}


def plan_churn(functions: FunctionSet, objects: ObjectSet) -> Plan:
    """Resolve the churn backend (``method="auto"`` for ``apply``).

    Same discipline as :func:`plan_instance`, but the candidates are
    the two suffix-rematch backends of
    :class:`~repro.core.dynamic.DynamicStableMatching` and the models
    estimate *per-event* seconds on the seed population's shape
    (calibrated by ``benchmarks/bench_churn.py``).  The chosen backend
    name is carried in ``options["backend"]``; deterministic for the
    same seed instance in every process.
    """
    start = time.perf_counter()
    profile = profile_instance(functions, objects)
    x = features(profile)
    candidates = [
        PlanCandidate(
            method=cost_key,
            estimated_seconds=cost_model_for(cost_key).estimate_from_features(x),
        )
        for _, cost_key in sorted(CHURN_COST_KEYS.items())
    ]
    candidates.sort(key=lambda c: (c.estimated_seconds, c.method))
    chosen = candidates[0]
    backend = next(b for b, k in CHURN_COST_KEYS.items() if k == chosen.method)
    return Plan(
        requested=AUTO_METHOD,
        method=chosen.method,
        options=(("backend", backend),),
        profile=profile,
        candidates=tuple(candidates),
        estimated_seconds=chosen.estimated_seconds,
        planning_seconds=time.perf_counter() - start,
    )


__all__ = [
    "CHURN_COST_KEYS",
    "Plan",
    "PlanCandidate",
    "explicit_plan",
    "plan_churn",
    "plan_instance",
]
