"""Classic Threshold Algorithm (Fagin et al. [8]) for top-k queries.

The forward direction of TA: given objects exposed as one descending
sorted list per attribute, find the k objects maximizing a monotone
linear aggregate.  The paper uses TA in the *reverse* direction
(:mod:`repro.topk.reverse`); this module provides the textbook
algorithm as related-work substrate, reference and test oracle.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

from repro.ordering import ObjectKey, object_key
from repro.scoring import score

Point = tuple[float, ...]


def ta_topk(
    items: Sequence[tuple[int, Point]],
    weights: Sequence[float],
    k: int,
) -> list[tuple[int, float]]:
    """Top-k ``(oid, score)`` under ``weights``, canonically ordered.

    Termination is canonical-exact: the scan stops only when the k-th
    incumbent *strictly* beats the threshold (or input is exhausted),
    so ties at the threshold are resolved by the canonical order.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not items:
        return []
    dims = len(items[0][1])
    points = dict(items)
    lists = [
        sorted(((p[d], oid) for oid, p in items), key=lambda e: (-e[0], e[1]))
        for d in range(dims)
    ]
    positions = [0] * dims
    bounds = [lists[d][0][0] if lists[d] else 0.0 for d in range(dims)]
    seen: set[int] = set()
    incumbents: list[tuple[ObjectKey, int]] = []  # sorted, index 0 = best

    def threshold() -> float:
        # Computed via score() itself: identical left-to-right rounding
        # makes "unseen score <= threshold" hold exactly in floats, so
        # the strict-> termination needs no epsilon here.
        return score(weights, bounds)

    def exhausted() -> bool:
        return all(positions[d] >= len(lists[d]) for d in range(dims))

    d = 0  # round-robin cursor
    while True:
        if len(incumbents) >= k:
            kth_score = -incumbents[k - 1][0][0]
            if kth_score > threshold() or exhausted():
                break
        elif exhausted():
            break
        # Advance the next non-exhausted list round-robin.
        for _ in range(dims):
            if positions[d] < len(lists[d]):
                break
            d = (d + 1) % dims
        value, oid = lists[d][positions[d]]
        positions[d] += 1
        bounds[d] = value
        d = (d + 1) % dims
        if oid in seen:
            continue
        seen.add(oid)
        p = points[oid]
        s = score(weights, p)
        bisect.insort(incumbents, (object_key(s, p, oid), oid))
        if len(incumbents) > k:
            incumbents.pop()

    return [(oid, -key[0]) for key, oid in incumbents[:k]]
